//! CI smoke test for the sharded sweep runner (`./ci.sh --quick`).
//!
//! Executes a 4-point real-simulation sweep serially and again across 2
//! worker threads, and fails (nonzero exit) if any point produced an error
//! row or if the two result tables are not bit-identical — the sweep
//! subsystem's determinism and failure-isolation contract, checked against
//! full `System` simulations rather than synthetic closures.
//!
//! ```text
//! cargo run --release --example sweep_smoke
//! ```

use skipit::prelude::*;

/// Four (skip_it × flush kind) variants of a small flush-heavy program.
fn smoke_sweep() -> Sweep {
    let mut sweep = Sweep::new("sweep_smoke").unit("cycles").seed(42);
    for (skip_it, clean) in [(false, false), (false, true), (true, false), (true, true)] {
        sweep.push(
            Point::new(
                format!("skip={}/clean={}", skip_it as u8, clean as u8),
                move |ctx| {
                    let mut sys = SystemBuilder::new().cores(2).skip_it(skip_it).build();
                    let line = |i: u64| 0x4000 + i * 64;
                    // Mix the deterministic per-point seed into the data so a
                    // schedule-dependent seed would show up as a stats diff.
                    let programs: Vec<Vec<Op>> = (0..2u64)
                        .map(|core| {
                            let mut p = Vec::new();
                            for i in 0..8 {
                                p.push(Op::Store {
                                    addr: line(core * 8 + i),
                                    value: ctx.seed ^ (core * 8 + i),
                                });
                                p.push(if clean {
                                    Op::Clean {
                                        addr: line(core * 8 + i),
                                    }
                                } else {
                                    Op::Flush {
                                        addr: line(core * 8 + i),
                                    }
                                });
                            }
                            p.push(Op::Fence);
                            p
                        })
                        .collect();
                    let cycles = sys.run(Programs(programs)).cycles;
                    sys.quiesce();
                    PointOutput::from_system(&sys).value("program_cycles", cycles as f64)
                },
            )
            .param("skip_it", skip_it)
            .param("clean", clean)
            .budget(1_000_000),
        );
    }
    sweep
}

fn main() {
    let serial = SweepRunner::serial().run(smoke_sweep());
    let sharded = SweepRunner::new().threads(2).run(smoke_sweep());

    let mut failed = false;
    for report in [&serial, &sharded] {
        for row in report.failed_rows() {
            eprintln!(
                "FAIL: point {} ended {:?} ({} workers)",
                row.label,
                row.status,
                report.threads()
            );
            failed = true;
        }
    }
    if serial.rows() != sharded.rows() {
        eprintln!("FAIL: result tables diverge between 1 and 2 worker threads");
        eprintln!("--- serial ---\n{}", serial.table());
        eprintln!("--- 2 threads ---\n{}", sharded.table());
        failed = true;
    }
    if serial.to_json() != sharded.to_json() {
        eprintln!("FAIL: JSON exports diverge between 1 and 2 worker threads");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "sweep smoke ok: {} points, serial and 2-thread tables bit-identical \
         ({} total simulated cycles)",
        serial.rows().len(),
        serial.total_sim_cycles()
    );
    print!("{}", serial.table());
}
