//! Drive the simulator from RISC-V-flavoured assembly text
//! (`skipit_core::asm`), including the ratified CBO machine encodings.
//!
//! ```text
//! cargo run --release --example asm_program
//! ```

use skipit::core::asm;
use skipit::prelude::*;

const PROGRAM: &str = "
    # Build a small persistent record: three fields + a commit flag,
    # using the §4 ordering discipline.
    sd 0x1000, 101          # field A
    sd 0x1008, 202          # field B
    sd 0x1010, 303          # field C
    cbo.clean 0x1000        # persist the record's line (keep it cached)
    fence                   # … durable now
    sd 0x1040, 1            # commit flag (separate line)
    cbo.clean 0x1040
    fence

    # Redundant writeback: dropped in hardware under Skip It.
    cbo.clean 0x1000
    fence

    # Read the record back (hits — clean did not invalidate).
    ld 0x1000
    ld 0x1008
    ld 0x1010
";

fn main() {
    println!("assembling program:\n{PROGRAM}");
    let ops = asm::assemble(PROGRAM).expect("program assembles");
    println!(
        "{} ops; round-trips through the disassembler: \n{}",
        ops.len(),
        asm::disassemble(&ops)
    );

    // The actual machine encodings the paper's hardware decodes (§2.6).
    println!(
        "machine encodings: cbo.clean a0 = {:#010x}, cbo.flush a0 = {:#010x}, \
         fence rw,rw = {:#010x}",
        asm::encode_cbo_clean(10),
        asm::encode_cbo_flush(10),
        asm::FENCE_RW_RW,
    );

    let mut sys = SystemBuilder::new().cores(1).skip_it(true).build();
    sys.set_trace(TraceConfig::new().latency(64));
    let cycles = sys.run(Programs(vec![ops])).cycles;
    println!("ran in {cycles} cycles\n");

    // Everything committed is durable.
    for (addr, want) in [
        (0x1000u64, 101u64),
        (0x1008, 202),
        (0x1010, 303),
        (0x1040, 1),
    ] {
        assert_eq!(sys.dram().read_word_direct(addr), want);
    }
    println!("record + commit flag durable in main memory");

    let stats = sys.stats();
    println!(
        "redundant writeback dropped in hardware: {}",
        stats.l1[0].writebacks_skipped
    );
    println!("\nper-op trace:");
    for r in sys.trace_records() {
        println!(
            "  {:>5}..{:>5} ({:>3} cy)  {}",
            r.issued_at,
            r.completed_at,
            r.latency(),
            skipit::core::asm::disassemble(&[r.op]).trim_end()
        );
    }
    println!("\nfull counter report:\n{}", stats.report());
}
