//! The security use case from the paper's introduction (§1, §8): flushing a
//! security domain's cache footprint on a context switch to close
//! cache-based timing channels.
//!
//! A "victim" fills a working set; we measure an "attacker" probe of the
//! same addresses with and without a domain flush in between. Without the
//! flush, the probe's hit latencies leak which lines the victim touched;
//! after `CBO.FLUSH`-ing the region and fencing, every probe misses — the
//! channel is closed. The run also reports what the flush itself costs
//! (the §7.2 numbers in action).
//!
//! ```text
//! cargo run --release --example security_flush
//! ```

use skipit::prelude::*;

const DOMAIN: u64 = 0x10_0000;
const LINES: u64 = 64; // 4 KiB secret-dependent footprint

fn probe_latencies(h: &CoreHandle) -> Vec<u64> {
    (0..LINES)
        .map(|l| {
            let t0 = h.rdcycle();
            h.load(DOMAIN + l * 64);
            h.rdcycle() - t0
        })
        .collect()
}

fn main() {
    for flush_on_switch in [false, true] {
        let mut sys = SystemBuilder::new().cores(1).build();
        // Victim: touch every even line (the "secret" = parity).
        sys.run(Threads::new(vec![move |h: CoreHandle| {
            for l in (0..LINES).step_by(2) {
                h.store(DOMAIN + l * 64, l);
            }
        }]))
        .into_parts();
        // Context switch: optionally scrub the domain.
        let scrub_cycles = if flush_on_switch {
            let mut prog: Vec<Op> = (0..LINES)
                .map(|l| Op::Flush {
                    addr: DOMAIN + l * 64,
                })
                .collect();
            prog.push(Op::Fence);
            sys.run(Programs(vec![prog])).cycles
        } else {
            0
        };
        // Attacker probe: time every line.
        let (_, lat) = sys
            .run(Threads::new(
                vec![probe_latencies as fn(&CoreHandle) -> Vec<u64>]
                    .into_iter()
                    .map(|f| move |h: CoreHandle| f(&h))
                    .collect(),
            ))
            .into_parts();
        let lat = &lat[0];
        let threshold = 20; // hit/miss discriminator (hits ≈ 5-8 cycles)
        let leaked: usize = (0..LINES as usize)
            .filter(|&l| (lat[l] < threshold) == (l % 2 == 0) && lat[l] < threshold)
            .count();
        println!(
            "flush_on_switch={flush_on_switch:5}  scrub cost: {scrub_cycles:>5} cycles; \
             attacker classifies {leaked}/{} victim lines by timing",
            LINES / 2
        );
        if flush_on_switch {
            assert_eq!(leaked, 0, "the flush must close the timing channel");
        } else {
            assert!(
                leaked > 20,
                "without flushing the channel must be wide open"
            );
        }
    }
    println!("\nCBO.FLUSH + FENCE closes the probe channel at a bounded, known cost");
}
