//! CI smoke test for full-system snapshot/restore (`./ci.sh --quick`).
//!
//! Two checks, both against real simulations:
//!
//! 1. **Mid-run restartability** — a traced 2-core flush-heavy run is
//!    snapshotted at an executed cycle boundary while stores are still in
//!    flight; the restored system resumes and must finish bit-identically
//!    to the uninterrupted original (cycles, statistics, durable memory
//!    words, merged trace stream).
//! 2. **Warm-started sweeps** — a 4-point §7.4 set grid is run cold (every
//!    point simulates its own fill) and warm (one snapshotted fill shared
//!    by all four points); the two result tables must export bit-identical
//!    JSON.
//!
//! ```text
//! cargo run --release --example snapshot_smoke
//! ```

use skipit::prelude::*;
use skipit::{prefill_snapshot, run_set_benchmark, run_set_benchmark_warm, warm_key};
use skipit::{DsKind, OptKind, PersistMode, WarmSet, WorkloadCfg};

/// Two cores storing and flushing interleaved lines, then reading back.
fn programs() -> Vec<Vec<Op>> {
    (0..2u64)
        .map(|core| {
            let line = |i: u64| 0x6000 + (core * 16 + i) * 64;
            let mut p = Vec::new();
            for i in 0..16 {
                p.push(Op::Store {
                    addr: line(i),
                    value: core << 32 | i,
                });
                p.push(Op::Flush { addr: line(i) });
            }
            p.push(Op::Fence);
            for i in 0..16 {
                p.push(Op::Load { addr: line(i) });
            }
            p
        })
        .collect()
}

/// Everything the bit-identity contract covers, collected from a finished
/// system. Trace events are compared as the `(cycle, order, event)` stream
/// from `since` on (a restored system's trace starts empty with fresh
/// per-sink sequence numbers, so absolute `seq` values differ by design).
fn fingerprint(sys: &System, since: u64) -> (u64, SystemStats, Vec<u64>, Vec<String>) {
    let image = sys.durable_image();
    let words = (0..32u64)
        .map(|i| image.read_word_direct(0x6000 + i * 64))
        .collect();
    let tail = sys
        .trace_events()
        .into_iter()
        .filter(|e| e.cycle >= since)
        .map(|e| format!("{}/{}/{:?}", e.cycle, e.order, e.event))
        .collect();
    (sys.now(), sys.stats(), words, tail)
}

fn mid_run_restore_is_bit_identical() -> bool {
    let trace_cfg = || TraceConfig::new().events(1 << 14);
    let mut sys = SystemBuilder::new().cores(2).skip_it(true).build();
    sys.set_trace(trace_cfg());
    let mut snap: Option<Snapshot> = None;
    sys.run_programs_observed(programs(), |s: &System| {
        // Snapshot once, mid-run: after some traffic but before the end.
        if snap.is_none() && s.now() >= 200 {
            snap = Some(s.snapshot().expect("mid-run snapshot"));
        }
        Ok::<(), std::convert::Infallible>(())
    })
    .unwrap();
    sys.quiesce();

    let snap = snap.expect("run reached cycle 200");
    let mut resumed = System::restore(&snap, sys.config()).expect("snapshot restores");
    let restored_at = resumed.now();
    resumed.set_trace(trace_cfg()); // observers are host-side: reinstall
    resumed.resume_programs();
    resumed.quiesce();

    let reference = fingerprint(&sys, restored_at);
    let replayed = fingerprint(&resumed, restored_at);
    let ok = reference == replayed;
    if ok {
        println!(
            "mid-run restore ok: snapshot at cycle {restored_at} ({} bytes), \
             replay landed on cycle {} with identical stats, durable image \
             and {} post-snapshot trace events",
            snap.encoded_len(),
            replayed.0,
            replayed.3.len(),
        );
    } else {
        eprintln!("FAIL: mid-run restore diverged from the uninterrupted run");
        eprintln!(
            "  reference: cycle {}, {} trace events",
            reference.0,
            reference.3.len()
        );
        eprintln!(
            "  replayed:  cycle {}, {} trace events",
            replayed.0,
            replayed.3.len()
        );
    }
    ok
}

/// The 4-point smoke grid: one List fill shared by four measured mixes.
fn smoke_cfg(update_pct: u32) -> WorkloadCfg {
    WorkloadCfg {
        ds: DsKind::List,
        mode: PersistMode::NvTraverse,
        opt: OptKind::SkipIt,
        threads: 2,
        key_range: 64,
        prefill: 16,
        update_pct,
        budget_cycles: 15_000,
        seed: 7,
        hash_buckets: 32,
        ..WorkloadCfg::default()
    }
}

fn smoke_grid(warm: bool) -> Sweep {
    let mut sweep = Sweep::new("snapshot_smoke_grid")
        .unit("ops_per_mcycle")
        .seed(7);
    if warm {
        let fill = smoke_cfg(0);
        sweep = sweep.prefill(warm_key(&fill), move || {
            let ws = prefill_snapshot(&fill);
            let bytes = ws.encoded_bytes();
            WarmState::new(ws, bytes)
        });
    }
    for update_pct in [0u32, 10, 20, 50] {
        let cfg = smoke_cfg(update_pct);
        let point = Point::new(format!("list/{update_pct}%"), move |ctx: &PointCtx| {
            let r = if warm {
                run_set_benchmark_warm(&cfg, ctx.warm::<WarmSet>().expect("fill registered"))
            } else {
                run_set_benchmark(&cfg)
            };
            PointOutput::new()
                .with_cycles(r.cycles)
                .value("ops_per_mcycle", r.throughput())
                .value("ops", r.ops as f64)
        })
        .param("update_pct", update_pct);
        sweep.push(if warm {
            point.warm(warm_key(&cfg))
        } else {
            point
        });
    }
    sweep
}

fn warm_sweep_matches_cold() -> bool {
    let runner = SweepRunner::serial();
    let cold = runner.run(smoke_grid(false));
    let warm = runner.run(smoke_grid(true));
    let mut ok = true;
    for report in [&cold, &warm] {
        for row in report.failed_rows() {
            eprintln!("FAIL: point {} ended {:?}", row.label, row.status);
            ok = false;
        }
    }
    if cold.to_json() != warm.to_json() {
        eprintln!("FAIL: cold and warm-started result tables diverge");
        eprintln!("--- cold ---\n{}", cold.table());
        eprintln!("--- warm ---\n{}", warm.table());
        ok = false;
    }
    if ok {
        let bytes: u64 = warm.warm_sizes().iter().map(|(_, b)| b).sum();
        println!(
            "warm sweep ok: {} points share 1 snapshotted fill ({bytes} bytes), \
             tables bit-identical to the cold run",
            warm.rows().len(),
        );
    }
    ok
}

fn main() {
    let ok = mid_run_restore_is_bit_identical() & warm_sweep_matches_cold();
    if !ok {
        std::process::exit(1);
    }
}
