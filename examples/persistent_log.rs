//! A crash-consistent append-only log — the NVMM use case from the paper's
//! introduction (§1, §2.5).
//!
//! Protocol: each entry is written to its own cache line and flushed; only
//! after a fence confirms durability is the header's `count` word updated
//! and flushed. A crash can therefore lose at most the *in-flight* entry,
//! never corrupt the committed prefix — exactly the ordering discipline the
//! paper's writeback + fence semantics enable (§4).
//!
//! The example appends entries, crashes the machine at a random point, and
//! runs recovery against the surviving DRAM image.
//!
//! ```text
//! cargo run --release --example persistent_log
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skipit::prelude::*;

const HEADER: u64 = 0x1_0000; // header line: [count]
const ENTRIES: u64 = 0x1_0040; // entry i at HEADER + 64 * (i + 1)

fn entry_addr(i: u64) -> u64 {
    ENTRIES + i * 64
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    for trial in 0..5 {
        let crash_after = rng.gen_range(1..30u64);
        let mut sys = SystemBuilder::new().cores(1).skip_it(true).build();

        // Writer: append entries until the budget "crashes" us mid-stream.
        let (_, appended) = sys
            .run(Threads::new(vec![move |h: CoreHandle| {
                let mut committed = 0u64;
                for i in 0..40u64 {
                    // 1. Write and persist the entry payload.
                    let payload = 0xAB00_0000 + i;
                    h.store(entry_addr(i), payload);
                    h.flush(entry_addr(i));
                    h.fence();
                    // Simulated crash point: stop *between* entry persist
                    // and header update for odd trials (worst case).
                    if i == crash_after {
                        return committed;
                    }
                    // 2. Commit: bump the header count and persist it.
                    h.store(HEADER, i + 1);
                    h.flush(HEADER);
                    h.fence();
                    committed = i + 1;
                }
                committed
            }]))
            .into_parts();

        // Power failure: all caches gone, only DRAM (the persistence
        // domain) survives.
        let dram = sys.durable_image();

        // Recovery: trust only the committed prefix.
        let count = dram.read_word_direct(HEADER);
        assert_eq!(
            count, appended[0],
            "trial {trial}: header must reflect exactly the committed prefix"
        );
        for i in 0..count {
            let v = dram.read_word_direct(entry_addr(i));
            assert_eq!(v, 0xAB00_0000 + i, "trial {trial}: entry {i} corrupt");
        }
        println!(
            "trial {trial}: crashed after entry {crash_after}, recovered \
             {count} committed entries — all intact"
        );
    }
    println!("crash-consistent log: all trials recovered cleanly");
}
