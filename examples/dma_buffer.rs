//! The DMA scenario from the paper's introduction (§1): "modifications to a
//! locally cached copy must reach memory before subsequent accesses" by a
//! device.
//!
//! A producer core fills a buffer and issues `CBO.CLEAN` + fence before
//! ringing the device's doorbell. The (non-coherent) DMA engine is modeled
//! as a direct reader of main memory — exactly what it sees on a platform
//! without cache-coherent I/O. Without the cleans, the device would read
//! stale zeroes; with them, it sees every byte.
//!
//! ```text
//! cargo run --release --example dma_buffer
//! ```

use skipit::prelude::*;

const BUF: u64 = 0x8_0000;
const BUF_LINES: u64 = 16; // 1 KiB buffer

fn run(with_clean: bool) -> (u64, u64) {
    let mut sys = SystemBuilder::new().cores(1).skip_it(true).build();
    sys.run(Threads::new(vec![move |h: CoreHandle| {
        // Fill the buffer (word per slot, recognisable pattern).
        for i in 0..BUF_LINES * 8 {
            h.store(BUF + i * 8, 0xD0_0000 + i);
        }
        if with_clean {
            // Make the buffer visible to the device: clean every line
            // (non-invalidating — we may keep using the cached copy),
            // then fence so the doorbell write below cannot pass the
            // writebacks (§4).
            for l in 0..BUF_LINES {
                h.clean(BUF + l * 64);
            }
            h.fence();
        }
    }]));
    sys.quiesce();
    // The DMA engine reads main memory directly.
    let dram = sys.durable_image();
    let mut good = 0;
    for i in 0..BUF_LINES * 8 {
        if dram.read_word_direct(BUF + i * 8) == 0xD0_0000 + i {
            good += 1;
        }
    }
    (good, BUF_LINES * 8)
}

fn main() {
    let (stale_good, total) = run(false);
    println!("without CBO.CLEAN: device sees {stale_good}/{total} fresh words (stale DMA!)");
    let (good, total) = run(true);
    println!("with CBO.CLEAN + fence: device sees {good}/{total} fresh words");
    assert_eq!(good, total);
    assert!(stale_good < total, "without cleans some data must be stale");
    println!("DMA consistency established by user-controlled writebacks");
}
