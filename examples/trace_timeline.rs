//! Exports a Perfetto-loadable timeline of a flush-heavy program.
//!
//! ```text
//! cargo run --release --example trace_timeline
//! ```
//!
//! Writes `trace_timeline.json` (Chrome trace-event format) to the current
//! directory — open it at <https://ui.perfetto.dev> to see, per core, the
//! FSHR state machines walking Fig. 7, TileLink messages in flight on all
//! five channels, L1/L2 MSHR occupancy, fence stalls, and the fast-forward
//! engine's jumps over idle windows. Also prints the tail of the
//! human-readable text dump and the per-op-kind latency percentiles.

use skipit::prelude::*;

fn main() {
    let mut sys = SystemBuilder::new().cores(2).skip_it(true).build();
    sys.set_trace(TraceConfig::new().events(1 << 16).latency(1 << 16));

    // A flush-heavy two-core program: core 0 dirties and persists a buffer
    // line by line (CBO.CLEAN), core 1 contends on part of it with flushes —
    // plenty of FSHR activity, RootReleases, probes and fence stalls.
    let line = |i: u64| 0x10_0000 + i * 64;
    let mut p0 = Vec::new();
    for i in 0..24 {
        p0.push(Op::Store {
            addr: line(i),
            value: i + 1,
        });
    }
    for i in 0..24 {
        p0.push(Op::Clean { addr: line(i) });
    }
    p0.push(Op::Fence);
    p0.push(Op::Nop { cycles: 400 });
    for i in 0..24 {
        p0.push(Op::Clean { addr: line(i) });
    }
    p0.push(Op::Fence);
    let mut p1 = vec![Op::Nop { cycles: 31 }];
    for i in 0..8 {
        p1.push(Op::Store {
            addr: line(i * 3),
            value: 1000 + i,
        });
        p1.push(Op::Flush { addr: line(i * 3) });
    }
    p1.push(Op::Fence);

    let cycles = sys.run(Programs(vec![p0, p1])).cycles;
    sys.quiesce();
    println!(
        "ran {cycles} cycles; {} events buffered",
        sys.trace_events().len()
    );
    if sys.trace_events_dropped() > 0 {
        println!(
            "warning: {} events dropped by ring bounds — raise the capacity",
            sys.trace_events_dropped()
        );
    }

    let json = sys.export_chrome_trace();
    std::fs::write("trace_timeline.json", &json).expect("write trace_timeline.json");
    println!(
        "wrote trace_timeline.json ({} bytes) — open at https://ui.perfetto.dev",
        json.len()
    );

    println!("\nlast 15 events:");
    let text = sys.export_text_trace();
    for l in text
        .lines()
        .rev()
        .take(15)
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
    {
        println!("  {l}");
    }

    println!("\nper-op-kind completion latency (cycles):");
    for (kind, h) in sys.latency_histograms() {
        println!(
            "  {kind:<9} n={:<4} p50={:<5} p90={:<5} p99={:<5} max={}",
            h.count(),
            h.p50().unwrap_or(0),
            h.p90().unwrap_or(0),
            h.p99().unwrap_or(0),
            h.max().unwrap_or(0),
        );
    }
}
