//! Service-frontend smoke: the open-loop SLO workload must be bit-identical
//! on every engine at every host thread count, perturbed or not, and its
//! SLO report must be internally consistent.
//!
//! Run with `cargo run --release --example service_smoke` (part of
//! `ci.sh --quick`). Exercises:
//!
//! 1. One Zipfian Poisson workload executed under the naive, global-gate,
//!    component-wheel and parallel-wheel (1, 2 and 8 host threads)
//!    engines: request digests, cycle counts and system stats must agree
//!    exactly.
//! 2. The same cross-engine identity under deterministic schedule
//!    perturbation (`PerturbConfig::exploring`).
//! 3. Both stress patterns (cache stampede, synchronized expiration
//!    storm) execute and add their requests.
//! 4. SLO summary sanity: monotone percentiles, met fractions in `[0, 1]`
//!    and monotone in the threshold, goodput bounded by throughput.

use skipit::core::{EngineKind, PerturbConfig};
use skipit::service::{
    Arrivals, KeyDist, OpMix, ServiceCfg, ServiceReport, ServiceWorkload, Stress,
};

const ENGINES: [(EngineKind, usize); 6] = [
    (EngineKind::Naive, 0),
    (EngineKind::GlobalGate, 0),
    (EngineKind::ComponentWheel, 0),
    (EngineKind::ParallelWheel, 1),
    (EngineKind::ParallelWheel, 2),
    (EngineKind::ParallelWheel, 8),
];

fn smoke_cfg(stress: Stress) -> ServiceCfg {
    ServiceCfg {
        cores: 2,
        requests_per_core: 300,
        key_range: 192,
        prefill: 64,
        dist: KeyDist::Zipfian { s: 0.99 },
        arrivals: Arrivals::Poisson { mean_gap: 450 },
        mix: OpMix {
            read_pct: 90,
            update_pct: 6,
            scan_pct: 4,
            scan_len: 4,
        },
        stress,
        hash_buckets: 32,
        seed: 31,
        ..ServiceCfg::default()
    }
}

fn run_with(cfg: &ServiceCfg, engine: EngineKind, threads: usize, perturb: bool) -> ServiceReport {
    let mut b = cfg.builder().engine(engine);
    if threads > 0 {
        b = b.engine_threads(threads);
    }
    if perturb {
        b = b.perturb(PerturbConfig::exploring(9));
    }
    b.build().run(ServiceWorkload::new(cfg.clone())).output
}

fn assert_identical(cfg: &ServiceCfg, perturb: bool, what: &str) -> ServiceReport {
    let reference = run_with(cfg, EngineKind::Naive, 0, perturb);
    for (engine, threads) in &ENGINES[1..] {
        let r = run_with(cfg, *engine, *threads, perturb);
        assert_eq!(
            r.digest, reference.digest,
            "{what}: request digest diverged under {engine:?}/{threads}t"
        );
        assert_eq!(
            r.cycles, reference.cycles,
            "{what}: cycles diverged under {engine:?}/{threads}t"
        );
        assert_eq!(
            r.stats, reference.stats,
            "{what}: stats diverged under {engine:?}/{threads}t"
        );
    }
    reference
}

fn main() {
    let base = smoke_cfg(Stress::None);
    let r = assert_identical(&base, false, "base");
    assert_eq!(r.requests, 600, "base request count");
    println!(
        "service smoke: base workload bit-identical on {} engine configs \
         ({} requests, {} cycles)",
        ENGINES.len(),
        r.requests,
        r.cycles
    );

    let p = assert_identical(&base, true, "perturbed");
    assert_ne!(
        p.digest, r.digest,
        "perturbation should change the schedule (and therefore latencies)"
    );
    println!("service smoke: perturbed workload bit-identical on all engines");

    for (name, stress) in [
        ("stampede", Stress::Stampede { every: 30, herd: 8 }),
        (
            "storm",
            Stress::ExpirationStorm {
                every_cycles: 2_000,
                lines: 6,
            },
        ),
    ] {
        let sr = assert_identical(&smoke_cfg(stress), false, name);
        assert!(
            sr.requests > 600,
            "{name}: stress added no requests ({})",
            sr.requests
        );
        println!(
            "service smoke: {name} stress bit-identical ({} requests)",
            sr.requests
        );
    }

    let slos = [200u64, 400, 1600, 1 << 24];
    let slo = r.slo(&slos);
    assert_eq!(slo.count, r.requests);
    assert!(slo.p50 <= slo.p99 && slo.p99 <= slo.p999 && slo.p999 <= slo.max);
    let mut prev = -1.0;
    for g in &slo.goodput {
        assert!((0.0..=1.0).contains(&g.met), "met fraction {}", g.met);
        assert!(g.met >= prev, "met fractions must be monotone in the SLO");
        assert!(g.goodput <= slo.throughput() + 1e-9);
        prev = g.met;
    }
    assert_eq!(
        slo.goodput.last().unwrap().met,
        1.0,
        "every request meets a 16M-cycle SLO"
    );
    println!(
        "service smoke: SLO report consistent (p50={} p99={} p999={} \
         goodput@400={:.1} req/Mcycle)",
        slo.p50, slo.p99, slo.p999, slo.goodput[1].goodput
    );
    println!("service smoke passed");
}
