//! Quickstart: user-controlled writebacks and Skip It in a dozen lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use skipit::prelude::*;

fn main() {
    // The paper's platform (§7.1): dual-core BOOM-style SoC, 32 KiB L1s,
    // shared 512 KiB inclusive L2 — with the Skip It extension enabled.
    let mut sys = SystemBuilder::new().cores(2).skip_it(true).build();

    // 1. Persist a value: store → CBO.FLUSH → FENCE (§4, scenario c).
    let cycles = sys
        .run(Programs(vec![vec![
            Op::Store {
                addr: 0x1000,
                value: 42,
            },
            Op::Flush { addr: 0x1000 },
            Op::Fence,
        ]]))
        .cycles;
    println!("store+flush+fence: {cycles} cycles (paper: ≈100 for the flush)");
    assert_eq!(sys.dram().read_word_direct(0x1000), 42);
    println!("value 42 is durable in main memory");

    // 2. CBO.CLEAN keeps the line cached. Re-reading hits the L1.
    sys.run(Programs(vec![vec![
        Op::Store {
            addr: 0x2000,
            value: 7,
        },
        Op::Clean { addr: 0x2000 },
        Op::Fence,
        Op::Load { addr: 0x2000 },
    ]]));
    println!(
        "after CBO.CLEAN the line still hits: {} L1 load hits",
        sys.stats().l1[0].load_hits
    );

    // 3. Skip It: the line is now clean *and* its skip bit is set (the L2
    //    told us it is persisted). Redundant writebacks die at the L1.
    let before = sys.stats().l1[0].writebacks_skipped;
    let cycles = sys
        .run(Programs(vec![vec![Op::Clean { addr: 0x2000 }, Op::Fence]]))
        .cycles;
    let skipped = sys.stats().l1[0].writebacks_skipped - before;
    println!(
        "redundant clean: {cycles} cycles, {skipped} writeback dropped in \
         hardware (never reached the L2)"
    );

    // 4. Cross-core: core 1 flushes a line core 0 dirtied — the L2 probes
    //    the owner and the dirty data still reaches memory (§5.5).
    sys.run(Programs(vec![
        vec![Op::Store {
            addr: 0x3000,
            value: 99,
        }],
        vec![],
    ]));
    sys.run(Programs(vec![
        vec![],
        vec![Op::Flush { addr: 0x3000 }, Op::Fence],
    ]));
    assert_eq!(sys.dram().read_word_direct(0x3000), 99);
    println!("cross-core flush wrote back the other core's dirty data");

    // 5. Crash semantics: whatever was never written back is lost.
    sys.run(Programs(vec![vec![Op::Store {
        addr: 0x4000,
        value: 1234,
    }]]));
    sys.quiesce();
    let dram = sys.durable_image();
    assert_eq!(dram.read_word_direct(0x4000), 0);
    println!("un-flushed store was lost in the crash, as §2.5 promises");
}
