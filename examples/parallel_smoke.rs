//! CI smoke check for the parallel wheel engine (`./ci.sh --quick`).
//!
//! Runs two workloads under the serial component wheel and again under
//! [`EngineKind::ParallelWheel`] at 2 threads, and exits nonzero on any
//! divergence — the parallel engine's contract is bit-identity, not
//! statistical closeness:
//!
//! * a fig09-shaped saturated store/clean workload on 8 cores (every core
//!   due every cycle, so the pool path genuinely engages past the
//!   serial-fallback threshold), compared on elapsed cycles, system and
//!   engine statistics, durable memory words, and the merged trace-event
//!   stream; and
//! * an adversarial exploration scenario (`Scenario::FlushStorm` across
//!   4 seeds) under full schedule perturbation with the invariant oracle
//!   observing every executed cycle, compared on cycles and violations.
//!
//! ```text
//! cargo run --release --example parallel_smoke
//! ```

use skipit::core::{PerturbConfig, StreamEvent};
use skipit::explore::run_with_oracle;
use skipit::prelude::*;

const CORES: usize = 8;
const THREADS: usize = 2;
const SEEDS: u64 = 4;

/// All-cores-busy store/clean loops in the shape of the paper's fig. 9
/// saturated-writeback experiment.
fn fig9_programs() -> Vec<Vec<Op>> {
    (0..CORES as u64)
        .map(|t| {
            let base = 0x20_0000 + t * 0x1_0000;
            let mut p = Vec::new();
            for i in 0..48 {
                p.push(Op::Store {
                    addr: base + i * 64,
                    value: t << 32 | i,
                });
            }
            for i in 0..48 {
                p.push(Op::Clean {
                    addr: base + i * 64,
                });
            }
            p.push(Op::Fence);
            p
        })
        .collect()
}

/// One traced fig09-shaped run; returns everything bit-identity covers.
fn fig9_run(engine: EngineKind) -> (u64, SystemStats, EngineStats, Vec<u64>, Vec<StreamEvent>) {
    let mut sys = SystemBuilder::new()
        .cores(CORES)
        .skip_it(true)
        .engine(engine)
        .engine_threads(THREADS)
        .build();
    sys.set_trace(TraceConfig::new().events(1 << 14));
    let cycles = sys.run(Programs(fig9_programs())).cycles;
    sys.quiesce();
    let words = (0..CORES as u64)
        .flat_map(|t| (0..48).map(move |i| 0x20_0000 + t * 0x1_0000 + i * 64))
        .map(|a| sys.dram().read_word_direct(a))
        .collect();
    (
        cycles,
        sys.stats(),
        sys.engine_stats(),
        words,
        sys.trace_events(),
    )
}

/// One perturbed exploration point under `engine`, oracle on every cycle.
fn explore_run(engine: EngineKind, seed: u64) -> (u64, Option<Violation>) {
    let mut sys = SystemBuilder::new()
        .cores(2)
        .skip_it(true)
        .engine(engine)
        .engine_threads(THREADS)
        .perturb(PerturbConfig::exploring(seed))
        .build();
    run_with_oracle(&mut sys, Scenario::FlushStorm.programs(seed, 2))
}

fn main() {
    let mut failed = false;

    let serial = fig9_run(EngineKind::ComponentWheel);
    let parallel = fig9_run(EngineKind::ParallelWheel);
    if serial.0 != parallel.0 {
        eprintln!(
            "FAIL: fig09 cycles diverge (wheel {} vs parallel {})",
            serial.0, parallel.0
        );
        failed = true;
    }
    if serial.1 != parallel.1 {
        eprintln!("FAIL: fig09 system statistics diverge");
        failed = true;
    }
    if serial.2 != parallel.2 {
        eprintln!(
            "FAIL: fig09 engine statistics diverge\n  wheel:    {:?}\n  parallel: {:?}",
            serial.2, parallel.2
        );
        failed = true;
    }
    if serial.3 != parallel.3 {
        eprintln!("FAIL: fig09 durable memory words diverge");
        failed = true;
    }
    if serial.4 != parallel.4 {
        eprintln!(
            "FAIL: fig09 trace streams diverge ({} vs {} events)",
            serial.4.len(),
            parallel.4.len()
        );
        failed = true;
    }

    let mut oracle_cycles = 0u64;
    for seed in 0..SEEDS {
        let a = explore_run(EngineKind::ComponentWheel, seed);
        let b = explore_run(EngineKind::ParallelWheel, seed);
        if let Some(v) = &a.1 {
            eprintln!("FAIL: flush_storm/{seed} invariant violation under wheel: {v:?}");
            failed = true;
        }
        if let Some(v) = &b.1 {
            eprintln!("FAIL: flush_storm/{seed} invariant violation under parallel: {v:?}");
            failed = true;
        }
        if a != b {
            eprintln!(
                "FAIL: flush_storm/{seed} diverges (wheel {:?} vs parallel {:?})",
                a, b
            );
            failed = true;
        }
        oracle_cycles += a.0;
    }

    if failed {
        std::process::exit(1);
    }
    println!(
        "parallel smoke ok: fig09-shaped run bit-identical at {THREADS} threads \
         ({} cycles, {} trace events) and flush_storm x {SEEDS} perturbed seeds \
         bit-identical under the oracle ({oracle_cycles} cycles total)",
        serial.0,
        serial.4.len(),
    );
}
