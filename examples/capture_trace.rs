//! Regenerates the committed example traces under `traces/`.
//!
//! `traces/persistent_kv.trace` is *captured*: a small persistent
//! key-value-store workload (log-then-install updates on one core,
//! concurrent readers/CAS traffic on the other) runs in thread mode on the
//! paper platform with capture on, and the committed memory-op stream is
//! written out in the versioned binary format. Thread mode is
//! deterministic, so re-running this example reproduces the committed
//! bytes exactly.
//!
//! `traces/litmus_sb.txt` is hand-written; this example only checks that
//! it still parses and that its binary round trip is the identity.
//!
//! Run from the repository root:
//!
//! ```text
//! cargo run --release --example capture_trace
//! ```

use skipit::prelude::*;
use std::path::Path;

/// Key-value slots: key `k` lives at `KV_BASE + k * 64` (one line per key).
const KV_BASE: u64 = 0x8_0000;
/// The redo-log region the writer appends to before installing.
const LOG_BASE: u64 = 0x9_0000;

fn kv_workload(sys: &mut skipit::System) -> Vec<u64> {
    let report = sys.run(Threads::new(vec![
        // Writer: log-then-install. Each update appends (key, value) to the
        // log, persists the log entry, installs the value in place, and
        // persists the install — the classic redo-log persistence pattern
        // the paper's §4 semantics are built for.
        |h: CoreHandle| {
            let mut installed = 0;
            for i in 0..12u64 {
                let key = i % 4;
                let value = 100 + i;
                let entry = LOG_BASE + i * 64;
                h.store(entry, (key << 32) | value);
                h.flush(entry);
                h.fence();
                h.store(KV_BASE + key * 64, value);
                h.flush(KV_BASE + key * 64);
                h.fence();
                installed += 1;
            }
            installed
        },
        // Reader: scans the live slots and bumps a shared version counter,
        // contending with the writer for line ownership.
        |h: CoreHandle| {
            let mut sum = 0u64;
            for round in 0..6u64 {
                for key in 0..4u64 {
                    sum = sum.wrapping_add(h.load(KV_BASE + key * 64));
                }
                h.fetch_add(KV_BASE + 4 * 64, 1);
                h.work(10 + round);
            }
            h.fence();
            sum
        },
    ]));
    report.output
}

fn main() {
    let traces = Path::new(env!("CARGO_MANIFEST_DIR")).join("traces");
    std::fs::create_dir_all(&traces).expect("create traces/");

    // ---- persistent_kv.trace: captured from a live thread-mode run ----
    let mut sys = skipit::paper_platform(true);
    sys.start_capture();
    let results = kv_workload(&mut sys);
    assert_eq!(results[0], 12, "writer must install all updates");
    let trace = MemTrace::from_capture(2, 0, &sys.take_capture());
    assert!(!trace.is_empty());

    let path = traces.join("persistent_kv.trace");
    trace.to_file(&path).expect("write persistent_kv.trace");
    // Paranoia: the file decodes back to the identical trace.
    assert_eq!(MemTrace::from_file(&path).unwrap(), trace);
    println!(
        "wrote {} ({} records, {} cores)",
        path.display(),
        trace.len(),
        trace.cores()
    );

    // ---- litmus_sb.txt: hand-written, just validate it ----
    let path = traces.join("litmus_sb.txt");
    let text = std::fs::read_to_string(&path).expect("read litmus_sb.txt");
    let litmus = MemTrace::from_text(&text).expect("litmus trace parses");
    assert_eq!(
        MemTrace::from_bytes(&litmus.to_bytes()).unwrap(),
        litmus,
        "litmus binary round trip"
    );
    println!(
        "validated {} ({} records, {} cores)",
        path.display(),
        litmus.len(),
        litmus.cores()
    );
}
