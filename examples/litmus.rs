//! Litmus-test suite for the §4 memory semantics: runs the classic
//! two-thread shapes plus the paper's three writeback scenarios (Fig. 5)
//! and prints observed outcomes against the model's guarantees.
//!
//! ```text
//! cargo run --release --example litmus
//! ```

use skipit::prelude::*;

fn check(name: &str, ok: bool, detail: String) {
    println!("{:45} {} {detail}", name, if ok { "PASS" } else { "FAIL" });
    assert!(ok, "{name} violated");
}

fn main() {
    // MP: message passing with a fence — the receiver never sees the flag
    // without the data.
    {
        let mut forbidden = 0;
        for round in 0..8u64 {
            let mut sys = SystemBuilder::new().cores(2).build();
            let data = 0x1000 + round * 128;
            let flag = 0x2000 + round * 128;
            let (_, r) = sys
                .run(
                    Threads::new(vec![
                        Box::new(move |h: CoreHandle| {
                            h.store(data, 1);
                            h.fence();
                            h.store(flag, 1);
                            0u64
                        }) as Box<dyn FnOnce(CoreHandle) -> u64 + Send>,
                        Box::new(move |h: CoreHandle| {
                            while h.load(flag) == 0 {
                                if h.halted() {
                                    return 1;
                                }
                            }
                            h.load(data)
                        }),
                    ])
                    .budget(500_000),
                )
                .into_parts();
            if r[1] == 0 {
                forbidden += 1;
            }
        }
        check(
            "MP (fence): flag ⇒ data",
            forbidden == 0,
            format!("0/{forbidden} forbidden"),
        );
    }

    // SB: store buffering with fences — (0, 0) is forbidden.
    {
        let mut forbidden = 0;
        for round in 0..8u64 {
            let mut sys = SystemBuilder::new().cores(2).build();
            let x = 0x3000 + round * 128;
            let y = 0x4000 + round * 128;
            let (_, r) = sys
                .run(Threads::new(vec![
                    Box::new(move |h: CoreHandle| {
                        h.store(x, 1);
                        h.fence();
                        h.load(y)
                    }) as Box<dyn FnOnce(CoreHandle) -> u64 + Send>,
                    Box::new(move |h: CoreHandle| {
                        h.store(y, 1);
                        h.fence();
                        h.load(x)
                    }),
                ]))
                .into_parts();
            if r[0] == 0 && r[1] == 0 {
                forbidden += 1;
            }
        }
        check(
            "SB (fences): ¬(0,0)",
            forbidden == 0,
            format!("0/{forbidden} forbidden"),
        );
    }

    // CoRR: coherence read-read — two reads of the same location by the
    // same thread never go backwards.
    {
        let mut sys = SystemBuilder::new().cores(2).build();
        let (_, r) = sys
            .run(Threads::new(vec![
                Box::new(|h: CoreHandle| {
                    for v in 1..100u64 {
                        h.store(0x5000, v);
                    }
                    0u64
                }) as Box<dyn FnOnce(CoreHandle) -> u64 + Send>,
                Box::new(|h: CoreHandle| {
                    let mut last = 0;
                    let mut violations = 0u64;
                    for _ in 0..200 {
                        let v = h.load(0x5000);
                        if v < last {
                            violations += 1;
                        }
                        last = v;
                    }
                    violations
                }),
            ]))
            .into_parts();
        check(
            "CoRR: same-location reads monotone",
            r[1] == 0,
            format!("{} regressions", r[1]),
        );
    }

    // Fig. 5 (a): without writebacks, store order says nothing about
    // persistence order (we only check that nothing is guaranteed durable).
    {
        let mut sys = SystemBuilder::new().cores(1).build();
        sys.run(Programs(vec![vec![
            Op::Store {
                addr: 0x6000,
                value: 1,
            },
            Op::Store {
                addr: 0x6040,
                value: 2,
            },
        ]]));
        sys.quiesce();
        let dram = sys.durable_image();
        let persisted = (dram.read_word_direct(0x6000) != 0) as u32
            + (dram.read_word_direct(0x6040) != 0) as u32;
        check(
            "Fig5(a): unflushed stores volatile",
            persisted == 0,
            format!("{persisted} persisted"),
        );
    }

    // Fig. 5 (b): writeback(x) orders against earlier writes to x's line —
    // after fence, x is durable regardless of what happened to y.
    {
        let mut sys = SystemBuilder::new().cores(1).build();
        sys.run(Programs(vec![vec![
            Op::Store {
                addr: 0x7000,
                value: 10,
            },
            Op::Flush { addr: 0x7000 },
            Op::Store {
                addr: 0x7040,
                value: 20,
            },
            Op::Fence,
        ]]));
        let x = sys.dram().read_word_direct(0x7000);
        check(
            "Fig5(b): writeback covers prior writes",
            x == 10,
            format!("x={x}"),
        );
    }

    // Fig. 5 (c): writeback + fence ⇒ durable before the next instruction.
    {
        let mut sys = SystemBuilder::new().cores(1).build();
        sys.run(Programs(vec![vec![
            Op::Store {
                addr: 0x8000,
                value: 33,
            },
            Op::Flush { addr: 0x8000 },
            Op::Fence,
        ]]));
        let x = sys.dram().read_word_direct(0x8000);
        check("Fig5(c): flush+fence durable", x == 33, format!("x={x}"));
    }

    println!("\nall litmus shapes conform to the §4 semantics");
}
