//! A persistent key-value store (hash table of §7.4) running on Skip It
//! hardware vs the plain baseline — the headline end-to-end win of the
//! paper, reproduced as an application.
//!
//! Two workload threads hammer a persistent lock-free hash table under the
//! NVTraverse discipline. On Skip It hardware the redundant writebacks of
//! already-persisted lines are dropped at the L1; the run reports both
//! throughputs and the hardware drop counters. The plain/Skip It ablation
//! is described as a two-point [`Sweep`] and executed by the sharded
//! [`SweepRunner`] — each variant simulates on its own worker thread.
//!
//! ```text
//! cargo run --release --example persistent_kv
//! ```

use skipit::pds::{run_set_benchmark, DsKind, OptKind, PersistMode, WorkloadCfg};
use skipit::prelude::*;

fn main() {
    let base = WorkloadCfg {
        ds: DsKind::Hash,
        mode: PersistMode::NvTraverse,
        threads: 2,
        key_range: 1024,
        prefill: 512,
        update_pct: 20,
        budget_cycles: 80_000,
        seed: 99,
        hash_buckets: 128,
        ..WorkloadCfg::default()
    };

    println!("persistent hash table, NVTraverse, 20% updates, 2 threads\n");

    let mut sweep = Sweep::new("persistent_kv").unit("ops_per_mcycle");
    for (label, opt) in [("plain", OptKind::Plain), ("skip-it", OptKind::SkipIt)] {
        let cfg = WorkloadCfg { opt, ..base };
        sweep.push(
            Point::new(label, move |_ctx| {
                let r = run_set_benchmark(&cfg);
                let mut out = PointOutput::new()
                    .with_cycles(r.cycles)
                    .value("ops_per_mcycle", r.throughput())
                    .value("ops", r.ops as f64);
                out.stats = Some(r.stats);
                out
            })
            .param("opt", label),
        );
    }
    let report = SweepRunner::new().threads(2).run(sweep);
    assert!(report.all_ok(), "a variant failed:\n{}", report.table());

    let plain = report.get("plain").expect("plain row");
    let skipit = report.get("skip-it").expect("skip-it row");
    for (name, row) in [("plain hardware", plain), ("Skip It       ", skipit)] {
        println!(
            "{name} : {:>6.1} ops/Mcycle ({} ops in {} cycles)",
            row.value("ops_per_mcycle").unwrap(),
            row.value("ops").unwrap() as u64,
            row.output.cycles
        );
    }

    let stats = skipit.output.stats.as_ref().expect("skip-it stats");
    let dropped: u64 = stats.l1.iter().map(|s| s.writebacks_skipped).sum();
    println!(
        "\nSkip It dropped {dropped} redundant writebacks at the L1 \
         (L2 trivially skipped {} more DRAM writes)",
        stats.l2.root_release_dram_skipped
    );
    println!(
        "speedup: {:.2}x",
        skipit.value("ops_per_mcycle").unwrap() / plain.value("ops_per_mcycle").unwrap()
    );
}
