//! A persistent key-value store (hash table of §7.4) running on Skip It
//! hardware vs the plain baseline — the headline end-to-end win of the
//! paper, reproduced as an application.
//!
//! Two workload threads hammer a persistent lock-free hash table under the
//! NVTraverse discipline. On Skip It hardware the redundant writebacks of
//! already-persisted lines are dropped at the L1; the run reports both
//! throughputs and the hardware drop counters.
//!
//! ```text
//! cargo run --release --example persistent_kv
//! ```

use skipit::pds::{run_set_benchmark, DsKind, OptKind, PersistMode, WorkloadCfg};

fn main() {
    let base = WorkloadCfg {
        ds: DsKind::Hash,
        mode: PersistMode::NvTraverse,
        threads: 2,
        key_range: 1024,
        prefill: 512,
        update_pct: 20,
        budget_cycles: 80_000,
        seed: 99,
        hash_buckets: 128,
        ..WorkloadCfg::default()
    };

    println!("persistent hash table, NVTraverse, 20% updates, 2 threads\n");

    let plain = run_set_benchmark(&WorkloadCfg {
        opt: OptKind::Plain,
        ..base
    });
    println!(
        "plain hardware : {:>6.1} ops/Mcycle ({} ops in {} cycles)",
        plain.throughput(),
        plain.ops,
        plain.cycles
    );

    let skipit = run_set_benchmark(&WorkloadCfg {
        opt: OptKind::SkipIt,
        ..base
    });
    let dropped: u64 = skipit.stats.l1.iter().map(|s| s.writebacks_skipped).sum();
    println!(
        "Skip It        : {:>6.1} ops/Mcycle ({} ops in {} cycles)",
        skipit.throughput(),
        skipit.ops,
        skipit.cycles
    );
    println!(
        "\nSkip It dropped {dropped} redundant writebacks at the L1 \
         (L2 trivially skipped {} more DRAM writes)",
        skipit.stats.l2.root_release_dram_skipped
    );
    println!("speedup: {:.2}x", skipit.throughput() / plain.throughput());
}
