//! CI smoke for the trace capture / replay subsystem (`ci.sh --quick`).
//!
//! 1. Captures a quickstart-shaped 2-core run and replays the trace on
//!    fresh systems under all four engines (the parallel wheel at 1 and 2
//!    threads), asserting bit-identical cycles, statistics and durable
//!    memory.
//! 2. Replays the two committed traces under `traces/` — the captured
//!    `persistent_kv.trace` and the hand-written `litmus_sb.txt` — and
//!    checks their architectural outcomes.
//! 3. Corrupts trace bytes and checks the decoder fails with typed
//!    errors, never a panic.
//! 4. Runs the `replay_sweep` perturbation grid serially and at 2 worker
//!    threads and asserts the two result tables are bit-identical.

use skipit::prelude::*;
use std::path::Path;

const ENGINES: [(EngineKind, usize); 5] = [
    (EngineKind::Naive, 0),
    (EngineKind::GlobalGate, 0),
    (EngineKind::ComponentWheel, 0),
    (EngineKind::ParallelWheel, 1),
    (EngineKind::ParallelWheel, 2),
];

fn build(engine: EngineKind, threads: usize, skip_it: bool) -> skipit::System {
    SystemBuilder::new()
        .cores(2)
        .skip_it(skip_it)
        .engine(engine)
        .engine_threads(threads)
        .build()
}

/// Replays `trace` under every engine and asserts all runs agree on
/// cycles, stats and durable image. Returns the agreed (cycles, stats).
fn replay_everywhere(trace: &MemTrace, skip_it: bool, what: &str) -> (u64, SystemStats) {
    let mut reference: Option<(u64, SystemStats, String)> = None;
    for (engine, threads) in ENGINES {
        let mut sys = build(engine, threads, skip_it);
        let cycles = sys.run(TraceReplay::new(trace.clone())).cycles;
        let got = (cycles, sys.stats(), format!("{:?}", sys.durable_image()));
        match &reference {
            None => reference = Some(got),
            Some(r) => assert_eq!(
                &got, r,
                "{what}: replay diverged under {engine:?}/{threads}t"
            ),
        }
    }
    let (cycles, stats, _) = reference.unwrap();
    (cycles, stats)
}

fn main() {
    // ---- 1. capture → replay round trip on a quickstart-shaped run ----
    let mut sys = build(EngineKind::ComponentWheel, 0, true);
    sys.start_capture();
    let ref_cycles = sys
        .run(Programs(vec![
            vec![
                Op::Store {
                    addr: 0x1000,
                    value: 42,
                },
                Op::Flush { addr: 0x1000 },
                Op::Fence,
                Op::Load { addr: 0x1000 },
                Op::Clean { addr: 0x1000 },
                Op::Fence,
            ],
            vec![
                Op::Load { addr: 0x1000 },
                Op::FetchAdd {
                    addr: 0x2000,
                    operand: 5,
                },
                Op::Flush { addr: 0x2000 },
                Op::Fence,
            ],
        ]))
        .cycles;
    let ref_stats = sys.stats();
    let ref_image = format!("{:?}", sys.durable_image());
    let trace = MemTrace::from_capture(2, 0, &sys.take_capture());

    // Byte-level round trip, then replay under every engine.
    let trace = MemTrace::from_bytes(&trace.to_bytes()).expect("fresh bytes decode");
    let (cycles, stats) = replay_everywhere(&trace, true, "captured run");
    assert_eq!(cycles, ref_cycles, "replay must reproduce the cycle count");
    assert_eq!(stats, ref_stats, "replay must reproduce the statistics");
    let mut sys = build(EngineKind::ComponentWheel, 0, true);
    sys.run(TraceReplay::new(trace.clone()));
    assert_eq!(
        format!("{:?}", sys.durable_image()),
        ref_image,
        "replay must reproduce the durable image"
    );
    println!("capture/replay round trip: {cycles} cycles bit-identical on all engines");

    // ---- 2. the committed traces ----
    let traces = Path::new(env!("CARGO_MANIFEST_DIR")).join("traces");

    let kv = MemTrace::from_file(traces.join("persistent_kv.trace"))
        .expect("committed persistent_kv.trace decodes");
    let (kv_cycles, _) = replay_everywhere(&kv, true, "persistent_kv");
    // The workload's final installs (see examples/capture_trace.rs): the
    // last update of each key persisted value 100 + i.
    let mut sys = build(EngineKind::ComponentWheel, 0, true);
    sys.run(TraceReplay::new(kv.clone()));
    for key in 0..4u64 {
        assert_eq!(
            sys.dram().read_word_direct(0x8_0000 + key * 64),
            100 + 8 + key,
            "kv slot {key} must hold its last installed value"
        );
    }
    println!(
        "persistent_kv.trace: {} records replayed in {kv_cycles} cycles",
        kv.len()
    );

    let text = std::fs::read_to_string(traces.join("litmus_sb.txt")).expect("read litmus");
    let litmus = MemTrace::from_text(&text).expect("committed litmus_sb.txt parses");
    let (sb_cycles, _) = replay_everywhere(&litmus, false, "litmus_sb");
    let mut sys = build(EngineKind::ComponentWheel, 0, false);
    sys.run(TraceReplay::new(litmus.clone()));
    assert_eq!(sys.dram().read_word_direct(0x40000), 1);
    assert_eq!(sys.dram().read_word_direct(0x40040), 1);
    println!(
        "litmus_sb.txt: {} records replayed in {sb_cycles} cycles",
        litmus.len()
    );

    // ---- 3. corruption is a typed error, never a panic ----
    let bytes = kv.to_bytes();
    let mut bad = bytes.clone();
    bad[0] ^= 0xff;
    assert!(matches!(
        MemTrace::from_bytes(&bad).unwrap_err(),
        TraceError::BadMagic
    ));
    let mut bad = bytes.clone();
    bad[4] = 0x7f; // version varint
    assert!(matches!(
        MemTrace::from_bytes(&bad).unwrap_err(),
        TraceError::BadVersion { found: 0x7f, .. }
    ));
    assert!(matches!(
        MemTrace::from_bytes(&bytes[..bytes.len() - 1]).unwrap_err(),
        TraceError::Truncated | TraceError::Corrupt(_)
    ));
    println!("corrupt traces decode to typed errors");

    // ---- 4. the replay sweep is relocatable across worker threads ----
    let sweep = |name: &str| skipit_bench::sweeps::replay_sweep(name, kv.clone(), &[0, 1, 2, 3]);
    let serial = SweepRunner::serial().run(sweep("replay_jitter"));
    let threaded = SweepRunner::new().threads(2).run(sweep("replay_jitter"));
    assert!(serial.all_ok() && threaded.all_ok());
    assert_eq!(
        serial.table(),
        threaded.table(),
        "replay sweep tables must be bit-identical at any thread count"
    );
    assert_eq!(
        serial.get("seed0").unwrap().output.cycles,
        kv_cycles,
        "seed 0 replays unperturbed"
    );
    println!("replay sweep: 4-seed grid bit-identical serial vs 2 threads");
    println!("replay smoke passed");
}
