//! CI smoke check for the telemetry sampler (`./ci.sh --quick`).
//!
//! Runs a short fig09-shaped store/clean workload with telemetry sampling
//! on, and exits nonzero on any of:
//!
//! * **observer effect** — the telemetry-on run diverges from an identical
//!   telemetry-off run in elapsed cycles or system statistics (sampling
//!   must be observation-only);
//! * **delta/total disagreement** — the per-interval deltas of any sampled
//!   series, summed over the whole run via [`System::telemetry_snapshot`],
//!   do not reproduce the end-of-run [`MetricsSnapshot`] totals exactly
//!   (ops, skip/enqueue counts, per-channel beats, DRAM traffic);
//! * **malformed counter tracks** — the Chrome-trace export is not valid
//!   JSON-shaped, emits the wrong number of `"ph":"C"` counter events for
//!   the sample count, or stamps them off the sampling grid.
//!
//! ```text
//! cargo run --release --example telemetry_smoke
//! ```

use skipit::core::MetricsSnapshot;
use skipit::prelude::*;

const CORES: usize = 4;
const INTERVAL: u64 = 256;

/// All-cores-busy store/clean loops in the shape of the paper's fig. 9
/// saturated-writeback experiment, plus a reload pass so skip-bit drops
/// actually fire.
fn fig9_programs() -> Vec<Vec<Op>> {
    (0..CORES as u64)
        .map(|t| {
            let base = 0x30_0000 + t * 0x1_0000;
            let mut p = Vec::new();
            for i in 0..64 {
                p.push(Op::Store {
                    addr: base + i * 64,
                    value: t << 32 | i,
                });
            }
            for i in 0..64 {
                p.push(Op::Clean {
                    addr: base + i * 64,
                });
            }
            p.push(Op::Fence);
            for i in 0..64 {
                p.push(Op::Load {
                    addr: base + i * 64,
                });
                p.push(Op::Clean {
                    addr: base + i * 64,
                });
            }
            p.push(Op::Fence);
            p
        })
        .collect()
}

fn run(telemetry: bool) -> (System, u64) {
    let mut sys = SystemBuilder::new().cores(CORES).skip_it(true).build();
    let mut cfg = TraceConfig::new().events(1 << 15);
    if telemetry {
        cfg = cfg.telemetry(INTERVAL);
    }
    sys.set_trace(cfg);
    let cycles = sys.run(Programs(fig9_programs())).cycles;
    sys.quiesce();
    (sys, cycles)
}

/// Summed sample deltas must exactly reproduce the end-of-run counter
/// totals — one `(series, summed, total)` check per line.
fn check_totals(tel: &Telemetry, snap: &MetricsSnapshot, cycles: u64) {
    let sum = |f: &dyn Fn(&TelemetrySample) -> u64| tel.samples().map(f).sum::<u64>();
    let total = |key: &str| snap.get(key).unwrap_or_else(|| panic!("no metric {key}"));

    let mut checks: Vec<(String, u64, u64)> = vec![
        (
            "dram_reads".into(),
            sum(&|s| s.dram_reads),
            total("dram.reads"),
        ),
        (
            "dram_writes".into(),
            sum(&|s| s.dram_writes),
            total("dram.writes"),
        ),
    ];
    for i in 0..CORES {
        checks.push((
            format!("core{i}.ops"),
            sum(&|s| s.cores[i].ops),
            total(&format!("l1.{i}.loads"))
                + total(&format!("l1.{i}.stores"))
                + total(&format!("l1.{i}.amos")),
        ));
        checks.push((
            format!("core{i}.skips"),
            sum(&|s| s.cores[i].skips),
            total(&format!("l1.{i}.writebacks_skipped")),
        ));
        checks.push((
            format!("core{i}.enqueued"),
            sum(&|s| s.cores[i].enqueued),
            total(&format!("l1.{i}.writebacks_enqueued")),
        ));
        for (ch_idx, ch) in ['a', 'b', 'c', 'd', 'e'].into_iter().enumerate() {
            checks.push((
                format!("core{i}.beats_{ch}"),
                sum(&|s| s.cores[i].link_beats[ch_idx]),
                total(&format!("link.{ch}.{i}.pushed")),
            ));
        }
    }
    let mut failed = false;
    for (name, summed, total) in &checks {
        if summed != total {
            eprintln!("FAIL {name}: summed interval deltas {summed} != end-of-run total {total}");
            failed = true;
        }
    }
    assert!(
        !failed,
        "telemetry interval deltas disagree with MetricsSnapshot totals"
    );
    // The snapshot must cover the whole run: the final (partial) sample
    // ends exactly at the last simulated cycle.
    let spans: u64 = tel.samples().map(|s| s.span).sum();
    let first = tel.samples().next().expect("run is long enough to sample");
    assert_eq!(
        first.cycle - first.span + spans,
        cycles,
        "telemetry samples do not tile the run"
    );
    println!(
        "# telemetry totals ok: {} series x {} samples match end-of-run metrics",
        checks.len(),
        tel.len()
    );
}

/// Structural validation of the exported counter tracks.
fn check_export(sys: &System, tel: &Telemetry) {
    let json = sys.export_chrome_trace();
    assert!(
        json.starts_with(r#"{"displayTimeUnit":"ms","traceEvents":["#) && json.ends_with("]}"),
        "chrome trace envelope malformed"
    );
    let counters: Vec<&str> = json
        .split("},{")
        .filter(|e| e.contains(r#""ph":"C""#))
        .collect();
    // The live sampler holds only boundary-aligned samples; every one of
    // them exports 6 per-core tracks + 2 system-wide tracks.
    let cycles: Vec<u64> = tel
        .samples()
        .filter(|s| s.cycle % tel.interval() == 0)
        .map(|s| s.cycle)
        .collect();
    let expected = cycles.len() * (6 * CORES + 2);
    assert_eq!(
        counters.len(),
        expected,
        "counter-track event count off: {} events for {} samples",
        counters.len(),
        tel.len()
    );
    for c in &counters {
        assert!(
            c.contains(r#""args":{"#) && c.contains(r#""pid":"#),
            "counter event missing pid/args: {c}"
        );
        let ts: u64 = c
            .split(r#""ts":"#)
            .nth(1)
            .and_then(|r| r.split(',').next())
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("counter event without numeric ts: {c}"));
        assert!(
            cycles.contains(&ts),
            "counter event stamped off the sampling grid (ts {ts}): {c}"
        );
    }
    println!(
        "# counter tracks ok: {} well-formed events on {} sampling points",
        counters.len(),
        cycles.len()
    );
}

fn main() {
    let (sys_off, cycles_off) = run(false);
    let (sys_on, cycles_on) = run(true);

    // Observation-only: telemetry must not move the simulation by a cycle.
    assert_eq!(cycles_off, cycles_on, "telemetry changed elapsed cycles");
    assert_eq!(
        sys_off.stats(),
        sys_on.stats(),
        "telemetry changed system statistics"
    );
    assert!(sys_off.telemetry_snapshot().is_none());
    println!("# observation-only ok: on/off runs identical over {cycles_on} cycles");

    let tel = sys_on
        .telemetry_snapshot()
        .expect("telemetry was configured");
    assert!(tel.len() >= 4, "run too short to exercise sampling");
    assert_eq!(tel.dropped(), 0, "ring too small for the smoke run");
    check_totals(&tel, &MetricsSnapshot::capture(&sys_on), cycles_on);
    check_export(&sys_on, sys_on.telemetry().expect("live sampler"));

    // The machine-readable exports must agree on the sample count.
    let json = tel.to_json();
    let csv = tel.to_csv();
    assert_eq!(
        json.matches("\"cycle\":").count(),
        tel.len(),
        "telemetry JSON sample count off"
    );
    assert_eq!(
        csv.lines().count(),
        1 + tel.len() * CORES,
        "telemetry CSV row count off"
    );
    println!("# telemetry smoke ok");
}
