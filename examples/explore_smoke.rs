//! CI smoke campaign for the adversarial exploration harness
//! (`./ci.sh --quick`).
//!
//! Runs 16 seeds of two contended scenarios under full perturbation
//! (arbitration jitter on every TileLink channel, flush-dispatch hold-off,
//! L2 MSHR rotation) with the invariant oracle watching every executed
//! cycle, serially and again across 2 worker threads. Exits nonzero if
//!
//! * any point reports an invariant violation (the error row carries the
//!   `(scenario, seed)` pair that reproduces it via
//!   `explore_one(scenario, seed, cfg)`), or
//! * any reported failure is not bit-reproducible from its coordinates, or
//! * the serial and 2-thread result tables are not bit-identical.
//!
//! ```text
//! cargo run --release --example explore_smoke
//! ```

use skipit::explore::{explore_one, run_campaign, ExploreConfig, Scenario};
use skipit::prelude::*;

const SEEDS: u64 = 16;
const SCENARIOS: [Scenario; 2] = [Scenario::FlushStorm, Scenario::SharedLines];

fn main() {
    let cfg = ExploreConfig::default();
    let serial = run_campaign(
        "explore_smoke",
        &SCENARIOS,
        0..SEEDS,
        cfg,
        &SweepRunner::serial(),
    );
    let threaded = run_campaign(
        "explore_smoke",
        &SCENARIOS,
        0..SEEDS,
        cfg,
        &SweepRunner::new().threads(2),
    );

    let mut failed = false;
    for row in serial.failed_rows() {
        eprintln!("FAIL: {} -> {:?}", row.label, row.status);
        failed = true;
        // Re-derive the coordinates from the label and check the failure
        // reproduces from them alone (the acceptance contract: the printed
        // pair is all that is needed).
        let (name, seed) = row
            .label
            .split_once('/')
            .expect("campaign labels are scenario/seed");
        let scenario = Scenario::from_name(name).expect("known scenario");
        let seed: u64 = seed.parse().expect("numeric seed");
        let a = explore_one(scenario, seed, cfg);
        let b = explore_one(scenario, seed, cfg);
        if a.violation.is_none() {
            eprintln!("FAIL: {} not reproducible from its coordinates", row.label);
        }
        if a.violation != b.violation || a.cycles != b.cycles {
            eprintln!("FAIL: {} replays are not bit-identical", row.label);
        }
    }
    if serial.to_json() != threaded.to_json() {
        eprintln!("FAIL: campaign tables diverge between 1 and 2 worker threads");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "explore smoke ok: {} points ({} scenarios x {SEEDS} seeds), zero \
         invariant violations, serial and 2-thread tables bit-identical",
        serial.rows().len(),
        SCENARIOS.len(),
    );
}
