//! Line-oriented text form for hand-written (litmus-style) traces.

use crate::format::{MemTrace, TraceRecord};
use crate::TraceError;
use skipit_boom::Op;

impl MemTrace {
    /// Renders the trace as the text form [`MemTrace::from_text`] parses:
    /// a `cores N` header followed by one record per line.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "cores {}", self.cores());
        for r in self.records() {
            let _ = write!(out, "{}", r.core);
            if r.gap > 0 {
                let _ = write!(out, " +{}", r.gap);
            }
            let _ = match r.op {
                Op::Load { addr } => writeln!(out, " load {addr:#x}"),
                Op::Store { addr, value } => writeln!(out, " store {addr:#x} {value}"),
                Op::Cas {
                    addr,
                    expected,
                    new,
                } => writeln!(out, " cas {addr:#x} {expected} {new}"),
                Op::FetchAdd { addr, operand } => {
                    writeln!(out, " fetch_add {addr:#x} {operand}")
                }
                Op::Swap { addr, operand } => writeln!(out, " swap {addr:#x} {operand}"),
                Op::Clean { addr } => writeln!(out, " clean {addr:#x}"),
                Op::Flush { addr } => writeln!(out, " flush {addr:#x}"),
                Op::Inval { addr } => writeln!(out, " inval {addr:#x}"),
                Op::Fence => writeln!(out, " fence"),
                Op::Nop { cycles } => writeln!(out, " nop {cycles}"),
            };
        }
        out
    }

    /// Parses the hand-writable text form. Grammar, one directive or
    /// record per line:
    ///
    /// ```text
    /// # comment — blank lines and everything after '#' are ignored
    /// cores 2                 # header: declared core count (required first)
    /// 0 store 0x1000 42       # <core> <kind> <operands…>
    /// 1 +3 load 0x1000        # optional +gap: cycles since the core's
    /// 0 flush 0x1000          #   previous record (default 0 — as early
    /// 0 fence                 #   as the machine allows)
    /// 1 nop 20                # think time: occupies the frontend 20 cycles
    /// ```
    ///
    /// Kinds and operands: `load a`, `store a v`, `cas a expected new`,
    /// `fetch_add a operand`, `swap a operand`, `clean a`, `flush a`,
    /// `inval a`, `fence`, `nop cycles`. Numbers are decimal or `0x` hex.
    ///
    /// # Errors
    ///
    /// [`TraceError::Text`] naming the offending 1-based line for any
    /// malformed directive, unknown kind, bad operand count or number, or
    /// record naming an undeclared core.
    pub fn from_text(text: &str) -> Result<Self, TraceError> {
        let mut trace: Option<MemTrace> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let body = raw.split('#').next().unwrap_or("").trim();
            if body.is_empty() {
                continue;
            }
            let mut fields = body.split_whitespace();
            let first = fields.next().expect("non-empty line has a field");
            if first == "cores" {
                if trace.is_some() {
                    return Err(err(line, "duplicate `cores` header"));
                }
                let n: u64 = number(
                    fields
                        .next()
                        .ok_or_else(|| err(line, "missing core count"))?,
                )
                .ok_or_else(|| err(line, "bad core count"))?;
                if !(1..=32).contains(&n) {
                    return Err(err(line, "core count must be 1..=32"));
                }
                if fields.next().is_some() {
                    return Err(err(line, "trailing fields after `cores`"));
                }
                trace = Some(MemTrace::new(n as u32));
                continue;
            }
            let trace = trace
                .as_mut()
                .ok_or_else(|| err(line, "first directive must be `cores N`"))?;
            let core: u64 = number(first).ok_or_else(|| err(line, "bad core number"))?;
            let mut kind = fields
                .next()
                .ok_or_else(|| err(line, "missing op kind"))?
                .to_string();
            let mut gap = 0u64;
            if let Some(g) = kind.strip_prefix('+') {
                gap = number(g).ok_or_else(|| err(line, "bad +gap"))?;
                kind = fields
                    .next()
                    .ok_or_else(|| err(line, "missing op kind after +gap"))?
                    .to_string();
            }
            let mut arg = |what: &str| -> Result<u64, TraceError> {
                let f = fields
                    .next()
                    .ok_or_else(|| err(line, &format!("missing {what}")))?;
                number(f).ok_or_else(|| err(line, &format!("bad {what}")))
            };
            let op = match kind.as_str() {
                "load" => Op::Load { addr: arg("addr")? },
                "store" => Op::Store {
                    addr: arg("addr")?,
                    value: arg("value")?,
                },
                "cas" => Op::Cas {
                    addr: arg("addr")?,
                    expected: arg("expected")?,
                    new: arg("new")?,
                },
                "fetch_add" => Op::FetchAdd {
                    addr: arg("addr")?,
                    operand: arg("operand")?,
                },
                "swap" => Op::Swap {
                    addr: arg("addr")?,
                    operand: arg("operand")?,
                },
                "clean" => Op::Clean { addr: arg("addr")? },
                "flush" => Op::Flush { addr: arg("addr")? },
                "inval" => Op::Inval { addr: arg("addr")? },
                "fence" => Op::Fence,
                "nop" => Op::Nop {
                    cycles: arg("cycles")?,
                },
                other => return Err(err(line, &format!("unknown op kind `{other}`"))),
            };
            if fields.next().is_some() {
                return Err(err(line, "trailing fields after record"));
            }
            let core = u32::try_from(core).map_err(|_| err(line, "bad core number"))?;
            trace
                .push(TraceRecord { core, gap, op })
                .map_err(|e| err(line, &e.to_string()))?;
        }
        trace.ok_or_else(|| err(0, "empty trace: no `cores N` header"))
    }
}

fn err(line: usize, msg: &str) -> TraceError {
    TraceError::Text {
        line,
        msg: msg.to_string(),
    }
}

fn number(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LITMUS: &str = "\
# store-buffering litmus shape
cores 2
0 store 0x1000 1
0 +2 load 0x1080
1 store 0x1080 1
1 +2 load 0x1000
0 fence
1 fence
";

    #[test]
    fn text_parses_and_roundtrips_through_binary() {
        let t = MemTrace::from_text(LITMUS).unwrap();
        assert_eq!(t.cores(), 2);
        assert_eq!(t.len(), 6);
        // text -> binary -> trace equals text -> trace
        let via_binary = MemTrace::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(via_binary, t);
        // and the rendered text re-parses to the same trace
        assert_eq!(MemTrace::from_text(&t.to_text()).unwrap(), t);
    }

    #[test]
    fn text_errors_name_the_line() {
        let e = MemTrace::from_text("cores 2\n0 teleport 0x1000\n").unwrap_err();
        assert_eq!(
            e,
            TraceError::Text {
                line: 2,
                msg: "unknown op kind `teleport`".into()
            }
        );
        assert!(MemTrace::from_text("0 load 0x0\n").is_err()); // no header
        assert!(MemTrace::from_text("cores 2\n5 load 0x0\n").is_err()); // core range
        assert!(MemTrace::from_text("cores 0\n").is_err());
        assert!(MemTrace::from_text("cores 2\n0 store 0x10\n").is_err()); // missing value
        assert!(MemTrace::from_text("").is_err());
    }

    #[test]
    fn gaps_parse_and_render() {
        let t = MemTrace::from_text("cores 1\n0 +41 fence\n").unwrap();
        assert_eq!(t.records()[0].gap, 41);
        assert!(t.to_text().contains("0 +41 fence"));
    }
}
