//! Trace capture & replay: a versioned, compact memory-trace format and
//! the [`Workload`] that feeds a trace back through the simulated SoC.
//!
//! The simulator's workloads were historically all *generators* — built-in
//! figure-shaped op scripts. This crate makes arbitrary programs runnable
//! at near-zero marginal cost: any run (program, thread or replay mode, any
//! engine) can be recorded with [`System::start_capture`], the recorded
//! stream converts to a portable [`MemTrace`], and a trace replays through
//! [`TraceReplay`] — bit-identically to the original run when the trace was
//! captured (see the round-trip contract below), or as a best-effort
//! schedule for hand-written traces.
//!
//! # Formats
//!
//! * **Binary** ([`MemTrace::to_bytes`] / [`MemTrace::from_bytes`]): a
//!   `SKTR`-magic, versioned LEB128 stream built on `skipit-snap`'s
//!   [`SnapWriter`](skipit_snap::SnapWriter)/[`SnapReader`](skipit_snap::SnapReader)
//!   primitives. Per record: issuing core,
//!   inter-op gap (cycles since the core's previous record), and the op
//!   (kind tag + varint operands). Corrupt, truncated or future-versioned
//!   input decodes to a typed [`TraceError`], never a panic.
//! * **Text** ([`MemTrace::to_text`] / [`MemTrace::from_text`]): a
//!   line-oriented form for hand-written litmus-style traces —
//!   `<core> [+gap] <kind> [operands…]` with `#` comments (see
//!   [`MemTrace::from_text`] for the grammar). Text and binary forms of
//!   the same trace are interconvertible without loss.
//!
//! # Round-trip contract
//!
//! `capture(run(W))` replayed on a fresh system with the same
//! configuration reproduces the original run bit-identically — same
//! cycles, statistics and durable image — under any engine at any thread
//! count, including under schedule perturbation. The capture records the
//! exact cycle each op entered its core's LSU; the replay frontend issues
//! each op no earlier than that cycle under the same issue-width and
//! LSU-room rules, so by induction the replayed machine passes through the
//! identical state sequence.
//!
//! ```
//! use skipit_boom::{Op, Programs, System, SystemConfig};
//! use skipit_replay::{MemTrace, TraceReplay};
//!
//! // Capture a run…
//! let mut sys = System::new(SystemConfig::default());
//! sys.start_capture();
//! let cycles = sys
//!     .run(Programs(vec![vec![
//!         Op::Store { addr: 0x1000, value: 42 },
//!         Op::Flush { addr: 0x1000 },
//!         Op::Fence,
//!     ]]))
//!     .cycles;
//! let trace = MemTrace::from_capture(2, 0, &sys.take_capture());
//!
//! // …and replay it bit-identically on a fresh system.
//! let mut replayed = System::new(SystemConfig::default());
//! let report = replayed.run(TraceReplay::new(trace));
//! assert_eq!(report.cycles, cycles);
//! assert_eq!(replayed.state_digest(), sys.state_digest());
//! ```

mod format;
mod text;

pub use format::{MemTrace, TraceRecord, TRACE_MAGIC, TRACE_VERSION};

use skipit_boom::workload::{RunReport, Workload};
use skipit_boom::System;
use skipit_snap::SnapError;
use std::fmt;

/// Typed trace decode/validation failure. Everything the format layer can
/// reject — truncated input, a foreign or future format, a malformed text
/// line, a record naming a core the trace's header does not declare —
/// reports as one of these variants, never as a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// The input ended before the decoder was done.
    Truncated,
    /// The header magic did not match — not a memory trace at all.
    BadMagic,
    /// The header version is one this build does not understand.
    BadVersion {
        /// Version found in the header.
        found: u64,
        /// Version this build writes.
        expected: u64,
    },
    /// A structural invariant failed; the payload names the decode site.
    Corrupt(&'static str),
    /// Trailing bytes after a complete decode (foreign or corrupt input).
    TrailingBytes {
        /// How many bytes were left over.
        remaining: usize,
    },
    /// A record named a core outside the trace's declared core count.
    CoreOutOfRange {
        /// Core named by the record.
        core: u32,
        /// Cores the trace declares.
        cores: u32,
    },
    /// A text-form parse failure, with the 1-based source line.
    Text {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// A filesystem failure while reading or writing a trace file.
    Io(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Truncated => write!(f, "trace truncated: unexpected end of input"),
            TraceError::BadMagic => write!(f, "not a memory trace: bad magic"),
            TraceError::BadVersion { found, expected } => {
                write!(f, "unsupported trace version {found} (expected {expected})")
            }
            TraceError::Corrupt(site) => write!(f, "corrupt trace at {site}"),
            TraceError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after trace decode")
            }
            TraceError::CoreOutOfRange { core, cores } => {
                write!(f, "record names core {core}, but the trace has {cores}")
            }
            TraceError::Text { line, msg } => write!(f, "trace text line {line}: {msg}"),
            TraceError::Io(msg) => write!(f, "trace file i/o: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<SnapError> for TraceError {
    fn from(e: SnapError) -> Self {
        match e {
            SnapError::UnexpectedEof => TraceError::Truncated,
            SnapError::Corrupt(site) => TraceError::Corrupt(site),
            SnapError::TrailingBytes { remaining } => TraceError::TrailingBytes { remaining },
            // The remaining variants are snapshot-layer concerns that the
            // trace header parsing never produces.
            _ => TraceError::Corrupt("snap layer"),
        }
    }
}

/// A captured or hand-written [`MemTrace`] as a [`Workload`]: replaying it
/// feeds each core's recorded op lane through the replay frontend (see
/// `skipit_boom::workload::ReplaySchedule`).
///
/// The trace may declare fewer cores than the target system (the extra
/// cores idle); declaring more is a panic when run, mirroring
/// `Programs`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceReplay {
    trace: MemTrace,
}

impl TraceReplay {
    /// Wraps a trace for replay.
    pub fn new(trace: MemTrace) -> Self {
        TraceReplay { trace }
    }

    /// The wrapped trace.
    pub fn trace(&self) -> &MemTrace {
        &self.trace
    }
}

impl Workload for TraceReplay {
    type Output = ();

    fn run(self, sys: &mut System) -> RunReport {
        sys.run(self.trace.schedule())
    }
}
