//! The [`MemTrace`] container and its binary codec.

use crate::TraceError;
use skipit_boom::workload::{CapturedOp, ReplaySchedule, TimedOp};
use skipit_boom::Op;
use skipit_snap::{Codec, SnapReader, SnapWriter, MAX_ELEMS};

/// Binary-form header magic (`b"SKTR"` — **SK**ip-it **TR**ace).
pub const TRACE_MAGIC: [u8; 4] = *b"SKTR";

/// Binary-form version this build reads and writes.
pub const TRACE_VERSION: u64 = 1;

/// One trace record: which core issues what, and how many cycles after the
/// core's previous record it becomes eligible.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Issuing core (must be below the trace's declared core count).
    pub core: u32,
    /// Inter-op gap: cycles since this core's previous record issued (for
    /// the core's first record: cycles since the trace's start).
    pub gap: u64,
    /// The operation.
    pub op: Op,
}

/// A portable memory trace: a declared core count plus an ordered stream
/// of [`TraceRecord`]s. Produced by capture mode
/// ([`MemTrace::from_capture`]), the text parser
/// ([`MemTrace::from_text`]) or by hand; consumed by
/// [`crate::TraceReplay`] and the binary/text encoders.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemTrace {
    cores: u32,
    records: Vec<TraceRecord>,
}

impl MemTrace {
    /// An empty trace for `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero (a trace must name at least one lane).
    pub fn new(cores: u32) -> Self {
        assert!(cores > 0, "a trace needs at least one core");
        MemTrace {
            cores,
            records: Vec::new(),
        }
    }

    /// The declared core count.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// The record stream, in trace order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// [`TraceError::CoreOutOfRange`] if the record names a core the trace
    /// does not declare.
    pub fn push(&mut self, record: TraceRecord) -> Result<(), TraceError> {
        if record.core >= self.cores {
            return Err(TraceError::CoreOutOfRange {
                core: record.core,
                cores: self.cores,
            });
        }
        self.records.push(record);
        Ok(())
    }

    /// Builds a trace from a capture-mode buffer
    /// (`System::take_capture`). `start` is the absolute cycle the captured
    /// run began at — each record's gap is computed against the core's
    /// previous record (or `start` for its first), so the trace is
    /// position-independent: replaying it on a fresh system at cycle 0
    /// reproduces the captured run's relative timing exactly.
    ///
    /// # Panics
    ///
    /// Panics if a captured op names a core `>= cores` or was captured
    /// before `start` (both indicate caller error, not corrupt input).
    pub fn from_capture(cores: u32, start: u64, captured: &[CapturedOp]) -> Self {
        let mut trace = MemTrace::new(cores);
        let mut last = vec![start; cores as usize];
        for c in captured {
            assert!(c.core < cores, "captured op on undeclared core {}", c.core);
            let prev = &mut last[c.core as usize];
            assert!(c.cycle >= *prev, "captured op stream is not monotonic");
            trace.records.push(TraceRecord {
                core: c.core,
                gap: c.cycle - *prev,
                op: c.op,
            });
            *prev = c.cycle;
        }
        trace
    }

    /// Lowers the trace to per-core cycle-stamped lanes — the
    /// [`ReplaySchedule`] workload the replay frontend executes. Each
    /// core's stamps are the cumulative sum of its gaps.
    pub fn schedule(&self) -> ReplaySchedule {
        let mut lanes = vec![Vec::new(); self.cores as usize];
        let mut at = vec![0u64; self.cores as usize];
        for r in &self.records {
            let t = &mut at[r.core as usize];
            *t += r.gap;
            lanes[r.core as usize].push(TimedOp { at: *t, op: r.op });
        }
        ReplaySchedule { lanes }
    }

    /// Encodes the trace to the versioned binary form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_raw(&TRACE_MAGIC);
        w.put_u64(TRACE_VERSION);
        w.put_u64(u64::from(self.cores));
        w.put_u64(self.records.len() as u64);
        for r in &self.records {
            w.put_u64(u64::from(r.core));
            w.put_u64(r.gap);
            r.op.encode(&mut w);
        }
        w.into_bytes()
    }

    /// Decodes a trace from the versioned binary form.
    ///
    /// # Errors
    ///
    /// A typed [`TraceError`] for anything malformed: wrong magic, a
    /// version this build does not read, truncation anywhere, records
    /// naming undeclared cores, or trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TraceError> {
        let mut r = SnapReader::new(bytes);
        if r.get_raw(4).map_err(|_| TraceError::Truncated)? != TRACE_MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = r.get_u64()?;
        if version != TRACE_VERSION {
            return Err(TraceError::BadVersion {
                found: version,
                expected: TRACE_VERSION,
            });
        }
        let cores = u32::decode(&mut r).map_err(|_| TraceError::Corrupt("core count"))?;
        if cores == 0 || cores > 32 {
            return Err(TraceError::Corrupt("core count"));
        }
        let count = r.get_count(MAX_ELEMS, "record count")?;
        let mut trace = MemTrace::new(cores);
        trace.records.reserve(count.min(1 << 16));
        for _ in 0..count {
            let core = u32::decode(&mut r).map_err(|_| TraceError::Corrupt("record core"))?;
            if core >= cores {
                return Err(TraceError::CoreOutOfRange { core, cores });
            }
            let gap = r.get_u64()?;
            let op = Op::decode(&mut r)?;
            trace.records.push(TraceRecord { core, gap, op });
        }
        r.finish()?;
        Ok(trace)
    }

    /// Writes the binary form to a file.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] on any filesystem failure.
    pub fn to_file<P: AsRef<std::path::Path>>(&self, path: P) -> Result<(), TraceError> {
        std::fs::write(path, self.to_bytes()).map_err(|e| TraceError::Io(e.to_string()))
    }

    /// Reads the binary form from a file.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] on any filesystem failure; otherwise as
    /// [`MemTrace::from_bytes`].
    pub fn from_file<P: AsRef<std::path::Path>>(path: P) -> Result<Self, TraceError> {
        let bytes = std::fs::read(path).map_err(|e| TraceError::Io(e.to_string()))?;
        MemTrace::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MemTrace {
        let mut t = MemTrace::new(2);
        for r in [
            TraceRecord {
                core: 0,
                gap: 0,
                op: Op::Store {
                    addr: 0x1000,
                    value: 42,
                },
            },
            TraceRecord {
                core: 1,
                gap: 3,
                op: Op::Load { addr: 0x1000 },
            },
            TraceRecord {
                core: 0,
                gap: 7,
                op: Op::Flush { addr: 0x1000 },
            },
            TraceRecord {
                core: 0,
                gap: 0,
                op: Op::Fence,
            },
            TraceRecord {
                core: 1,
                gap: 100,
                op: Op::Nop { cycles: 25 },
            },
        ] {
            t.push(r).unwrap();
        }
        t
    }

    #[test]
    fn binary_roundtrip() {
        let t = sample();
        let bytes = t.to_bytes();
        assert_eq!(MemTrace::from_bytes(&bytes).unwrap(), t);
    }

    #[test]
    fn truncation_is_typed() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            let err = MemTrace::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    TraceError::Truncated | TraceError::BadMagic | TraceError::Corrupt(_)
                ),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_and_version() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert_eq!(
            MemTrace::from_bytes(&bytes).unwrap_err(),
            TraceError::BadMagic
        );
        let mut bytes = sample().to_bytes();
        bytes[4] = 9; // version varint
        assert_eq!(
            MemTrace::from_bytes(&bytes).unwrap_err(),
            TraceError::BadVersion {
                found: 9,
                expected: TRACE_VERSION
            }
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert_eq!(
            MemTrace::from_bytes(&bytes).unwrap_err(),
            TraceError::TrailingBytes { remaining: 1 }
        );
    }

    #[test]
    fn out_of_range_core_rejected() {
        let mut t = MemTrace::new(1);
        assert_eq!(
            t.push(TraceRecord {
                core: 1,
                gap: 0,
                op: Op::Fence
            }),
            Err(TraceError::CoreOutOfRange { core: 1, cores: 1 })
        );
        // And on decode: hand-craft a trace whose record names core 7.
        let mut w = SnapWriter::new();
        w.put_raw(&TRACE_MAGIC);
        w.put_u64(TRACE_VERSION);
        w.put_u64(1); // cores
        w.put_u64(1); // records
        w.put_u64(7); // core out of range
        w.put_u64(0);
        Op::Fence.encode(&mut w);
        assert_eq!(
            MemTrace::from_bytes(&w.into_bytes()).unwrap_err(),
            TraceError::CoreOutOfRange { core: 7, cores: 1 }
        );
    }

    #[test]
    fn schedule_accumulates_per_core_gaps() {
        let s = sample().schedule();
        assert_eq!(s.lanes.len(), 2);
        let at0: Vec<u64> = s.lanes[0].iter().map(|t| t.at).collect();
        let at1: Vec<u64> = s.lanes[1].iter().map(|t| t.at).collect();
        assert_eq!(at0, vec![0, 7, 7]);
        assert_eq!(at1, vec![3, 103]);
    }

    #[test]
    fn from_capture_computes_gaps_against_start() {
        use skipit_boom::workload::CapturedOp;
        let cap = [
            CapturedOp {
                cycle: 100,
                core: 0,
                op: Op::Fence,
            },
            CapturedOp {
                cycle: 105,
                core: 1,
                op: Op::Fence,
            },
            CapturedOp {
                cycle: 107,
                core: 0,
                op: Op::Fence,
            },
        ];
        let t = MemTrace::from_capture(2, 100, &cap);
        let gaps: Vec<u64> = t.records().iter().map(|r| r.gap).collect();
        assert_eq!(gaps, vec![0, 5, 7]);
    }
}
