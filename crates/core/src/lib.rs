//! **Skip It** — user-controlled cache writebacks on a simulated BOOM-style
//! multicore.
//!
//! This crate is the public face of a full reproduction of *Skip It: Take
//! Control of Your Cache!* (Anand, Friedman, Giardino, Alonso — ASPLOS
//! 2024). The paper adds two RISC-V cache-management instructions
//! (`CBO.CLEAN`, `CBO.FLUSH`) to the SonicBOOM out-of-order core, builds the
//! *flush unit* microarchitecture that executes them asynchronously, extends
//! the SiFive inclusive L2 with `RootRelease` transactions, and introduces
//! **Skip It**: a per-line *skip bit* that lets the L1 drop writebacks of
//! lines already persisted in main memory.
//!
//! Because the original artifact is RTL on FPGA, this reproduction is a
//! cycle-level software simulator with the same protocol structure (see
//! DESIGN.md at the repository root for the fidelity contract). Everything
//! the paper's evaluation exercises is here: the flush queue and FSHR state
//! machine (§5.2), probe/eviction interference handling (§5.4), the L2
//! dirty-bit "trivial skip" (§5.5), `GrantDataDirty` and the skip bit (§6),
//! and fence integration (§5.3).
//!
//! # Quickstart
//!
//! ```
//! use skipit_core::{Op, Programs, SystemBuilder};
//!
//! // A dual-core SoC with Skip It enabled.
//! let mut sys = SystemBuilder::new().cores(2).skip_it(true).build();
//!
//! // Persist a value: store, flush, fence (§4 scenario (c)).
//! let report = sys.run(Programs(vec![vec![
//!     Op::Store { addr: 0x1000, value: 42 },
//!     Op::Flush { addr: 0x1000 },
//!     Op::Fence,
//! ]]));
//! assert!(report.cycles > 0);
//! assert_eq!(sys.dram().read_word_direct(0x1000), 42);
//!
//! // Load the line back and clean it twice: the second clean finds the
//! // line valid + clean + skip bit set, and is dropped in hardware.
//! sys.run(Programs(vec![vec![
//!     Op::Load { addr: 0x1000 },
//!     Op::Clean { addr: 0x1000 },
//!     Op::Fence,
//! ]]));
//! let before = sys.stats().l1[0].writebacks_skipped;
//! sys.run(Programs(vec![vec![Op::Clean { addr: 0x1000 }, Op::Fence]]));
//! assert_eq!(sys.stats().l1[0].writebacks_skipped, before + 1);
//! ```
//!
//! # Crash consistency
//!
//! The DRAM model is the persistence domain: [`System::durable_image`]
//! hands back what a power failure *right now* would leave behind (caches
//! and in-flight traffic lost), which is how the crash-consistency tests
//! verify the §4 memory semantics end to end.
//!
//! # Checkpoint / restore
//!
//! [`System::snapshot`] serializes the *complete* simulated state — LSUs,
//! frontends, both cache levels with their MSHRs and flush units, the
//! TileLink FIFOs, DRAM, clock and perturbation counters — into a
//! versioned [`Snapshot`]; [`System::restore`] turns it back into a live
//! system that is bit-identical going forward, on any engine at any
//! thread count. The sweep layer builds warm-started parameter sweeps and
//! resumable campaigns on top of this (see `skipit-sweep`).

pub mod asm;
pub mod builder;
pub mod check;
pub mod metrics;

pub use builder::{ConfigError, SystemBuilder};
pub use metrics::{MetricsRegistry, MetricsSnapshot};
pub use skipit_boom::{
    CapturedOp, CoreHandle, EngineKind, EngineStats, LatencyHistogram, Op, PhaseProfile, Programs,
    ReplaySchedule, RunReport, Snapshot, SnapshotError, System, SystemConfig, SystemStats, Threads,
    TimedOp, TraceLog, TraceRecord, Workload, PROFILE_COMPILED,
};
pub use skipit_dcache::{DataCache, FlushEntry, FlushUnit, Fshr, FshrState, L1Config, L1Stats};
pub use skipit_llc::{InclusiveCache, L2Config, L2Stats};
pub use skipit_mem::{Dram, DramConfig, MemStats};
pub use skipit_tilelink::{
    ClientState, LineAddr, LineData, PerturbConfig, WritebackKind, LINE_BYTES, WORDS_PER_LINE,
};
pub use skipit_trace::{
    CoreCounters, CoreSample, MsgDesc, StreamEvent, Telemetry, TelemetryCounters, TelemetrySample,
    TimedEvent, TraceConfig, TraceEvent, TraceFilter, TraceSink, TRACE_COMPILED,
};

/// Convenience: builds the paper's §7.1 evaluation platform (dual-core,
/// 32 KiB L1s, 512 KiB shared inclusive L2) with Skip It on or off.
///
/// # Example
///
/// ```
/// let sys = skipit_core::paper_platform(true);
/// assert_eq!(sys.config().cores, 2);
/// assert!(sys.config().l1.skip_it);
/// ```
pub fn paper_platform(skip_it: bool) -> System {
    SystemBuilder::new().cores(2).skip_it(skip_it).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_platform_geometry() {
        let sys = paper_platform(false);
        assert_eq!(sys.config().l1.capacity_bytes(), 32 * 1024);
        assert_eq!(sys.config().l2.capacity_bytes(), 512 * 1024);
        assert!(!sys.config().l1.skip_it);
    }
}
