//! Differential checking utilities: run op sequences against a flat
//! functional memory model and report divergences.
//!
//! The checker is the library form of the repository's property tests: it
//! executes a single-core program twice — once on the simulated SoC, once
//! on an ideal sequential memory — and compares every load value plus the
//! post-fence durable image. It is deliberately single-core (multicore
//! interleavings admit many correct outcomes; see the litmus example for
//! those).
//!
//! # Example
//!
//! ```
//! use skipit_core::check::ModelChecker;
//! use skipit_core::{Op, SystemBuilder};
//!
//! let mut checker = ModelChecker::new(SystemBuilder::new().cores(1).build());
//! let report = checker.run(&[
//!     Op::Store { addr: 0x100, value: 9 },
//!     Op::Load { addr: 0x100 },
//!     Op::Flush { addr: 0x100 },
//!     Op::Fence,
//! ]);
//! assert!(report.is_consistent(), "{report}");
//! ```

use skipit_boom::{CoreHandle, Op, System, Threads};
use std::collections::HashMap;
use std::fmt;

/// One observed divergence between the simulator and the reference model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Divergence {
    /// A load returned a value different from the model's.
    StaleLoad {
        /// Index of the op in the program.
        op_index: usize,
        /// Word address.
        addr: u64,
        /// Value the simulator returned.
        got: u64,
        /// Value the model expected.
        want: u64,
    },
    /// After the program's writebacks and fences, a word that the model
    /// says must be durable holds something else in DRAM.
    NotDurable {
        /// Word address.
        addr: u64,
        /// Durable value observed.
        got: u64,
        /// Value the model expected.
        want: u64,
    },
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::StaleLoad {
                op_index,
                addr,
                got,
                want,
            } => write!(
                f,
                "op {op_index}: load {addr:#x} returned {got:#x}, model says {want:#x}"
            ),
            Divergence::NotDurable { addr, got, want } => write!(
                f,
                "durability: {addr:#x} holds {got:#x} in DRAM, model says {want:#x}"
            ),
        }
    }
}

/// Result of one differential run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Divergences found (empty = consistent).
    pub divergences: Vec<Divergence>,
    /// Ops executed.
    pub ops: usize,
    /// Simulated cycles consumed.
    pub cycles: u64,
}

impl Report {
    /// Whether the run matched the model exactly.
    pub fn is_consistent(&self) -> bool {
        self.divergences.is_empty()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_consistent() {
            write!(f, "consistent ({} ops, {} cycles)", self.ops, self.cycles)
        } else {
            writeln!(
                f,
                "{} divergence(s) over {} ops:",
                self.divergences.len(),
                self.ops
            )?;
            for d in &self.divergences {
                writeln!(f, "  {d}")?;
            }
            Ok(())
        }
    }
}

/// The flat reference model: word values plus, per word, what must be
/// durable after the last completed fence.
#[derive(Clone, Debug, Default)]
struct Model {
    mem: HashMap<u64, u64>,
    /// Lines with writes not yet covered by a completed writeback+fence.
    durable: HashMap<u64, u64>,
    /// Lines with an issued (but unfenced) writeback of some snapshot.
    pending_wb: HashMap<u64, Vec<(u64, u64)>>,
}

impl Model {
    fn line_words(addr: u64) -> impl Iterator<Item = u64> {
        let base = addr & !63;
        (0..8).map(move |i| base + i * 8)
    }

    fn apply(&mut self, op: &Op) -> Option<u64> {
        match *op {
            Op::Store { addr, value } => {
                self.mem.insert(addr, value);
                None
            }
            Op::Load { addr } => Some(self.mem.get(&addr).copied().unwrap_or(0)),
            Op::Cas {
                addr,
                expected,
                new,
            } => {
                let old = self.mem.get(&addr).copied().unwrap_or(0);
                if old == expected {
                    self.mem.insert(addr, new);
                }
                Some(old)
            }
            Op::FetchAdd { addr, operand } => {
                let old = self.mem.get(&addr).copied().unwrap_or(0);
                self.mem.insert(addr, old.wrapping_add(operand));
                Some(old)
            }
            Op::Swap { addr, operand } => {
                let old = self.mem.get(&addr).copied().unwrap_or(0);
                self.mem.insert(addr, operand);
                Some(old)
            }
            Op::Clean { addr } | Op::Flush { addr } => {
                // Snapshot the line's current values: they are durable once
                // a later fence completes.
                let snap: Vec<(u64, u64)> = Self::line_words(addr)
                    .map(|w| (w, self.mem.get(&w).copied().unwrap_or(0)))
                    .collect();
                self.pending_wb.entry(addr & !63).or_default().extend(snap);
                None
            }
            Op::Inval { addr } => {
                // Discard semantics: cached values revert to the durable
                // image (conservatively: to whatever was last made durable,
                // else zero).
                for w in Self::line_words(addr) {
                    let durable = self.durable.get(&w).copied().unwrap_or(0);
                    self.mem.insert(w, durable);
                }
                self.pending_wb.remove(&(addr & !63));
                None
            }
            Op::Fence => {
                for (_, snaps) in self.pending_wb.drain() {
                    for (w, v) in snaps {
                        self.durable.insert(w, v);
                    }
                }
                None
            }
            Op::Nop { .. } => None,
        }
    }
}

/// Differential checker over a single-core [`System`]. See
/// [module docs](self).
#[derive(Debug)]
pub struct ModelChecker {
    sys: System,
}

impl ModelChecker {
    /// Wraps a system (must have at least one core; only core 0 is driven).
    pub fn new(sys: System) -> Self {
        ModelChecker { sys }
    }

    /// Runs `program` on core 0 and on the reference model; returns the
    /// divergence report. Callable repeatedly — simulator state persists
    /// across calls, the model is rebuilt fresh each call, so each call's
    /// program should be self-contained (start from stores).
    pub fn run(&mut self, program: &[Op]) -> Report {
        let mut model = Model::default();
        let expectations: Vec<Option<u64>> = program.iter().map(|op| model.apply(op)).collect();
        let prog: Vec<Op> = program.to_vec();
        let start = self.sys.now();
        let (_, loads) = self
            .sys
            .run(Threads::new(vec![move |h: CoreHandle| {
                let mut out = Vec::new();
                for op in &prog {
                    let v = match *op {
                        Op::Load { addr } => Some(h.load(addr)),
                        Op::Store { addr, value } => {
                            h.store(addr, value);
                            None
                        }
                        Op::Cas {
                            addr,
                            expected,
                            new,
                        } => Some(h.cas(addr, expected, new)),
                        Op::FetchAdd { addr, operand } => Some(h.fetch_add(addr, operand)),
                        Op::Swap { addr, operand } => Some(h.swap(addr, operand)),
                        Op::Clean { addr } => {
                            h.clean(addr);
                            None
                        }
                        Op::Flush { addr } => {
                            h.flush(addr);
                            None
                        }
                        Op::Inval { addr } => {
                            h.inval(addr);
                            None
                        }
                        Op::Fence => {
                            h.fence();
                            None
                        }
                        Op::Nop { cycles } => {
                            h.work(cycles);
                            None
                        }
                    };
                    out.push(v);
                }
                out
            }]))
            .into_parts();
        let mut report = Report {
            ops: program.len(),
            cycles: self.sys.now() - start,
            ..Report::default()
        };
        for (i, (got, want)) in loads[0].iter().zip(&expectations).enumerate() {
            if let (Some(got), Some(want)) = (got, want) {
                if got != want {
                    report.divergences.push(Divergence::StaleLoad {
                        op_index: i,
                        addr: program[i].addr().unwrap_or(0),
                        got: *got,
                        want: *want,
                    });
                }
            }
        }
        // Durability check against the live DRAM image.
        for (&addr, &want) in &model.durable {
            let got = self.sys.dram().read_word_direct(addr);
            if got != want {
                report
                    .divergences
                    .push(Divergence::NotDurable { addr, got, want });
            }
        }
        report
    }

    /// Consumes the checker, returning the system (e.g. for a crash test).
    pub fn into_system(self) -> System {
        self.sys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemBuilder;

    #[test]
    fn consistent_program_reports_clean() {
        let mut c = ModelChecker::new(SystemBuilder::new().cores(1).build());
        let r = c.run(&[
            Op::Store {
                addr: 0x100,
                value: 1,
            },
            Op::Load { addr: 0x100 },
            Op::FetchAdd {
                addr: 0x100,
                operand: 4,
            },
            Op::Load { addr: 0x100 },
            Op::Clean { addr: 0x100 },
            Op::Fence,
        ]);
        assert!(r.is_consistent(), "{r}");
        assert_eq!(r.ops, 6);
        assert!(r.cycles > 0);
    }

    #[test]
    fn inval_model_matches_simulator() {
        let mut c = ModelChecker::new(SystemBuilder::new().cores(1).skip_it(true).build());
        let r = c.run(&[
            Op::Store {
                addr: 0x200,
                value: 7,
            },
            Op::Flush { addr: 0x200 },
            Op::Fence,
            Op::Store {
                addr: 0x200,
                value: 8,
            },
            Op::Inval { addr: 0x200 },
            Op::Fence,
            Op::Load { addr: 0x200 }, // must see the durable 7, not 8
        ]);
        assert!(r.is_consistent(), "{r}");
    }

    #[test]
    fn report_display_nonempty() {
        let r = Report {
            divergences: vec![Divergence::StaleLoad {
                op_index: 1,
                addr: 8,
                got: 2,
                want: 3,
            }],
            ops: 2,
            cycles: 10,
        };
        assert!(!r.is_consistent());
        assert!(format!("{r}").contains("stale") || format!("{r}").contains("load"));
    }
}
