//! Flat metrics registry: every counter the simulator keeps — per-core
//! [`L1Stats`], [`L2Stats`], DRAM, per-channel link pushes, the
//! fast-forward [`EngineStats`] and (when op tracing is on) the per-op-kind
//! latency percentiles — snapshotted into one key→value document that can
//! be diffed across phases and rendered as a single JSON object.
//!
//! Keys are dotted paths (`"l1.0.writebacks_skipped"`, `"link.c.1.pushed"`,
//! `"latency.flush.p99"`), sorted, so two snapshots of the same system
//! always enumerate the same keys in the same order.
//!
//! [`L1Stats`]: skipit_dcache::L1Stats
//! [`L2Stats`]: skipit_llc::L2Stats
//! [`EngineStats`]: skipit_boom::EngineStats

use skipit_boom::System;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One flat snapshot of every simulator counter, keyed by dotted path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    entries: BTreeMap<String, u64>,
}

impl MetricsSnapshot {
    /// Rebuilds a snapshot from raw key→value pairs (checkpoint decode;
    /// normal construction is [`MetricsSnapshot::capture`]).
    pub fn from_entries(entries: BTreeMap<String, u64>) -> Self {
        MetricsSnapshot { entries }
    }

    /// Captures every stats struct of `sys` into one flat snapshot.
    pub fn capture(sys: &System) -> Self {
        let mut e = BTreeMap::new();
        let stats = sys.stats();
        e.insert("cycles".to_string(), stats.cycles);
        for (i, l1) in stats.l1.iter().enumerate() {
            for (field, value) in [
                ("loads", l1.loads),
                ("load_hits", l1.load_hits),
                ("load_fshr_forwards", l1.load_fshr_forwards),
                ("stores", l1.stores),
                ("store_hits", l1.store_hits),
                ("amos", l1.amos),
                ("nacks", l1.nacks),
                ("writebacks_enqueued", l1.writebacks_enqueued),
                ("writebacks_skipped", l1.writebacks_skipped),
                ("writebacks_coalesced", l1.writebacks_coalesced),
                ("root_releases_sent", l1.root_releases_sent),
                ("root_releases_with_data", l1.root_releases_with_data),
                ("probes_handled", l1.probes_handled),
                ("probes_with_data", l1.probes_with_data),
                ("evictions", l1.evictions),
                ("dirty_evictions", l1.dirty_evictions),
                ("mshr_allocs", l1.mshr_allocs),
                ("mshr_secondaries", l1.mshr_secondaries),
                (
                    "flush_entries_probe_invalidated",
                    l1.flush_entries_probe_invalidated,
                ),
                (
                    "flush_entries_evict_invalidated",
                    l1.flush_entries_evict_invalidated,
                ),
            ] {
                e.insert(format!("l1.{i}.{field}"), value);
            }
        }
        let l2 = &stats.l2;
        for (field, value) in [
            ("acquires", l2.acquires),
            ("grants_clean", l2.grants_clean),
            ("grants_dirty", l2.grants_dirty),
            ("root_release_flush", l2.root_release_flush),
            ("root_release_clean", l2.root_release_clean),
            ("root_release_inval", l2.root_release_inval),
            ("root_release_dram_skipped", l2.root_release_dram_skipped),
            ("root_release_dram_writes", l2.root_release_dram_writes),
            ("probes_sent", l2.probes_sent),
            ("releases", l2.releases),
            ("evictions", l2.evictions),
            ("dirty_evictions", l2.dirty_evictions),
            ("mem_fills", l2.mem_fills),
            ("list_buffered", l2.list_buffered),
        ] {
            e.insert(format!("l2.{field}"), value);
        }
        e.insert("dram.reads".to_string(), stats.mem.reads);
        e.insert("dram.writes".to_string(), stats.mem.writes);
        let engine = sys.engine_stats();
        e.insert("engine.skipped_cycles".to_string(), engine.skipped_cycles);
        e.insert("engine.jumps".to_string(), engine.jumps);
        e.insert("engine.component_steps".to_string(), engine.component_steps);
        e.insert("engine.component_slots".to_string(), engine.component_slots);
        for core in 0..sys.config().cores {
            for ch in ['A', 'B', 'C', 'D', 'E'] {
                let ch_lower = ch.to_ascii_lowercase();
                e.insert(
                    format!("link.{ch_lower}.{core}.pushed"),
                    sys.link_pushed(ch, core),
                );
                e.insert(
                    format!("link.{ch_lower}.{core}.popped"),
                    sys.link_popped(ch, core),
                );
            }
        }
        for (kind, h) in sys.latency_histograms() {
            e.insert(format!("latency.{kind}.count"), h.count());
            e.insert(format!("latency.{kind}.sum"), h.sum());
            for (p, v) in [("p50", h.p50()), ("p90", h.p90()), ("p99", h.p99())] {
                if let Some(v) = v {
                    e.insert(format!("latency.{kind}.{p}"), v);
                }
            }
        }
        MetricsSnapshot { entries: e }
    }

    /// The sorted key→value pairs.
    pub fn entries(&self) -> impl Iterator<Item = (&str, u64)> {
        self.entries.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Value of one key.
    pub fn get(&self, key: &str) -> Option<u64> {
        self.entries.get(key).copied()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Per-key saturating difference `self - earlier` — what happened
    /// between two snapshots. Keys missing from `earlier` count from zero.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            entries: self
                .entries
                .iter()
                .map(|(k, &v)| {
                    let before = earlier.get(k).unwrap_or(0);
                    (k.clone(), v.saturating_sub(before))
                })
                .collect(),
        }
    }

    /// Renders the snapshot as one flat JSON object with sorted keys.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n  \"{k}\": {v}");
        }
        out.push_str("\n}");
        out
    }
}

/// Snapshot encoding for sweep checkpoints: the sorted key→value pairs.
/// `BTreeMap` iteration order makes the encoding deterministic, so equal
/// snapshots encode to equal bytes.
impl skipit_snap::Codec for MetricsSnapshot {
    fn encode(&self, w: &mut skipit_snap::SnapWriter) {
        w.put_u64(self.entries.len() as u64);
        for (k, v) in &self.entries {
            k.encode(w);
            v.encode(w);
        }
    }
    fn decode(r: &mut skipit_snap::SnapReader<'_>) -> Result<Self, skipit_snap::SnapError> {
        let n = r.get_count(skipit_snap::MAX_ELEMS, "metrics entry count")?;
        let mut entries = BTreeMap::new();
        for _ in 0..n {
            let k = String::decode(r)?;
            let v = r.get_u64()?;
            if entries.insert(k, v).is_some() {
                return Err(skipit_snap::SnapError::Corrupt("metrics duplicate key"));
            }
        }
        Ok(MetricsSnapshot { entries })
    }
}

/// Named snapshots of one run: capture at phase boundaries, diff phases
/// against each other, render everything as one JSON document.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    snapshots: BTreeMap<String, MetricsSnapshot>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Captures the current counters of `sys` under `name` (replacing any
    /// previous snapshot of that name).
    pub fn snapshot(&mut self, name: &str, sys: &System) -> &MetricsSnapshot {
        self.snapshots
            .insert(name.to_string(), MetricsSnapshot::capture(sys));
        &self.snapshots[name]
    }

    /// A stored snapshot.
    pub fn get(&self, name: &str) -> Option<&MetricsSnapshot> {
        self.snapshots.get(name)
    }

    /// Difference `to - from` between two stored snapshots, when both exist.
    pub fn diff(&self, from: &str, to: &str) -> Option<MetricsSnapshot> {
        Some(self.snapshots.get(to)?.diff(self.snapshots.get(from)?))
    }

    /// Renders every stored snapshot as one JSON document
    /// (`{"name": {flat object}, …}`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, snap)) in self.snapshots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let body = snap.to_json().replace('\n', "\n  ");
            let _ = write!(out, "\n  \"{name}\": {body}");
        }
        out.push_str("\n}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemBuilder;
    use skipit_boom::{Op, Programs};

    #[test]
    fn capture_diff_and_json() {
        let mut sys = SystemBuilder::new().cores(1).build();
        sys.set_trace(skipit_trace::TraceConfig::new().latency(1024));
        let mut reg = MetricsRegistry::new();
        reg.snapshot("start", &sys);
        sys.run(Programs(vec![vec![
            Op::Store {
                addr: 0x1000,
                value: 1,
            },
            Op::Flush { addr: 0x1000 },
            Op::Fence,
        ]]));
        reg.snapshot("end", &sys);
        let d = reg.diff("start", "end").expect("both snapshots exist");
        assert_eq!(d.get("l1.0.stores"), Some(1));
        assert_eq!(d.get("l1.0.writebacks_enqueued"), Some(1));
        assert_eq!(d.get("dram.writes"), Some(1));
        assert!(d.get("cycles").unwrap() > 0);
        assert!(
            d.get("link.a.0.pushed").unwrap() > 0,
            "the store must have sent an Acquire"
        );
        assert_eq!(d.get("latency.flush.count"), Some(1));
        let json = reg.to_json();
        assert!(json.contains("\"end\""));
        assert!(json.contains("\"l2.acquires\""));
        // Same-system snapshots enumerate identical key sets.
        let keys: Vec<&str> = reg
            .get("start")
            .unwrap()
            .entries()
            .map(|(k, _)| k)
            .collect();
        let keys_end: Vec<&str> = d.entries().map(|(k, _)| k).collect();
        let missing: Vec<&&str> = keys.iter().filter(|k| !keys_end.contains(k)).collect();
        assert!(missing.is_empty(), "start-only keys: {missing:?}");
    }

    #[test]
    fn diff_across_disjoint_key_sets() {
        // Snapshots of differently-shaped systems (1 vs 2 cores) have
        // disjoint per-core keys: `diff` keeps `self`'s key set, counts
        // keys missing from `earlier` from zero, and never underflows on
        // keys where `earlier` is ahead.
        let one = MetricsSnapshot::capture(&SystemBuilder::new().cores(1).build());
        let mut two = SystemBuilder::new().cores(2).build();
        two.run(Programs(vec![
            vec![Op::Store {
                addr: 0x2000,
                value: 9,
            }],
            vec![],
        ]));
        let two = MetricsSnapshot::capture(&two);
        assert_eq!(
            one.get("l1.1.stores"),
            None,
            "1-core snapshot has no core 1"
        );

        let d = two.diff(&one);
        let keys: Vec<&str> = d.entries().map(|(k, _)| k).collect();
        let keys_two: Vec<&str> = two.entries().map(|(k, _)| k).collect();
        assert_eq!(keys, keys_two, "diff must keep self's key set verbatim");
        // Core-1 keys exist only in `two`; they count from zero.
        assert_eq!(d.get("l1.1.stores"), Some(0));
        assert_eq!(d.get("l1.0.stores"), Some(1));
        // The reverse diff drops the core-1 keys entirely and saturates
        // (rather than underflows) where `two` ran ahead.
        let r = one.diff(&two);
        assert_eq!(r.get("l1.1.stores"), None);
        assert_eq!(r.get("cycles"), Some(0));
        assert_eq!(r.get("l1.0.stores"), Some(0));
    }

    #[test]
    fn snapshot_json_is_flat_and_sorted() {
        let sys = SystemBuilder::new().cores(2).build();
        let snap = MetricsSnapshot::capture(&sys);
        assert!(!snap.is_empty());
        let keys: Vec<&str> = snap.entries().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        assert_eq!(snap.get("engine.jumps"), Some(0));
        assert_eq!(snap.len(), keys.len());
        assert!(snap.to_json().starts_with('{'));
    }
}
