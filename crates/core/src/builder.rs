//! Fluent construction of simulated systems.

use skipit_boom::{EngineKind, System, SystemConfig};
use skipit_dcache::L1Config;
use skipit_llc::L2Config;
use skipit_mem::DramConfig;

/// Builder for a [`System`].
///
/// Defaults reproduce the paper's evaluation platform (§7.1) with Skip It
/// disabled (the baseline flush-unit design).
///
/// # Example
///
/// ```
/// use skipit_core::SystemBuilder;
///
/// let sys = SystemBuilder::new()
///     .cores(4)
///     .skip_it(true)
///     .flush_queue_depth(32)
///     .fshrs(8)
///     .build();
/// assert_eq!(sys.config().cores, 4);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct SystemBuilder {
    cfg: SystemConfig,
}

impl SystemBuilder {
    /// Starts from the paper's platform defaults.
    pub fn new() -> Self {
        SystemBuilder {
            cfg: SystemConfig::default(),
        }
    }

    /// Number of cores (1–32). Default 2.
    pub fn cores(mut self, n: usize) -> Self {
        self.cfg.cores = n;
        self
    }

    /// Enables or disables the Skip It optimization (§6). Default off.
    pub fn skip_it(mut self, on: bool) -> Self {
        self.cfg.l1.skip_it = on;
        self
    }

    /// Full L1 configuration override.
    pub fn l1(mut self, l1: L1Config) -> Self {
        self.cfg.l1 = l1;
        self
    }

    /// Full L2 configuration override.
    pub fn l2(mut self, l2: L2Config) -> Self {
        self.cfg.l2 = l2;
        self
    }

    /// DRAM timing override.
    pub fn dram(mut self, dram: DramConfig) -> Self {
        self.cfg.dram = dram;
        self
    }

    /// Flush-queue depth (§5.2). Default 16.
    pub fn flush_queue_depth(mut self, depth: usize) -> Self {
        self.cfg.l1.flush_queue_depth = depth;
        self
    }

    /// Enables cross-kind CBO.X coalescing — the future-work optimization
    /// named at the end of §5.3 (a queued clean is upgraded by an arriving
    /// flush; a queued flush absorbs an arriving clean). Default off, as in
    /// the paper's hardware.
    pub fn cross_kind_coalescing(mut self, on: bool) -> Self {
        self.cfg.l1.cross_kind_coalescing = on;
        self
    }

    /// Number of FSHRs (§5.2). Default 8, as in the paper.
    pub fn fshrs(mut self, n: usize) -> Self {
        self.cfg.l1.fshrs = n;
        self
    }

    /// TileLink hop latency in cycles. Default 2.
    pub fn link_latency(mut self, cycles: u64) -> Self {
        self.cfg.link_latency = cycles;
        self
    }

    /// Enables or disables event-driven fast simulation. Cycle counts and
    /// statistics are bit-identical either way; `true` (the default)
    /// selects the component-wheel engine, `false` plain cycle-by-cycle
    /// stepping. Use [`SystemBuilder::engine`] to pick a specific engine.
    pub fn fast_forward(mut self, on: bool) -> Self {
        self.cfg.engine = if on {
            EngineKind::ComponentWheel
        } else {
            EngineKind::Naive
        };
        self
    }

    /// Selects the simulation engine explicitly (naive / global-gate /
    /// component-wheel). All engines produce bit-identical cycles, stats,
    /// durable images and trace-event streams. Default
    /// [`EngineKind::ComponentWheel`].
    pub fn engine(mut self, kind: EngineKind) -> Self {
        self.cfg.engine = kind;
        self
    }

    /// Runs the lockstep oracle: every fast-forward jump is re-executed
    /// cycle by cycle and the engine panics if any state changes inside a
    /// window it claimed idle. Debug aid; costs the naive engine's speed.
    /// Default off.
    pub fn lockstep_oracle(mut self, on: bool) -> Self {
        self.cfg.lockstep_oracle = on;
        self
    }

    /// The assembled configuration (before building).
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Builds the system.
    ///
    /// # Panics
    ///
    /// Panics if the assembled configuration is invalid (zero-sized
    /// structures, non-power-of-two set counts, more than 32 cores).
    pub fn build(self) -> System {
        System::new(self.cfg)
    }
}

impl Default for SystemBuilder {
    fn default() -> Self {
        SystemBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_applies_overrides() {
        let b = SystemBuilder::new()
            .cores(8)
            .skip_it(true)
            .flush_queue_depth(4)
            .fshrs(2)
            .link_latency(1);
        assert_eq!(b.config().cores, 8);
        assert!(b.config().l1.skip_it);
        assert_eq!(b.config().l1.flush_queue_depth, 4);
        assert_eq!(b.config().l1.fshrs, 2);
        assert_eq!(b.config().link_latency, 1);
    }

    #[test]
    fn default_matches_new() {
        assert_eq!(
            SystemBuilder::default().config().cores,
            SystemBuilder::new().config().cores
        );
    }

    #[test]
    #[should_panic]
    fn zero_cores_rejected_at_build() {
        SystemBuilder::new().cores(0).build();
    }
}
