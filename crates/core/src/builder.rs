//! Fluent construction of simulated systems.

use skipit_boom::{EngineKind, System, SystemConfig};
use skipit_dcache::L1Config;
use skipit_llc::L2Config;
use skipit_mem::DramConfig;
use skipit_tilelink::PerturbConfig;

/// A reason a [`SystemConfig`] cannot be built into a [`System`].
///
/// Returned by [`SystemBuilder::try_build`]; [`SystemBuilder::build`]
/// panics with the same rendering. Every variant corresponds to an
/// invariant the simulation models rely on (index math on power-of-two set
/// counts, nonzero resource pools, a fast engine for the lockstep oracle
/// to check).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `cores` is outside the supported `1..=32` range.
    Cores {
        /// The rejected core count.
        got: usize,
    },
    /// A structure whose indexing requires a power-of-two size has some
    /// other size.
    NonPowerOfTwo {
        /// Which field (e.g. `"l1.sets"`).
        what: &'static str,
        /// The rejected size.
        got: usize,
    },
    /// A resource pool the models divide work across is empty.
    Zero {
        /// Which field (e.g. `"l1.fshrs"`).
        what: &'static str,
    },
    /// `lockstep_oracle` was requested together with [`EngineKind::Naive`]:
    /// the oracle re-executes fast-forward jumps with the naive engine, so
    /// there is nothing for it to check — the combination is always a
    /// configuration mistake.
    OracleNeedsFastEngine,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Cores { got } => {
                write!(f, "cores must be in 1..=32, got {got}")
            }
            ConfigError::NonPowerOfTwo { what, got } => {
                write!(f, "{what} must be a power of two, got {got}")
            }
            ConfigError::Zero { what } => write!(f, "{what} must be nonzero"),
            ConfigError::OracleNeedsFastEngine => write!(
                f,
                "lockstep_oracle requires a fast engine (GlobalGate or \
                 ComponentWheel) to check; it does nothing under Naive"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validates every invariant [`System::new`] (and the sub-component
/// constructors) would otherwise assert, as one typed error.
fn validate(cfg: &SystemConfig) -> Result<(), ConfigError> {
    if !(1..=32).contains(&cfg.cores) {
        return Err(ConfigError::Cores { got: cfg.cores });
    }
    for (what, got) in [("l1.sets", cfg.l1.sets), ("l2.sets", cfg.l2.sets)] {
        if !got.is_power_of_two() {
            return Err(ConfigError::NonPowerOfTwo { what, got });
        }
    }
    for (what, got) in [
        ("l1.ways", cfg.l1.ways),
        ("l1.mshrs", cfg.l1.mshrs),
        ("l1.rpq_depth", cfg.l1.rpq_depth),
        ("l1.flush_queue_depth", cfg.l1.flush_queue_depth),
        ("l1.fshrs", cfg.l1.fshrs),
        ("l2.ways", cfg.l2.ways),
        ("l2.mshrs", cfg.l2.mshrs),
        ("l2.list_buffer_depth", cfg.l2.list_buffer_depth),
        ("lsu.ldq_depth", cfg.lsu.ldq_depth),
        ("lsu.stq_depth", cfg.lsu.stq_depth),
        ("lsu.fire_width", cfg.lsu.fire_width),
        ("issue_width", cfg.issue_width),
        ("link_capacity", cfg.link_capacity),
    ] {
        if got == 0 {
            return Err(ConfigError::Zero { what });
        }
    }
    if cfg.lockstep_oracle && cfg.engine == EngineKind::Naive {
        return Err(ConfigError::OracleNeedsFastEngine);
    }
    Ok(())
}

/// Builder for a [`System`].
///
/// Defaults reproduce the paper's evaluation platform (§7.1) with Skip It
/// disabled (the baseline flush-unit design).
///
/// # Example
///
/// ```
/// use skipit_core::SystemBuilder;
///
/// let sys = SystemBuilder::new()
///     .cores(4)
///     .skip_it(true)
///     .flush_queue_depth(32)
///     .fshrs(8)
///     .build();
/// assert_eq!(sys.config().cores, 4);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct SystemBuilder {
    cfg: SystemConfig,
}

impl SystemBuilder {
    /// Starts from the paper's platform defaults.
    pub fn new() -> Self {
        SystemBuilder {
            cfg: SystemConfig::default(),
        }
    }

    /// Number of cores (1–32). Default 2.
    pub fn cores(mut self, n: usize) -> Self {
        self.cfg.cores = n;
        self
    }

    /// Enables or disables the Skip It optimization (§6). Default off.
    pub fn skip_it(mut self, on: bool) -> Self {
        self.cfg.l1.skip_it = on;
        self
    }

    /// Full L1 configuration override.
    pub fn l1(mut self, l1: L1Config) -> Self {
        self.cfg.l1 = l1;
        self
    }

    /// Full L2 configuration override.
    pub fn l2(mut self, l2: L2Config) -> Self {
        self.cfg.l2 = l2;
        self
    }

    /// DRAM timing override.
    pub fn dram(mut self, dram: DramConfig) -> Self {
        self.cfg.dram = dram;
        self
    }

    /// Flush-queue depth (§5.2). Default 16.
    pub fn flush_queue_depth(mut self, depth: usize) -> Self {
        self.cfg.l1.flush_queue_depth = depth;
        self
    }

    /// Enables cross-kind CBO.X coalescing — the future-work optimization
    /// named at the end of §5.3 (a queued clean is upgraded by an arriving
    /// flush; a queued flush absorbs an arriving clean). Default off, as in
    /// the paper's hardware.
    pub fn cross_kind_coalescing(mut self, on: bool) -> Self {
        self.cfg.l1.cross_kind_coalescing = on;
        self
    }

    /// Number of FSHRs (§5.2). Default 8, as in the paper.
    pub fn fshrs(mut self, n: usize) -> Self {
        self.cfg.l1.fshrs = n;
        self
    }

    /// TileLink hop latency in cycles. Default 2.
    pub fn link_latency(mut self, cycles: u64) -> Self {
        self.cfg.link_latency = cycles;
        self
    }

    /// Selects the simulation engine explicitly (naive / global-gate /
    /// component-wheel / parallel-wheel). All engines produce bit-identical
    /// cycles, stats, durable images and trace-event streams. Default
    /// [`EngineKind::ComponentWheel`].
    pub fn engine(mut self, kind: EngineKind) -> Self {
        self.cfg.engine = kind;
        self
    }

    /// Host threads for [`EngineKind::ParallelWheel`]'s intra-cycle core
    /// phase. `0` (the default) resolves at first use from
    /// `SKIPIT_ENGINE_THREADS` — which panics on unparseable or zero
    /// values, like `SKIPIT_SWEEP_THREADS` — falling back to the host's
    /// available parallelism. The resolved count is clamped to the core
    /// count. Other engines ignore this knob.
    pub fn engine_threads(mut self, threads: usize) -> Self {
        self.cfg.engine_threads = threads;
        self
    }

    /// Installs a seeded adversarial perturbation: bounded arbitration
    /// jitter on every TileLink channel, flush-queue→FSHR dispatch hold-off,
    /// and L2 MSHR scan rotation, all derived from `cfg.seed` by SplitMix64.
    /// The default [`PerturbConfig`] is inert — the built system is then
    /// bit-identical to one that never heard of perturbation.
    pub fn perturb(mut self, cfg: PerturbConfig) -> Self {
        self.cfg.perturb = cfg;
        self
    }

    /// Runs the lockstep oracle: every fast-forward jump is re-executed
    /// cycle by cycle and the engine panics if any state changes inside a
    /// window it claimed idle. Debug aid; costs the naive engine's speed.
    /// Default off.
    pub fn lockstep_oracle(mut self, on: bool) -> Self {
        self.cfg.lockstep_oracle = on;
        self
    }

    /// The assembled configuration (before building).
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Builds the system, or explains why the configuration is invalid.
    ///
    /// The fallible twin of [`SystemBuilder::build`]: every invariant the
    /// component constructors would assert (power-of-two set counts,
    /// nonzero resource pools, the supported core range, a fast engine
    /// under the lockstep oracle) is checked up front and reported as a
    /// typed [`ConfigError`] instead of a panic.
    ///
    /// # Example
    ///
    /// ```
    /// use skipit_core::{ConfigError, SystemBuilder};
    ///
    /// let err = SystemBuilder::new().cores(0).try_build().unwrap_err();
    /// assert_eq!(err, ConfigError::Cores { got: 0 });
    /// assert!(SystemBuilder::new().cores(4).try_build().is_ok());
    /// ```
    pub fn try_build(self) -> Result<System, ConfigError> {
        validate(&self.cfg)?;
        Ok(System::new(self.cfg))
    }

    /// Builds the system.
    ///
    /// # Panics
    ///
    /// Panics if the assembled configuration is invalid (zero-sized
    /// structures, non-power-of-two set counts, more than 32 cores, the
    /// lockstep oracle under the naive engine) — the panicking rendering
    /// of exactly the checks [`SystemBuilder::try_build`] reports as
    /// [`ConfigError`]s.
    pub fn build(self) -> System {
        self.try_build()
            .unwrap_or_else(|e| panic!("invalid system configuration: {e}"))
    }
}

impl Default for SystemBuilder {
    fn default() -> Self {
        SystemBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_applies_overrides() {
        let b = SystemBuilder::new()
            .cores(8)
            .skip_it(true)
            .flush_queue_depth(4)
            .fshrs(2)
            .link_latency(1);
        assert_eq!(b.config().cores, 8);
        assert!(b.config().l1.skip_it);
        assert_eq!(b.config().l1.flush_queue_depth, 4);
        assert_eq!(b.config().l1.fshrs, 2);
        assert_eq!(b.config().link_latency, 1);
    }

    #[test]
    fn engine_threads_knob_applies() {
        let b = SystemBuilder::new()
            .engine(EngineKind::ParallelWheel)
            .engine_threads(4);
        assert_eq!(b.config().engine, EngineKind::ParallelWheel);
        assert_eq!(b.config().engine_threads, 4);
        assert_eq!(
            SystemBuilder::new().config().engine_threads,
            0,
            "default must be auto-resolve"
        );
        b.build();
    }

    #[test]
    fn default_matches_new() {
        assert_eq!(
            SystemBuilder::default().config().cores,
            SystemBuilder::new().config().cores
        );
    }

    #[test]
    #[should_panic(expected = "cores must be in 1..=32")]
    fn zero_cores_rejected_at_build() {
        SystemBuilder::new().cores(0).build();
    }

    #[test]
    fn try_build_reports_typed_errors() {
        assert_eq!(
            SystemBuilder::new().cores(33).try_build().unwrap_err(),
            ConfigError::Cores { got: 33 }
        );
        let mut l1 = L1Config::default();
        l1.sets = 48;
        assert_eq!(
            SystemBuilder::new().l1(l1).try_build().unwrap_err(),
            ConfigError::NonPowerOfTwo {
                what: "l1.sets",
                got: 48
            }
        );
        let mut l1 = L1Config::default();
        l1.fshrs = 0;
        assert_eq!(
            SystemBuilder::new().l1(l1).try_build().unwrap_err(),
            ConfigError::Zero { what: "l1.fshrs" }
        );
        assert_eq!(
            SystemBuilder::new()
                .engine(EngineKind::Naive)
                .lockstep_oracle(true)
                .try_build()
                .unwrap_err(),
            ConfigError::OracleNeedsFastEngine
        );
        // The same combination under a fast engine is the supported debug
        // mode.
        assert!(SystemBuilder::new()
            .engine(EngineKind::ComponentWheel)
            .lockstep_oracle(true)
            .try_build()
            .is_ok());
    }

    #[test]
    fn config_error_renders_the_reason() {
        let msg = ConfigError::NonPowerOfTwo {
            what: "l2.sets",
            got: 100,
        }
        .to_string();
        assert!(msg.contains("l2.sets") && msg.contains("100"), "{msg}");
    }
}
