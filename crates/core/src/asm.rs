//! RISC-V instruction encodings for the simulated operations, and a small
//! assembly-text front-end for writing simulator programs.
//!
//! The paper implements the CMO extension's `CBO.CLEAN` / `CBO.FLUSH`
//! (§2.6), which are ratified RISC-V encodings in the `MISC-MEM` opcode
//! space: `cbo.clean rs1` is `0x0010200F | rs1 << 15`, `cbo.flush rs1` is
//! `0x0020200F | rs1 << 15` (funct12 = 1/2 in `imm[11:0]`, `rd = 0`,
//! `funct3 = 010`). This module encodes/decodes the subset of RV64 the
//! simulator executes, so programs can be written as assembly text and
//! traced back to real instruction words.
//!
//! The text format is one instruction per line, with `x0`–`x31`-free
//! operand syntax: addresses and values are immediates (the simulator has
//! no register file — it is a memory-system model):
//!
//! ```text
//! sd      0x1000, 42        # store 42 to 0x1000
//! ld      0x1000            # load
//! cbo.flush 0x1000          # CBO.FLUSH of the line containing 0x1000
//! cbo.clean 0x1000
//! fence                     # FENCE RW, RW
//! nop     8                 # 8 cycles of non-memory work
//! amoadd.d 0x2000, 5        # fetch-and-add
//! amoswap.d 0x2000, 7       # swap
//! cas     0x2000, 5, 9      # compare-and-swap (Zacas-style)
//! ```
//!
//! # Example
//!
//! ```
//! use skipit_core::asm;
//!
//! let prog = asm::assemble(
//!     "sd 0x1000, 7\n cbo.flush 0x1000\n fence",
//! ).unwrap();
//! assert_eq!(prog.len(), 3);
//! let mut sys = skipit_core::paper_platform(false);
//! sys.run(skipit_core::Programs(vec![prog]));
//! assert_eq!(sys.dram().read_word_direct(0x1000), 7);
//! ```

use skipit_boom::Op;
use std::fmt;

/// Base machine encoding of `CBO.CLEAN x0` (rs1 = x0). OR `rs1 << 15` in.
pub const CBO_CLEAN_BASE: u32 = 0x0010_200F;
/// Base machine encoding of `CBO.FLUSH x0`.
pub const CBO_FLUSH_BASE: u32 = 0x0020_200F;
/// Base machine encoding of `CBO.INVAL x0` (funct12 = 0).
pub const CBO_INVAL_BASE: u32 = 0x0000_200F;
/// Machine encoding of `FENCE RW, RW` (pred = 0b0011, succ = 0b0011).
pub const FENCE_RW_RW: u32 = 0x0330_000F;

/// Returns the machine encoding of `cbo.clean` with address register `rs1`.
///
/// # Panics
///
/// Panics if `rs1 >= 32`.
pub fn encode_cbo_clean(rs1: u32) -> u32 {
    assert!(rs1 < 32, "rs1 out of range");
    CBO_CLEAN_BASE | (rs1 << 15)
}

/// Returns the machine encoding of `cbo.flush` with address register `rs1`.
///
/// # Panics
///
/// Panics if `rs1 >= 32`.
pub fn encode_cbo_flush(rs1: u32) -> u32 {
    assert!(rs1 < 32, "rs1 out of range");
    CBO_FLUSH_BASE | (rs1 << 15)
}

/// Returns the machine encoding of `cbo.inval` with address register `rs1`.
///
/// # Panics
///
/// Panics if `rs1 >= 32`.
pub fn encode_cbo_inval(rs1: u32) -> u32 {
    assert!(rs1 < 32, "rs1 out of range");
    CBO_INVAL_BASE | (rs1 << 15)
}

/// Classifies a 32-bit instruction word as one of the cache-management
/// operations the paper adds (or the fence they extend).
pub fn decode_cmo(word: u32) -> Option<Cmo> {
    const RS1_MASK: u32 = 0x1F << 15;
    if word & !RS1_MASK == CBO_CLEAN_BASE {
        return Some(Cmo::Clean {
            rs1: (word >> 15) & 0x1F,
        });
    }
    if word & !RS1_MASK == CBO_FLUSH_BASE {
        return Some(Cmo::Flush {
            rs1: (word >> 15) & 0x1F,
        });
    }
    if word & !RS1_MASK == CBO_INVAL_BASE {
        return Some(Cmo::Inval {
            rs1: (word >> 15) & 0x1F,
        });
    }
    if word == FENCE_RW_RW {
        return Some(Cmo::Fence);
    }
    None
}

/// A decoded cache-management instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmo {
    /// `cbo.clean rs1`.
    Clean {
        /// Address register index.
        rs1: u32,
    },
    /// `cbo.flush rs1`.
    Flush {
        /// Address register index.
        rs1: u32,
    },
    /// `cbo.inval rs1`.
    Inval {
        /// Address register index.
        rs1: u32,
    },
    /// `fence rw, rw`.
    Fence,
}

/// An error produced while assembling program text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsmError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseAsmError {}

fn parse_imm(tok: &str, line: usize) -> Result<u64, ParseAsmError> {
    let tok = tok.trim().trim_end_matches(',');
    let parsed = if let Some(hex) = tok.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        tok.parse()
    };
    parsed.map_err(|_| ParseAsmError {
        line,
        message: format!("invalid immediate `{tok}`"),
    })
}

/// Assembles program text (see [module docs](self)) into an [`Op`] sequence
/// runnable through [`System::run`] with a [`Programs`] workload.
///
/// # Errors
///
/// Returns a [`ParseAsmError`] naming the first malformed line.
///
/// [`System::run`]: skipit_boom::System::run
/// [`Programs`]: skipit_boom::Programs
pub fn assemble(text: &str) -> Result<Vec<Op>, ParseAsmError> {
    let mut ops = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let mnemonic = parts.next().expect("nonempty line");
        let args: Vec<&str> = parts.collect();
        let argn = |n: usize| -> Result<u64, ParseAsmError> {
            args.get(n)
                .map(|t| parse_imm(t, line_no))
                .ok_or(ParseAsmError {
                    line: line_no,
                    message: format!("`{mnemonic}` missing operand {n}"),
                })?
        };
        let op = match mnemonic {
            "sd" => Op::Store {
                addr: argn(0)?,
                value: argn(1)?,
            },
            "ld" => Op::Load { addr: argn(0)? },
            "cbo.clean" => Op::Clean { addr: argn(0)? },
            "cbo.flush" => Op::Flush { addr: argn(0)? },
            "cbo.inval" => Op::Inval { addr: argn(0)? },
            "fence" => Op::Fence,
            "nop" => Op::Nop {
                cycles: if args.is_empty() { 1 } else { argn(0)? },
            },
            "amoadd.d" => Op::FetchAdd {
                addr: argn(0)?,
                operand: argn(1)?,
            },
            "amoswap.d" => Op::Swap {
                addr: argn(0)?,
                operand: argn(1)?,
            },
            "cas" => Op::Cas {
                addr: argn(0)?,
                expected: argn(1)?,
                new: argn(2)?,
            },
            other => {
                return Err(ParseAsmError {
                    line: line_no,
                    message: format!("unknown mnemonic `{other}`"),
                })
            }
        };
        ops.push(op);
    }
    Ok(ops)
}

/// Renders an [`Op`] sequence back to assembly text (inverse of
/// [`assemble`], modulo whitespace).
pub fn disassemble(ops: &[Op]) -> String {
    let mut out = String::new();
    for op in ops {
        let line = match *op {
            Op::Store { addr, value } => format!("sd 0x{addr:x}, {value}"),
            Op::Load { addr } => format!("ld 0x{addr:x}"),
            Op::Clean { addr } => format!("cbo.clean 0x{addr:x}"),
            Op::Flush { addr } => format!("cbo.flush 0x{addr:x}"),
            Op::Inval { addr } => format!("cbo.inval 0x{addr:x}"),
            Op::Fence => "fence".to_string(),
            Op::Nop { cycles } => format!("nop {cycles}"),
            Op::FetchAdd { addr, operand } => format!("amoadd.d 0x{addr:x}, {operand}"),
            Op::Swap { addr, operand } => format!("amoswap.d 0x{addr:x}, {operand}"),
            Op::Cas {
                addr,
                expected,
                new,
            } => format!("cas 0x{addr:x}, {expected}, {new}"),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbo_encodings_match_ratified_values() {
        // cbo.clean a0 (x10): imm=0x001, rs1=10, funct3=010, opcode=0001111.
        assert_eq!(encode_cbo_clean(10), 0x0015_200F); // imm=1|rs1=a0|funct3=010|op=MISC-MEM
        assert_eq!(encode_cbo_flush(0), 0x0020_200F);
        assert_eq!(decode_cmo(encode_cbo_clean(5)), Some(Cmo::Clean { rs1: 5 }));
        assert_eq!(
            decode_cmo(encode_cbo_flush(31)),
            Some(Cmo::Flush { rs1: 31 })
        );
        assert_eq!(decode_cmo(FENCE_RW_RW), Some(Cmo::Fence));
        assert_eq!(decode_cmo(0x0000_0013), None); // nop (addi) is not a CMO
    }

    #[test]
    #[should_panic(expected = "rs1 out of range")]
    fn encode_rejects_bad_register() {
        encode_cbo_clean(32);
    }

    #[test]
    fn assemble_roundtrip() {
        let text = "\
            # persist a value\n\
            sd 0x1000, 42\n\
            cbo.flush 0x1000\n\
            fence\n\
            ld 0x1000\n\
            amoadd.d 0x2000, 5\n\
            amoswap.d 0x2000, 7\n\
            cas 0x2000, 7, 9\n\
            nop 3\n\
            cbo.clean 0x1000\n";
        let ops = assemble(text).expect("valid program");
        assert_eq!(ops.len(), 9);
        assert_eq!(
            ops[0],
            Op::Store {
                addr: 0x1000,
                value: 42
            }
        );
        assert_eq!(ops[1], Op::Flush { addr: 0x1000 });
        assert_eq!(ops[2], Op::Fence);
        let text2 = disassemble(&ops);
        let ops2 = assemble(&text2).expect("disassembly reassembles");
        assert_eq!(ops, ops2);
    }

    #[test]
    fn assemble_reports_line_numbers() {
        let err = assemble("sd 0x1000, 1\nbogus 1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bogus"));
        let err = assemble("sd 0x1000\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = assemble("sd zzz, 3\n").unwrap_err();
        assert!(err.message.contains("invalid immediate"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let ops = assemble("\n# comment only\n   \nfence # trailing\n").unwrap();
        assert_eq!(ops, vec![Op::Fence]);
    }
}
