//! The paper's §7 figure grids described as [`skipit_sweep::Sweep`]s.
//!
//! Each builder returns the full parameter grid of one figure as a sweep of
//! independent points, so the figure benches (and `simspeed`'s sweep
//! wall-clock section) all execute through the same sharded
//! [`skipit_sweep::SweepRunner`] instead of hand-rolled nested loops. Every
//! point builds its own `System` inside its closure, which is what makes the
//! grids relocatable across worker threads.

use crate::micro::{fig9_sample, system};
use crate::{median, size_sweep, stddev};
use skipit_pds::{run_set_benchmark, DsKind, OptKind, PersistMode, WorkloadCfg};
use skipit_sweep::{Point, PointOutput, Sweep};

/// Base address of the FliT counter table used by Figs. 15–16.
pub const FLIT_TABLE: u64 = 0x0800_0000;

/// The Fig. 15 redundant-flush-elimination methods, in figure order.
pub fn fig15_opts() -> Vec<(&'static str, OptKind)> {
    vec![
        ("plain", OptKind::Plain),
        ("flit-adjacent", OptKind::FlitAdjacent),
        (
            "flit-hash",
            OptKind::FlitHash {
                base: FLIT_TABLE,
                slots: 4096,
            },
        ),
        ("link-and-persist", OptKind::LinkAndPersist),
        ("skip-it", OptKind::SkipIt),
    ]
}

/// Row label of one Fig. 15 grid point (also used to look results back up
/// when printing the figure's CSV in grid order).
pub fn fig15_label(ds: DsKind, update_pct: u32, method: &str) -> String {
    format!("{}/{update_pct}%/{method}", ds.name())
}

/// The full Fig. 15 grid (structure × update% × applicable method) as a
/// sweep. `quick` shrinks key ranges and budgets the same way the
/// standalone bench does under `SKIPIT_BENCH_QUICK=1`.
pub fn fig15_sweep(quick: bool) -> Sweep {
    let mut sweep = Sweep::new("fig15_update_sweep")
        .unit("ops_per_mcycle")
        .seed(11);
    for ds in DsKind::ALL {
        for update_pct in [0u32, 5, 20, 50] {
            for (name, opt) in fig15_opts() {
                if !opt.applicable_to(ds) {
                    continue;
                }
                let (key_range, prefill) = if quick {
                    match ds {
                        DsKind::List => (128, 64),
                        _ => (1024, 512),
                    }
                } else {
                    match ds {
                        DsKind::List => (1024, 512),
                        _ => (16384, 8192),
                    }
                };
                sweep.push(
                    Point::new(fig15_label(ds, update_pct, name), move |_ctx| {
                        let r = run_set_benchmark(&WorkloadCfg {
                            ds,
                            mode: PersistMode::NvTraverse,
                            opt,
                            threads: 2,
                            key_range,
                            prefill,
                            update_pct,
                            budget_cycles: if quick { 30_000 } else { 200_000 },
                            seed: 11,
                            hash_buckets: if quick { 256 } else { 1024 },
                            ..WorkloadCfg::default()
                        });
                        PointOutput::new()
                            .with_cycles(r.cycles)
                            .value("ops_per_mcycle", r.throughput())
                            .value("ops", r.ops as f64)
                    })
                    .param("structure", ds.name())
                    .param("update_pct", update_pct)
                    .param("method", name),
                );
            }
        }
    }
    sweep
}

/// A 16-point reduction of the Fig. 15 grid (List + Bst, plain vs skip-it)
/// sized for `simspeed`'s sweep wall-clock comparison: long enough per
/// point to measure, short enough to run twice (serial + parallel) in CI.
pub fn fig15_reduced_sweep() -> Sweep {
    let mut sweep = Sweep::new("fig15_sweep_16pt")
        .unit("ops_per_mcycle")
        .seed(11);
    for ds in [DsKind::List, DsKind::Bst] {
        for update_pct in [0u32, 5, 20, 50] {
            for (name, opt) in [("plain", OptKind::Plain), ("skip-it", OptKind::SkipIt)] {
                sweep.push(
                    Point::new(fig15_label(ds, update_pct, name), move |_ctx| {
                        let r = run_set_benchmark(&WorkloadCfg {
                            ds,
                            mode: PersistMode::NvTraverse,
                            opt,
                            threads: 2,
                            key_range: 1024,
                            prefill: 512,
                            update_pct,
                            budget_cycles: 60_000,
                            seed: 11,
                            hash_buckets: 256,
                            ..WorkloadCfg::default()
                        });
                        PointOutput::new()
                            .with_cycles(r.cycles)
                            .value("ops_per_mcycle", r.throughput())
                    })
                    .param("structure", ds.name())
                    .param("update_pct", update_pct)
                    .param("method", name),
                );
            }
        }
    }
    sweep
}

/// Row label of one Fig. 9 grid point.
pub fn fig9_label(threads: u64, size: u64) -> String {
    format!("{threads}t/{}", crate::fmt_size(size))
}

/// The Fig. 9 grid (thread count × writeback size, skipping combos with
/// fewer lines than threads) as a sweep. Each point builds its own system
/// and reports the median and population stddev over `reps` samples.
pub fn fig9_sweep(reps: u32) -> Sweep {
    let mut sweep = Sweep::new("fig09_cbo_scaling").unit("cycles").seed(9);
    for threads in [1u64, 2, 4, 8] {
        for size in size_sweep() {
            if size / 64 < threads {
                continue; // fewer lines than threads: skip like the paper
            }
            sweep.push(
                Point::new(fig9_label(threads, size), move |_ctx| {
                    let mut sys = system(threads as usize, false);
                    let mut samples: Vec<u64> = (0..reps)
                        .map(|_| fig9_sample(&mut sys, threads, size, false))
                        .collect();
                    let sd = stddev(&samples);
                    let med = median(&mut samples);
                    PointOutput::new()
                        .with_cycles(med)
                        .value("median_cycles", med as f64)
                        .value("stddev", sd)
                })
                .param("threads", threads)
                .param("size", crate::fmt_size(size)),
            );
        }
    }
    sweep
}

/// The Fig. 16 FliT-table-size sensitivity grid (BST workload) as a sweep.
pub fn fig16_sweep(quick: bool) -> Sweep {
    let slot_sweep: &[usize] = if quick {
        &[64, 4096, 262_144]
    } else {
        &[64, 256, 1024, 4096, 16_384, 65_536, 262_144, 1_048_576]
    };
    let mut sweep = Sweep::new("fig16_flit_size").unit("ops_per_mcycle").seed(5);
    for &slots in slot_sweep {
        sweep.push(
            Point::new(format!("{slots}"), move |_ctx| {
                let r = run_set_benchmark(&WorkloadCfg {
                    ds: DsKind::Bst,
                    mode: PersistMode::Automatic,
                    opt: OptKind::FlitHash {
                        base: FLIT_TABLE,
                        slots,
                    },
                    threads: 2,
                    // The paper's Fig. 16 uses a 10k-key BST: big enough that
                    // the counter table competes with the tree for the small
                    // caches.
                    key_range: if quick { 2048 } else { 20_000 },
                    prefill: if quick { 1024 } else { 10_000 },
                    update_pct: 20,
                    budget_cycles: if quick { 30_000 } else { 200_000 },
                    seed: 5,
                    hash_buckets: 256,
                    ..WorkloadCfg::default()
                });
                PointOutput::new()
                    .with_cycles(r.cycles)
                    .value("ops_per_mcycle", r.throughput())
            })
            .param("slots", slots)
            .param("table_bytes", slots * 8),
        );
    }
    sweep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig15_grid_covers_every_applicable_combo() {
        let sweep = fig15_sweep(true);
        let applicable: usize = DsKind::ALL
            .iter()
            .map(|&ds| {
                4 * fig15_opts()
                    .iter()
                    .filter(|(_, o)| o.applicable_to(ds))
                    .count()
            })
            .sum();
        assert_eq!(sweep.len(), applicable);
    }

    #[test]
    fn fig15_reduced_is_16_points() {
        assert_eq!(fig15_reduced_sweep().len(), 16);
    }

    #[test]
    fn fig9_grid_skips_thread_heavy_small_sizes() {
        let sweep = fig9_sweep(1);
        // 10 sizes at 1t, 9 at 2t, 8 at 4t, 7 at 8t.
        assert_eq!(sweep.len(), 10 + 9 + 8 + 7);
    }

    #[test]
    fn fig16_quick_grid() {
        assert_eq!(fig16_sweep(true).len(), 3);
    }
}
