//! The paper's §7 figure grids described as [`skipit_sweep::Sweep`]s.
//!
//! Each builder returns the full parameter grid of one figure as a sweep of
//! independent points, so the figure benches (and `simspeed`'s sweep
//! wall-clock section) all execute through the same sharded
//! [`skipit_sweep::SweepRunner`] instead of hand-rolled nested loops. Every
//! point builds its own `System` inside its closure, which is what makes the
//! grids relocatable across worker threads.
//!
//! The §7.4 set grids (Figs. 15–16) are **warm-started**: each distinct
//! fill phase ([`skipit_pds::warm_key`]) is registered once as a sweep
//! prefill that snapshots the filled platform
//! ([`skipit_pds::prefill_snapshot`]), and every grid point restores that
//! shared snapshot and runs only its measured phase
//! ([`skipit_pds::run_set_benchmark_warm`]). Fig. 15's four update ratios
//! of one structure × method cell share a single simulated fill, and the
//! results are bit-identical to the cold path (the pds crate's
//! `warm_benchmark_matches_cold_exactly` test and `simspeed`'s
//! `warm_sweep` section both enforce this).

use crate::micro::{fig9_sample, system};
use crate::{median, size_sweep, stddev};
use skipit_core::{PerturbConfig, SystemBuilder};
use skipit_pds::{
    prefill_snapshot, run_set_benchmark, run_set_benchmark_warm, warm_key, DsKind, OptKind,
    PersistMode, WarmSet, WorkloadCfg,
};
use skipit_replay::{MemTrace, TraceReplay};
use skipit_service::{Arrivals, KeyDist, ServiceCfg, ServiceWorkload, Stress};
use skipit_sweep::{Point, PointCtx, PointOutput, Sweep, WarmState};
use std::collections::BTreeSet;

/// Base address of the FliT counter table used by Figs. 15–16.
pub const FLIT_TABLE: u64 = 0x0800_0000;

/// The Fig. 15 redundant-flush-elimination methods, in figure order.
pub fn fig15_opts() -> Vec<(&'static str, OptKind)> {
    vec![
        ("plain", OptKind::Plain),
        ("flit-adjacent", OptKind::FlitAdjacent),
        (
            "flit-hash",
            OptKind::FlitHash {
                base: FLIT_TABLE,
                slots: 4096,
            },
        ),
        ("link-and-persist", OptKind::LinkAndPersist),
        ("skip-it", OptKind::SkipIt),
    ]
}

/// Row label of one Fig. 15 grid point (also used to look results back up
/// when printing the figure's CSV in grid order).
pub fn fig15_label(ds: DsKind, update_pct: u32, method: &str) -> String {
    format!("{}/{update_pct}%/{method}", ds.name())
}

/// Snapshots the fill phase of `cfg` as a [`WarmState`] (the closure a
/// sweep prefill runs once per distinct [`warm_key`]).
fn fill_state(cfg: WorkloadCfg) -> WarmState {
    let ws = prefill_snapshot(&cfg);
    let bytes = ws.encoded_bytes();
    WarmState::new(ws, bytes)
}

/// Registers the fill phase of `cfg` as a prefill of `sweep` unless an
/// identical fill (same [`warm_key`]) is already registered, and returns
/// the key to tag the point with via [`Point::warm`].
fn register_fill(sweep: Sweep, seen: &mut BTreeSet<String>, cfg: WorkloadCfg) -> (Sweep, String) {
    let key = warm_key(&cfg);
    if seen.insert(key.clone()) {
        (sweep.prefill(key.clone(), move || fill_state(cfg)), key)
    } else {
        (sweep, key)
    }
}

/// Restores the shared fill snapshot delivered to a warm point and runs
/// `cfg`'s measured phase on it.
fn warm_result(ctx: &PointCtx, cfg: &WorkloadCfg) -> skipit_pds::BenchResult {
    let warm = ctx
        .warm::<WarmSet>()
        .expect("a fill was registered for this point's warm key");
    run_set_benchmark_warm(cfg, warm)
}

/// The full Fig. 15 grid (structure × update% × applicable method) as a
/// sweep. `quick` shrinks key ranges and budgets the same way the
/// standalone bench does under `SKIPIT_BENCH_QUICK=1`. Warm-started: the
/// four update ratios of each structure × method cell share one simulated
/// fill.
pub fn fig15_sweep(quick: bool) -> Sweep {
    let mut sweep = Sweep::new("fig15_update_sweep")
        .unit("ops_per_mcycle")
        .seed(11);
    let mut fills = BTreeSet::new();
    for ds in DsKind::ALL {
        for update_pct in [0u32, 5, 20, 50] {
            for (name, opt) in fig15_opts() {
                if !opt.applicable_to(ds) {
                    continue;
                }
                let (key_range, prefill) = if quick {
                    match ds {
                        DsKind::List => (128, 64),
                        _ => (1024, 512),
                    }
                } else {
                    match ds {
                        DsKind::List => (1024, 512),
                        _ => (16384, 8192),
                    }
                };
                let cfg = WorkloadCfg {
                    ds,
                    mode: PersistMode::NvTraverse,
                    opt,
                    threads: 2,
                    key_range,
                    prefill,
                    update_pct,
                    budget_cycles: if quick { 30_000 } else { 200_000 },
                    seed: 11,
                    hash_buckets: if quick { 256 } else { 1024 },
                    ..WorkloadCfg::default()
                };
                let (warmed, key) = register_fill(sweep, &mut fills, cfg);
                sweep = warmed;
                sweep.push(
                    Point::new(fig15_label(ds, update_pct, name), move |ctx| {
                        let r = warm_result(ctx, &cfg);
                        PointOutput::new()
                            .with_cycles(r.cycles)
                            .value("ops_per_mcycle", r.throughput())
                            .value("ops", r.ops as f64)
                    })
                    .warm(key)
                    .param("structure", ds.name())
                    .param("update_pct", update_pct)
                    .param("method", name),
                );
            }
        }
    }
    sweep
}

/// A 16-point reduction of the Fig. 15 grid (List + Bst, plain vs skip-it)
/// sized for `simspeed`'s sweep wall-clock comparison: long enough per
/// point to measure, short enough to run twice (serial + parallel) in CI.
///
/// `warm` selects between the cold path (every point simulates its own
/// fill) and the warm path (the grid's four distinct fills are snapshotted
/// once and shared). Both produce bit-identical result tables —
/// `simspeed`'s `warm_sweep` section measures the wall-clock gap and
/// cross-checks the identity.
pub fn fig15_reduced_sweep(warm: bool) -> Sweep {
    let mut sweep = Sweep::new("fig15_sweep_16pt")
        .unit("ops_per_mcycle")
        .seed(11);
    let mut fills = BTreeSet::new();
    for ds in [DsKind::List, DsKind::Bst] {
        for update_pct in [0u32, 5, 20, 50] {
            for (name, opt) in [("plain", OptKind::Plain), ("skip-it", OptKind::SkipIt)] {
                let cfg = WorkloadCfg {
                    ds,
                    mode: PersistMode::NvTraverse,
                    opt,
                    threads: 2,
                    key_range: 1024,
                    prefill: 512,
                    update_pct,
                    budget_cycles: 60_000,
                    seed: 11,
                    hash_buckets: 256,
                    ..WorkloadCfg::default()
                };
                let point = Point::new(fig15_label(ds, update_pct, name), move |ctx| {
                    let r = if warm {
                        warm_result(ctx, &cfg)
                    } else {
                        run_set_benchmark(&cfg)
                    };
                    PointOutput::new()
                        .with_cycles(r.cycles)
                        .value("ops_per_mcycle", r.throughput())
                })
                .param("structure", ds.name())
                .param("update_pct", update_pct)
                .param("method", name);
                if warm {
                    let (warmed, key) = register_fill(sweep, &mut fills, cfg);
                    sweep = warmed;
                    sweep.push(point.warm(key));
                } else {
                    sweep.push(point);
                }
            }
        }
    }
    sweep
}

/// Row label of one Fig. 9 grid point.
pub fn fig9_label(threads: u64, size: u64) -> String {
    format!("{threads}t/{}", crate::fmt_size(size))
}

/// The Fig. 9 grid (thread count × writeback size, skipping combos with
/// fewer lines than threads) as a sweep. Each point builds its own system
/// and reports the median and population stddev over `reps` samples.
pub fn fig9_sweep(reps: u32) -> Sweep {
    let mut sweep = Sweep::new("fig09_cbo_scaling").unit("cycles").seed(9);
    for threads in [1u64, 2, 4, 8] {
        for size in size_sweep() {
            if size / 64 < threads {
                continue; // fewer lines than threads: skip like the paper
            }
            sweep.push(
                Point::new(fig9_label(threads, size), move |_ctx| {
                    let mut sys = system(threads as usize, false);
                    let mut samples: Vec<u64> = (0..reps)
                        .map(|_| fig9_sample(&mut sys, threads, size, false))
                        .collect();
                    let sd = stddev(&samples);
                    let med = median(&mut samples);
                    PointOutput::new()
                        .with_cycles(med)
                        .value("median_cycles", med as f64)
                        .value("stddev", sd)
                })
                .param("threads", threads)
                .param("size", crate::fmt_size(size)),
            );
        }
    }
    sweep
}

/// The Fig. 16 FliT-table-size sensitivity grid (BST workload) as a sweep.
///
/// Warm-started like Fig. 15. Every point here has a *distinct* fill (the
/// counter-table geometry is part of the fill identity), so warming buys
/// no sharing — it exercises the per-point snapshot path and keeps the
/// grid resumable through a `SweepRunner` checkpoint.
pub fn fig16_sweep(quick: bool) -> Sweep {
    let slot_sweep: &[usize] = if quick {
        &[64, 4096, 262_144]
    } else {
        &[64, 256, 1024, 4096, 16_384, 65_536, 262_144, 1_048_576]
    };
    let mut sweep = Sweep::new("fig16_flit_size").unit("ops_per_mcycle").seed(5);
    let mut fills = BTreeSet::new();
    for &slots in slot_sweep {
        let cfg = WorkloadCfg {
            ds: DsKind::Bst,
            mode: PersistMode::Automatic,
            opt: OptKind::FlitHash {
                base: FLIT_TABLE,
                slots,
            },
            threads: 2,
            // The paper's Fig. 16 uses a 10k-key BST: big enough that
            // the counter table competes with the tree for the small
            // caches.
            key_range: if quick { 2048 } else { 20_000 },
            prefill: if quick { 1024 } else { 10_000 },
            update_pct: 20,
            budget_cycles: if quick { 30_000 } else { 200_000 },
            seed: 5,
            hash_buckets: 256,
            ..WorkloadCfg::default()
        };
        let (warmed, key) = register_fill(sweep, &mut fills, cfg);
        sweep = warmed;
        sweep.push(
            Point::new(format!("{slots}"), move |ctx| {
                let r = warm_result(ctx, &cfg);
                PointOutput::new()
                    .with_cycles(r.cycles)
                    .value("ops_per_mcycle", r.throughput())
            })
            .warm(key)
            .param("slots", slots)
            .param("table_bytes", slots * 8),
        );
    }
    sweep
}

/// A trace-replay grid: one point per perturbation seed, every point
/// replaying the same captured [`MemTrace`] on a fresh platform.
///
/// Seed `0` replays unperturbed (the reference timing); every other seed
/// replays under [`PerturbConfig::exploring`] jitter, which answers "how
/// sensitive is this recorded workload's cycle count to arbitration
/// order?" without re-running the original (possibly thread-mode, possibly
/// expensive) workload. Like every other grid here the points are
/// independent and relocatable across [`skipit_sweep::SweepRunner`] worker
/// threads, so the table is bit-identical at any thread count.
pub fn replay_sweep(name: impl Into<String>, trace: MemTrace, seeds: &[u64]) -> Sweep {
    let mut sweep = Sweep::new(name).unit("cycles").seed(11);
    for &seed in seeds {
        let trace = trace.clone();
        sweep.push(
            Point::new(format!("seed{seed}"), move |_ctx| {
                let cores = trace.cores() as usize;
                let mut builder = SystemBuilder::new().cores(cores);
                if seed != 0 {
                    builder = builder.perturb(PerturbConfig::exploring(seed));
                }
                let mut sys = builder.build();
                let report = sys.run(TraceReplay::new(trace));
                PointOutput::from_system(&sys).with_cycles(report.cycles)
            })
            .param("seed", seed),
        );
    }
    sweep
}

/// SLO thresholds (cycles) every service grid point evaluates its goodput
/// curve at. The base service latency of the platform is ~265 cycles, so
/// the ladder spans "comfortable" to "only met when unloaded".
pub const SERVICE_SLOS: [u64; 4] = [400, 800, 1600, 6400];

/// The two service frontends compared by the grid: the plain software on
/// plain hardware, and the same software on Skip It hardware.
pub fn service_methods() -> [(&'static str, OptKind); 2] {
    [("baseline", OptKind::Plain), ("skip-it", OptKind::SkipIt)]
}

/// Row label of one service grid point.
pub fn service_label(traffic: &str, gap: u64, method: &str) -> String {
    format!("{traffic}/g{gap}/{method}")
}

/// One service grid configuration: `quick` shrinks the per-point request
/// count the same way the other grids shrink under `SKIPIT_BENCH_QUICK=1`.
fn service_cfg(quick: bool, skew: f64, gap: u64, opt: OptKind, stress: Stress) -> ServiceCfg {
    ServiceCfg {
        cores: 2,
        requests_per_core: if quick { 300 } else { 24_000 },
        key_range: if quick { 256 } else { 2048 },
        prefill: if quick { 128 } else { 1024 },
        dist: KeyDist::from_skew(skew),
        arrivals: Arrivals::Poisson { mean_gap: gap },
        stress,
        opt,
        seed: 23,
        hash_buckets: if quick { 64 } else { 512 },
        ..ServiceCfg::default()
    }
}

/// Lowers one service configuration to a sweep point reporting SLO
/// percentiles and the goodput curve.
fn service_point(label: String, cfg: ServiceCfg) -> Point {
    Point::new(label, move |_ctx| {
        let mut sys = cfg.builder().build();
        let r = sys.run(ServiceWorkload::new(cfg.clone())).output;
        let slo = r.slo(&SERVICE_SLOS);
        let mut out = PointOutput::new()
            .with_cycles(r.cycles)
            .value("requests", r.requests as f64)
            .value("fill_cycles", r.fill_cycles as f64)
            .value("kreq_per_mcycle", r.throughput())
            .value("mean", slo.mean)
            .value("p50", slo.p50 as f64)
            .value("p99", slo.p99 as f64)
            .value("p999", slo.p999 as f64)
            .value("digest_lo", (r.digest & 0xffff_ffff) as f64);
        for g in &slo.goodput {
            out = out
                .value(format!("met_{}", g.slo), g.met)
                .value(format!("goodput_{}", g.slo), g.goodput);
        }
        out
    })
}

/// The service-frontend grid: Zipf skew × open-loop arrival rate ×
/// {baseline, skip-it}, plus stampede and synchronized-expiration-storm
/// stress points at the middle rate. Full size executes ≥ 1 M simulated
/// requests across the grid; every point reports p50/p99/p999 and the
/// goodput-under-SLO curve at [`SERVICE_SLOS`].
///
/// The arrival-rate axis brackets the platform's saturation knee (mean
/// per-lane service time is ~300–400 cycles depending on skew): the
/// fastest rate drives the uniform-key points past the knee, so the grid
/// shows both the stable regime and open-loop queueing collapse.
pub fn service_sweep(quick: bool) -> Sweep {
    let mut sweep = Sweep::new("service_grid").unit("cycles").seed(23);
    for skew in [0.0, 0.99, 1.2] {
        for gap in [400u64, 560, 880] {
            for (method, opt) in service_methods() {
                let cfg = service_cfg(quick, skew, gap, opt, Stress::None);
                sweep.push(
                    service_point(service_label(&format!("s{skew}"), gap, method), cfg)
                        .param("skew", skew)
                        .param("mean_gap", gap)
                        .param("method", method)
                        .param("stress", "none"),
                );
            }
        }
    }
    let stresses = [
        (
            "stampede",
            Stress::Stampede {
                every: 40,
                herd: 12,
            },
        ),
        (
            "storm",
            Stress::ExpirationStorm {
                every_cycles: if quick { 2_000 } else { 20_000 },
                lines: if quick { 4 } else { 16 },
            },
        ),
    ];
    for (name, stress) in stresses {
        for (method, opt) in service_methods() {
            let cfg = service_cfg(quick, 0.99, 560, opt, stress);
            sweep.push(
                service_point(service_label(name, 560, method), cfg)
                    .param("skew", 0.99)
                    .param("mean_gap", 560)
                    .param("method", method)
                    .param("stress", name),
            );
        }
    }
    sweep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig15_grid_covers_every_applicable_combo() {
        let sweep = fig15_sweep(true);
        let applicable: usize = DsKind::ALL
            .iter()
            .map(|&ds| {
                4 * fig15_opts()
                    .iter()
                    .filter(|(_, o)| o.applicable_to(ds))
                    .count()
            })
            .sum();
        assert_eq!(sweep.len(), applicable);
        // One fill per structure × method cell: the four update ratios of a
        // cell share a single snapshotted prefill.
        assert_eq!(sweep.prefill_count(), applicable / 4);
    }

    #[test]
    fn fig15_reduced_is_16_points() {
        assert_eq!(fig15_reduced_sweep(false).len(), 16);
        let warm = fig15_reduced_sweep(true);
        assert_eq!(warm.len(), 16);
        assert_eq!(warm.prefill_count(), 4); // {list,bst} × {plain,skip-it}
        assert_eq!(fig15_reduced_sweep(false).prefill_count(), 0);
    }

    #[test]
    fn fig9_grid_skips_thread_heavy_small_sizes() {
        let sweep = fig9_sweep(1);
        // 10 sizes at 1t, 9 at 2t, 8 at 4t, 7 at 8t.
        assert_eq!(sweep.len(), 10 + 9 + 8 + 7);
    }

    #[test]
    fn fig16_quick_grid() {
        let sweep = fig16_sweep(true);
        assert_eq!(sweep.len(), 3);
        // Every FliT-table size is its own fill identity.
        assert_eq!(sweep.prefill_count(), 3);
    }

    #[test]
    fn service_grid_shape_and_request_floor() {
        let sweep = service_sweep(true);
        // 3 skews x 3 rates x 2 methods + 2 stresses x 2 methods.
        assert_eq!(sweep.len(), 3 * 3 * 2 + 2 * 2);
        // The full-size grid executes at least a million base requests.
        let full_points = 3 * 3 * 2 + 2 * 2;
        assert!(full_points as u64 * 2 * 24_000 >= 1_000_000);
    }

    #[test]
    fn service_grid_runs_and_reports_slo_values() {
        let mut sweep = Sweep::new("service_probe").unit("cycles").seed(23);
        let cfg = service_cfg(true, 0.99, 560, OptKind::Plain, Stress::None);
        let requests = (cfg.requests_per_core * cfg.cores) as f64;
        sweep.push(service_point("probe".into(), cfg));
        let report = skipit_sweep::SweepRunner::new().threads(1).run(sweep);
        assert!(report.all_ok());
        let row = report.get("probe").unwrap();
        assert_eq!(row.value("requests"), Some(requests));
        let (p50, p999) = (row.value("p50").unwrap(), row.value("p999").unwrap());
        assert!(p50 > 0.0 && p50 <= p999);
        for slo in SERVICE_SLOS {
            let met = row.value(&format!("met_{slo}")).unwrap();
            assert!((0.0..=1.0).contains(&met), "met_{slo} = {met}");
        }
    }

    #[test]
    fn replay_grid_is_one_point_per_seed_and_seed0_is_reference() {
        use skipit_core::{Op, System, SystemConfig};
        let mut sys = System::new(SystemConfig {
            cores: 2,
            ..SystemConfig::default()
        });
        sys.start_capture();
        let ref_cycles = sys
            .run(skipit_core::Programs(vec![
                vec![
                    Op::Store {
                        addr: 0x100,
                        value: 1,
                    },
                    Op::Flush { addr: 0x100 },
                    Op::Fence,
                ],
                vec![Op::Load { addr: 0x100 }],
            ]))
            .cycles;
        let trace = MemTrace::from_capture(2, 0, &sys.take_capture());

        let sweep = replay_sweep("replay_jitter", trace, &[0, 1, 2]);
        assert_eq!(sweep.len(), 3);
        let report = skipit_sweep::SweepRunner::new().threads(1).run(sweep);
        assert!(report.all_ok());
        // Seed 0 replays unperturbed: exactly the captured run's timing.
        assert_eq!(report.get("seed0").unwrap().output.cycles, ref_cycles);
    }
}
