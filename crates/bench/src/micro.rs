//! Microbenchmark building blocks shared by Figs. 9, 10, 12, 13.

use skipit_core::{Op, Programs, System, SystemBuilder};

/// Per-thread region base (each thread writes back a disjoint region — the
/// non-contended setup of §7.2).
pub fn region_base(thread: u64) -> u64 {
    0x100_0000 + thread * 0x10_0000
}

/// Line addresses of thread `t`'s share of a `total_bytes` region split
/// across `threads`.
pub fn region_lines(t: u64, threads: u64, total_bytes: u64) -> impl Iterator<Item = u64> {
    let per = (total_bytes / threads).max(64);
    (0..per / 64).map(move |i| region_base(t) + i * 64)
}

/// Builds a system with `threads` cores.
pub fn system(threads: usize, skip_it: bool) -> System {
    SystemBuilder::new().cores(threads).skip_it(skip_it).build()
}

/// Dirties every line of the split region (unmeasured warm-up phase).
pub fn dirty_region(sys: &mut System, threads: u64, total_bytes: u64) {
    let progs = (0..threads)
        .map(|t| {
            region_lines(t, threads, total_bytes)
                .map(|a| Op::Store { addr: a, value: a })
                .collect()
        })
        .collect();
    sys.run(Programs(progs));
}

/// Measured phase of Fig. 9: each thread writes back its region
/// sequentially and fences once at the end.
pub fn writeback_region(sys: &mut System, threads: u64, total_bytes: u64, clean: bool) -> u64 {
    let progs = (0..threads)
        .map(|t| {
            let mut p: Vec<Op> = region_lines(t, threads, total_bytes)
                .map(|a| {
                    if clean {
                        Op::Clean { addr: a }
                    } else {
                        Op::Flush { addr: a }
                    }
                })
                .collect();
            p.push(Op::Fence);
            p
        })
        .collect();
    sys.run(Programs(progs)).cycles
}

/// One Fig. 9 sample: dirty then measure the writeback+fence.
pub fn fig9_sample(sys: &mut System, threads: u64, total_bytes: u64, clean: bool) -> u64 {
    dirty_region(sys, threads, total_bytes);
    writeback_region(sys, threads, total_bytes, clean)
}

/// The serialized (per-op latency) form of the Fig. 9 experiment — the
/// §7.2 calibration methodology, as in the single-line flush-latency
/// check: per line, a store (a full miss round trip, since the line is
/// cold or evicted), then `CBO.CLEAN` + fence, so exactly one transaction
/// is in flight at a time and its full round-trip latency (miss fill, then
/// flush queue → FSHR → DRAM write → ack) is exposed instead of being
/// hidden by pipelining. Most of each round trip is quiescent wait — the
/// workload the event-driven engine is built for.
pub fn fig9_serialized_sample(sys: &mut System, threads: u64, total_bytes: u64) -> u64 {
    let progs = (0..threads)
        .map(|t| {
            region_lines(t, threads, total_bytes)
                .flat_map(|a| {
                    [
                        Op::Store { addr: a, value: a },
                        Op::Clean { addr: a },
                        Op::Fence,
                    ]
                })
                .collect()
        })
        .collect();
    sys.run(Programs(progs)).cycles
}

/// One Fig. 10 sample: ten rounds of (write region, writeback region),
/// then a fence and a re-read of every line.
///
/// The round structure is what separates the two writeback flavours
/// (Fig. 10's ≈2× gap): after a `CBO.CLEAN` the next round's writes still
/// hit; after a `CBO.FLUSH` every subsequent write *and* the final read
/// must refetch the invalidated line from memory.
pub fn fig10_sample(sys: &mut System, threads: u64, total_bytes: u64, clean: bool) -> u64 {
    let progs = (0..threads)
        .map(|t| {
            let mut p = Vec::new();
            for rep in 0..10u64 {
                for a in region_lines(t, threads, total_bytes) {
                    p.push(Op::Store {
                        addr: a,
                        value: a + rep,
                    });
                }
                for a in region_lines(t, threads, total_bytes) {
                    p.push(if clean {
                        Op::Clean { addr: a }
                    } else {
                        Op::Flush { addr: a }
                    });
                }
            }
            p.push(Op::Fence);
            for a in region_lines(t, threads, total_bytes) {
                p.push(Op::Load { addr: a });
            }
            p
        })
        .collect();
    sys.run(Programs(progs)).cycles
}

/// One Fig. 13 sample: per line, store + writeback + `redundant` redundant
/// writebacks issued back-to-back (asynchronously, as in the paper's
/// microbenchmark), with a fence after the first writeback (so the
/// redundancy is established) and one at the end of each line's burst.
///
/// The writeback flavour is CBO.CLEAN — the paper notes the Skip It
/// comparison "is identical for CBO.CLEAN" and only clean leaves the line
/// resident so redundancy is detectable at the L1 (see DESIGN.md §2).
pub fn fig13_sample(sys: &mut System, threads: u64, total_bytes: u64, redundant: usize) -> u64 {
    let progs = (0..threads)
        .map(|t| {
            let mut p = Vec::new();
            for a in region_lines(t, threads, total_bytes) {
                p.push(Op::Store { addr: a, value: a });
                p.push(Op::Clean { addr: a });
                // One fence so the first writeback completes (arming the
                // skip bit) before the redundant burst — see EXPERIMENTS.md
                // for the interpretation band this choice sits in.
                p.push(Op::Fence);
                for _ in 0..redundant {
                    p.push(Op::Clean { addr: a });
                    // Loop body between the microbenchmark's redundant
                    // writebacks (address generation, branch) — spaces the
                    // requests like the paper's instruction stream does.
                    p.push(Op::Nop { cycles: 16 });
                }
                p.push(Op::Fence);
            }
            p
        })
        .collect();
    sys.run(Programs(progs)).cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_across_threads() {
        let a: Vec<u64> = region_lines(0, 2, 4096).collect();
        let b: Vec<u64> = region_lines(1, 2, 4096).collect();
        assert_eq!(a.len(), 32);
        assert!(a.iter().all(|x| !b.contains(x)));
    }

    #[test]
    fn fig9_sample_runs() {
        let mut sys = system(1, false);
        let c = fig9_sample(&mut sys, 1, 64, false);
        assert!(c > 0);
    }

    #[test]
    fn fig13_skipit_beats_naive() {
        let mut naive = system(1, false);
        let mut skip = system(1, true);
        let c_naive = fig13_sample(&mut naive, 1, 1024, 10);
        let c_skip = fig13_sample(&mut skip, 1, 1024, 10);
        assert!(
            c_skip < c_naive,
            "Skip It ({c_skip}) must beat naive ({c_naive})"
        );
    }
}
