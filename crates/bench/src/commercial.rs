//! Analytic latency models of the commercial CPUs of Figs. 11 and 12.
//!
//! The paper measures AMD EPYC 7763, Intel Xeon Gold 6238T and AWS
//! Graviton3 silicon — hardware this reproduction cannot run. Per the
//! substitution policy in DESIGN.md, each instruction is replaced by an
//! analytic model that encodes the qualitative behaviour the paper reports
//! and attributes. Latencies are expressed in each machine's **own cycles**
//! (the paper's figures put a 30 MHz FPGA core on the same axis as 2–3 GHz
//! parts, which is only meaningful cycle-for-cycle):
//!
//! * **Intel `clflush`** is serializing ("takes an extremely long time for
//!   larger data due to its inherent use of barriers"): every line pays an
//!   ordered memory round trip, so latency diverges from everything else at
//!   ≥4 KiB (Fig. 11).
//! * **Intel `clflushopt` / `clwb`** pipeline: a fixed setup plus a small
//!   per-line cost ("often the best performing x86 implementation").
//! * **AMD `clflush` ≈ `clflushopt`** ("perform nearly identically"):
//!   modeled as the same pipelined cost, slightly above Intel's optimized
//!   flush.
//! * **Graviton3 `dccivac`/`dccvac`** grow *sub-linearly*, overtaking the
//!   SonicBOOM above 4 KiB (the mesh batches writebacks).
//! * With **8 threads** all models divide by an efficiency-discounted
//!   thread count, and Intel `clflush`'s divergence only shows above
//!   16 KiB (Fig. 12).

/// A modeled flush/clean instruction on a commercial CPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Machine {
    /// Intel Xeon Gold 6238T `clflush` (serializing).
    IntelClflush,
    /// Intel Xeon Gold 6238T `clflushopt`.
    IntelClflushOpt,
    /// Intel Xeon Gold 6238T `clwb` (clean).
    IntelClwb,
    /// AMD EPYC 7763 `clflush` / `clflushopt` (near-identical).
    AmdClflush,
    /// AWS Graviton3 `dccivac` (flush).
    GravitonDcCivac,
    /// AWS Graviton3 `dccvac` (clean).
    GravitonDcCvac,
}

impl Machine {
    /// All modeled machines in plot order.
    pub const ALL: [Machine; 6] = [
        Machine::IntelClflush,
        Machine::IntelClflushOpt,
        Machine::IntelClwb,
        Machine::AmdClflush,
        Machine::GravitonDcCivac,
        Machine::GravitonDcCvac,
    ];

    /// Display label.
    pub fn name(self) -> &'static str {
        match self {
            Machine::IntelClflush => "intel-clflush",
            Machine::IntelClflushOpt => "intel-clflushopt",
            Machine::IntelClwb => "intel-clwb",
            Machine::AmdClflush => "amd-clflush(opt)",
            Machine::GravitonDcCivac => "graviton-dccivac",
            Machine::GravitonDcCvac => "graviton-dccvac",
        }
    }

    /// Modeled latency in the machine's own cycles to write back `bytes`
    /// with one thread, barrier included.
    pub fn cycles_1t(self, bytes: u64) -> f64 {
        let lines = (bytes / 64).max(1) as f64;
        match self {
            // Serializing: every line pays an ordered memory round trip
            // (~250 cycles at server-class memory latency).
            Machine::IntelClflush => 120.0 + lines * 250.0,
            // Pipelined: setup + a handful of cycles per line + barrier.
            Machine::IntelClflushOpt => 170.0 + lines * 18.0,
            Machine::IntelClwb => 160.0 + lines * 17.0,
            Machine::AmdClflush => 190.0 + lines * 21.0,
            // Sub-linear growth: the per-line cost decays with burst size.
            Machine::GravitonDcCivac => 200.0 + 85.0 * lines.powf(0.55),
            Machine::GravitonDcCvac => 185.0 + 80.0 * lines.powf(0.55),
        }
    }

    /// Modeled latency in cycles with eight threads on disjoint regions.
    /// Thread scaling is imperfect (≈6.5× of ideal 8×); Intel's serializing
    /// `clflush` parallelizes across threads, which is why its divergence
    /// only appears above 16 KiB in Fig. 12.
    pub fn cycles_8t(self, bytes: u64) -> f64 {
        let per_thread = (bytes / 8).max(64);
        self.cycles_1t(per_thread) * 8.0 / 6.5 + 90.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_line_latencies_are_similar_across_machines() {
        // Fig. 11: "Writeback latencies for a single thread are similar
        // across architectures" at small sizes — within ~4× of each other.
        let cycles: Vec<f64> = Machine::ALL.iter().map(|m| m.cycles_1t(64)).collect();
        let max = cycles.iter().cloned().fold(0.0, f64::max);
        let min = cycles.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min < 4.0, "single-line spread too wide: {cycles:?}");
    }

    #[test]
    fn intel_clflush_diverges_at_4kib_one_thread() {
        let m = Machine::IntelClflush;
        let opt = Machine::IntelClflushOpt;
        assert!(m.cycles_1t(4096) > 5.0 * opt.cycles_1t(4096));
        assert!(m.cycles_1t(64) < 3.0 * opt.cycles_1t(64));
    }

    #[test]
    fn graviton_overtakes_above_4kib() {
        let g = Machine::GravitonDcCivac;
        let amd = Machine::AmdClflush;
        assert!(g.cycles_1t(64) > amd.cycles_1t(64));
        assert!(g.cycles_1t(32 * 1024) < amd.cycles_1t(32 * 1024));
    }

    #[test]
    fn eight_threads_shrinks_clflush_gap() {
        let gap_1t =
            Machine::IntelClflush.cycles_1t(8192) / Machine::IntelClflushOpt.cycles_1t(8192);
        let gap_8t =
            Machine::IntelClflush.cycles_8t(8192) / Machine::IntelClflushOpt.cycles_8t(8192);
        assert!(gap_8t < gap_1t, "Fig. 12: the clflush gap narrows at 8t");
    }

    #[test]
    fn clean_flavours_are_slightly_cheaper() {
        assert!(Machine::IntelClwb.cycles_1t(1024) < Machine::IntelClflushOpt.cycles_1t(1024));
        assert!(Machine::GravitonDcCvac.cycles_1t(1024) < Machine::GravitonDcCivac.cycles_1t(1024));
    }
}
