//! Shared harness utilities for the figure-regeneration benches.
//!
//! Each `benches/figNN_*.rs` target reproduces one figure of the paper's
//! evaluation (§7). Run them all with `cargo bench`, or one with
//! `cargo bench --bench fig09_cbo_scaling`. Set `SKIPIT_BENCH_QUICK=1` to
//! shrink repetition counts and budgets for smoke runs.
//!
//! The binaries print plot-ready series (one CSV-ish line per point) plus a
//! human-readable summary comparing the measured shape against what the
//! paper reports; EXPERIMENTS.md records the mapping.

pub mod commercial;
pub mod micro;
pub mod sweeps;

/// Whether quick mode is requested (`SKIPIT_BENCH_QUICK=1`).
pub fn quick() -> bool {
    std::env::var("SKIPIT_BENCH_QUICK").is_ok_and(|v| v != "0")
}

/// Writeback sizes swept by Figs. 9–13: 64 B … 32 KiB, powers of two.
pub fn size_sweep() -> Vec<u64> {
    (0..=9).map(|i| 64u64 << i).collect()
}

/// Median of a sample set.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn median(samples: &mut [u64]) -> u64 {
    assert!(!samples.is_empty(), "median of empty sample set");
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Population standard deviation.
pub fn stddev(samples: &[u64]) -> f64 {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<u64>() as f64 / n;
    (samples
        .iter()
        .map(|&s| (s as f64 - mean).powi(2))
        .sum::<f64>()
        / n)
        .sqrt()
}

/// Formats a byte count the way the paper's x-axes do.
pub fn fmt_size(bytes: u64) -> String {
    if bytes >= 1024 {
        format!("{}KiB", bytes / 1024)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_64b_to_32kib() {
        let s = size_sweep();
        assert_eq!(s.first(), Some(&64));
        assert_eq!(s.last(), Some(&(32 * 1024)));
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn median_and_stddev() {
        let mut v = [5, 1, 9, 3, 7];
        assert_eq!(median(&mut v), 5);
        assert!(stddev(&[2, 2, 2]).abs() < 1e-9);
        assert!(stddev(&[1, 3]) > 0.9);
    }

    #[test]
    fn size_formatting() {
        assert_eq!(fmt_size(64), "64B");
        assert_eq!(fmt_size(32 * 1024), "32KiB");
    }
}
