//! Ablation (beyond the paper's figures): how the flush-unit sizing the
//! paper fixes — 8 FSHRs, a 16-entry flush queue (§5.2) — shapes writeback
//! throughput, plus the marginal value of the Skip It bit at each size.
//!
//! Regenerates the design-choice analysis DESIGN.md §7 calls out.

use skipit_bench::micro::{dirty_region, fig13_sample, system, writeback_region};
use skipit_bench::{median, quick};
use skipit_core::{DramConfig, Op, Programs, SystemBuilder};

fn flush_32k_cycles(fshrs: usize, queue_depth: usize) -> u64 {
    let mut sys = SystemBuilder::new()
        .cores(1)
        .fshrs(fshrs)
        .flush_queue_depth(queue_depth)
        .build();
    let reps = if quick() { 3 } else { 10 };
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            dirty_region(&mut sys, 1, 32 * 1024);
            writeback_region(&mut sys, 1, 32 * 1024, false)
        })
        .collect();
    median(&mut samples)
}

fn main() {
    println!("# Ablation: flush-unit sizing (32 KiB single-thread flush)");
    println!("fshrs,queue_depth,cycles");
    for fshrs in [1usize, 2, 4, 8, 16] {
        for depth in [4usize, 16, 64] {
            println!("{fshrs},{depth},{}", flush_32k_cycles(fshrs, depth));
        }
    }

    println!("#");
    println!("# Ablation: skip-bit value vs redundancy degree (single line)");
    println!("redundant_writebacks,naive_cycles,skipit_cycles");
    for redundant in [0usize, 1, 2, 5, 10, 20] {
        let mut cycles = [0u64; 2];
        for (i, skip_it) in [false, true].into_iter().enumerate() {
            let mut sys = SystemBuilder::new().cores(1).skip_it(skip_it).build();
            let mut prog = vec![
                Op::Store {
                    addr: 0x9000,
                    value: 1,
                },
                Op::Clean { addr: 0x9000 },
                Op::Fence,
            ];
            for _ in 0..redundant {
                prog.push(Op::Clean { addr: 0x9000 });
                prog.push(Op::Fence);
            }
            cycles[i] = sys.run(Programs(vec![prog])).cycles;
        }
        println!("{redundant},{},{}", cycles[0], cycles[1]);
    }

    // §7.4: "A deeper cache hierarchy (i.e. L3 or L4) could show greater
    // improvements due to the increased latencies." The equivalent lever in
    // this model is the persistence-medium write latency: NVMM writes are
    // several times slower than DRAM. Skip It's advantage on redundant
    // writebacks grows with it.
    println!("#");
    println!("# Ablation: Fig.13 microbenchmark (4KiB, 1 thread) vs persistence write latency");
    println!("write_latency_cycles,naive_cycles,skipit_cycles,speedup");
    for wl in [30u64, 60, 120, 300, 600] {
        let dram = DramConfig {
            write_latency: wl,
            ..DramConfig::default()
        };
        let mut naive = SystemBuilder::new().cores(1).dram(dram).build();
        let mut skip = SystemBuilder::new()
            .cores(1)
            .skip_it(true)
            .dram(dram)
            .build();
        let n = fig13_sample(&mut naive, 1, 4096, 10);
        let s = fig13_sample(&mut skip, 1, 4096, 10);
        println!("{wl},{n},{s},{:.2}", n as f64 / s.max(1) as f64);
    }

    // The direct "deeper hierarchy" proxy: the cost of the round trip a
    // redundant writeback takes before the LLC's dirty bit catches it.
    // Sweeping the LLC access latency emulates extra levels (L3/L4) between
    // the flush unit and the point of trivial skipping — Skip It's gain
    // grows with it, as §7.4 predicts.
    println!("#");
    println!("# Ablation: Fig.13 microbenchmark (4KiB, 1 thread) vs LLC trip cost");
    println!("llc_access_cycles,naive_cycles,skipit_cycles,speedup");
    for access in [6u64, 12, 24, 48, 96] {
        let l2 = skipit_core::L2Config {
            access_latency: access,
            ..skipit_core::L2Config::default()
        };
        let mut naive = SystemBuilder::new().cores(1).l2(l2).build();
        let mut skip = SystemBuilder::new().cores(1).skip_it(true).l2(l2).build();
        let n = fig13_sample(&mut naive, 1, 4096, 10);
        let s = fig13_sample(&mut skip, 1, 4096, 10);
        println!("{access},{n},{s},{:.2}", n as f64 / s.max(1) as f64);
    }

    // And the hardware-vs-software comparison point at the default
    // latency: a single system() call keeps this bench self-checking.
    let mut sys = system(1, true);
    let c = fig13_sample(&mut sys, 1, 1024, 10);
    assert!(c > 0);
}
