//! Fig. 10 — write → {clean,flush}×10 → fence → read.
//!
//! Paper's reported shape (§7.2): reading after CBO.CLEAN is ≈2× faster
//! than after CBO.FLUSH because the clean line still hits in the L1 while
//! the flushed line must be refetched from memory; the behaviour holds for
//! 1 and 8 threads.

use skipit_bench::micro::{fig10_sample, system};
use skipit_bench::{fmt_size, median, quick, size_sweep};

fn main() {
    let reps = if quick() { 3 } else { 15 };
    println!("# Fig. 10: write - CBO.X x10 - fence - read (total cycles, median of {reps})");
    println!("threads,size,clean_cycles,flush_cycles,flush_over_clean");
    let mut ratios = Vec::new();
    for threads in [1u64, 8] {
        for size in size_sweep() {
            if size / 64 < threads {
                continue;
            }
            let mut clean_s: Vec<u64> = (0..reps)
                .map(|_| {
                    let mut sys = system(threads as usize, false);
                    fig10_sample(&mut sys, threads, size, true)
                })
                .collect();
            let mut flush_s: Vec<u64> = (0..reps)
                .map(|_| {
                    let mut sys = system(threads as usize, false);
                    fig10_sample(&mut sys, threads, size, false)
                })
                .collect();
            let c = median(&mut clean_s);
            let f = median(&mut flush_s);
            let ratio = f as f64 / c.max(1) as f64;
            ratios.push(ratio);
            println!("{threads},{},{c},{f},{ratio:.2}", fmt_size(size));
        }
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("#");
    println!("# paper: flush sequences ≈2x slower than clean (re-read refetches)");
    println!("# measured mean flush/clean ratio: {avg:.2}x");
}
