//! Criterion microbenches: host-time cost of the simulator's hot paths.
//!
//! These are engineering benchmarks (how fast the *simulator* runs), not
//! paper figures — the figure harnesses live in the sibling `figNN_*`
//! bench targets and report simulated cycles.

use criterion::{criterion_group, criterion_main, Criterion};
use skipit_core::{Op, Programs, SystemBuilder};

fn bench_tick_throughput(c: &mut Criterion) {
    c.bench_function("idle_system_tick", |b| {
        let mut sys = SystemBuilder::new().cores(2).build();
        b.iter(|| sys.tick());
    });
}

fn bench_store_flush_fence(c: &mut Criterion) {
    c.bench_function("store_flush_fence_roundtrip", |b| {
        let mut sys = SystemBuilder::new().cores(1).build();
        let mut addr = 0x1_0000u64;
        b.iter(|| {
            addr += 64;
            sys.run(Programs(vec![vec![
                Op::Store { addr, value: 1 },
                Op::Flush { addr },
                Op::Fence,
            ]]))
            .cycles
        });
    });
}

fn bench_skipit_drop(c: &mut Criterion) {
    c.bench_function("skipit_redundant_clean_drop", |b| {
        let mut sys = SystemBuilder::new().cores(1).skip_it(true).build();
        sys.run(Programs(vec![vec![
            Op::Store {
                addr: 0x2_0000,
                value: 1,
            },
            Op::Clean { addr: 0x2_0000 },
            Op::Fence,
        ]]));
        b.iter(|| {
            sys.run(Programs(vec![vec![
                Op::Clean { addr: 0x2_0000 },
                Op::Fence,
            ]]))
            .cycles
        });
    });
}

fn bench_cross_core_pingpong(c: &mut Criterion) {
    c.bench_function("cross_core_store_pingpong", |b| {
        let mut sys = SystemBuilder::new().cores(2).build();
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            sys.run(Programs(vec![
                vec![Op::Store {
                    addr: 0x3_0000,
                    value: v,
                }],
                vec![],
            ]));
            sys.run(Programs(vec![
                vec![],
                vec![Op::Store {
                    addr: 0x3_0000,
                    value: v,
                }],
            ]));
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_tick_throughput, bench_store_flush_fence, bench_skipit_drop, bench_cross_core_pingpong
}
criterion_main!(benches);
