//! Fig. 16 — sensitivity of the FliT hash-table variant to its counter
//! table size (BST workload).
//!
//! Paper's reported shape: BST throughput varies markedly with the FliT
//! table size — small tables alias many addresses onto each counter
//! (spurious flushes + contention); very large tables pollute the small
//! 544 KiB cache hierarchy, the effect the paper blames for FliT's overall
//! weakness on SonicBOOM (§7.4).

use skipit_pds::{run_set_benchmark, DsKind, OptKind, PersistMode, WorkloadCfg};

const FLIT_TABLE: u64 = 0x0800_0000;

fn main() {
    let quick = skipit_bench::quick();
    println!("# Fig. 16: BST throughput vs FliT hash-table size (2 threads, 5% updates)");
    println!("slots,table_bytes,ops_per_mcycle");
    let slot_sweep: &[usize] = if quick {
        &[64, 4096, 262_144]
    } else {
        &[64, 256, 1024, 4096, 16_384, 65_536, 262_144, 1_048_576]
    };
    let mut best = (0usize, 0.0f64);
    let mut worst = (0usize, f64::MAX);
    for &slots in slot_sweep {
        let r = run_set_benchmark(&WorkloadCfg {
            ds: DsKind::Bst,
            mode: PersistMode::Automatic,
            opt: OptKind::FlitHash {
                base: FLIT_TABLE,
                slots,
            },
            threads: 2,
            // The paper's Fig. 16 uses a 10k-key BST: big enough that the
            // counter table competes with the tree for the small caches.
            key_range: if quick { 2048 } else { 20_000 },
            prefill: if quick { 1024 } else { 10_000 },
            update_pct: 20,
            budget_cycles: if quick { 30_000 } else { 200_000 },
            seed: 5,
            hash_buckets: 256,
            ..WorkloadCfg::default()
        });
        let t = r.throughput();
        if t > best.1 {
            best = (slots, t);
        }
        if t < worst.1 {
            worst = (slots, t);
        }
        println!("{slots},{},{t:.1}", slots * 8);
    }
    println!("#");
    println!(
        "# paper shape: throughput is sensitive to the table size; measured \
         best {} slots ({:.1}), worst {} slots ({:.1})",
        best.0, best.1, worst.0, worst.1
    );
}
