//! Fig. 16 — sensitivity of the FliT hash-table variant to its counter
//! table size (BST workload).
//!
//! The slot-count grid is described by `skipit_bench::sweeps::fig16_sweep`
//! and executed across worker threads by `skipit_sweep::SweepRunner`.
//!
//! Paper's reported shape: BST throughput varies markedly with the FliT
//! table size — small tables alias many addresses onto each counter
//! (spurious flushes + contention); very large tables pollute the small
//! 544 KiB cache hierarchy, the effect the paper blames for FliT's overall
//! weakness on SonicBOOM (§7.4).

use skipit_bench::sweeps::fig16_sweep;
use skipit_sweep::SweepRunner;

fn main() {
    let quick = skipit_bench::quick();
    let report = SweepRunner::new().run(fig16_sweep(quick));
    println!(
        "# Fig. 16: BST throughput vs FliT hash-table size (2 threads, 5% updates) \
         [{} sweep workers, {:.2}s wall]",
        report.threads(),
        report.wall().as_secs_f64()
    );
    println!("slots,table_bytes,ops_per_mcycle");
    let mut best = (0usize, 0.0f64);
    let mut worst = (0usize, f64::MAX);
    for row in report.rows() {
        let slots: usize = row.label.parse().expect("label is the slot count");
        let t = row.value("ops_per_mcycle").unwrap_or(f64::NAN);
        if t > best.1 {
            best = (slots, t);
        }
        if t < worst.1 {
            worst = (slots, t);
        }
        println!("{slots},{},{t:.1}", slots * 8);
    }
    println!("#");
    println!(
        "# paper shape: throughput is sensitive to the table size; measured \
         best {} slots ({:.1}), worst {} slots ({:.1})",
        best.0, best.1, worst.0, worst.1
    );
}
