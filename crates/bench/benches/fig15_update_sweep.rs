//! Fig. 15 — throughput vs update percentage (0/5/20/50 %) across the four
//! structures and the redundant-flush eliminations (NVTraverse discipline;
//! the paper does not pin the algorithm for this figure — EXPERIMENTS.md
//! documents the choice).
//!
//! The grid is described by `skipit_bench::sweeps::fig15_sweep` and executed
//! across worker threads by `skipit_sweep::SweepRunner` (thread count:
//! `SKIPIT_SWEEP_THREADS` or the host's available parallelism); results are
//! printed in grid order, which is identical at any thread count.
//!
//! Paper's reported shape: throughput falls as the update percentage grows
//! (more writebacks on the critical path); the ordering between methods is
//! preserved across the sweep.

use skipit_bench::sweeps::{fig15_label, fig15_opts, fig15_sweep};
use skipit_pds::DsKind;
use skipit_sweep::SweepRunner;

fn main() {
    let quick = skipit_bench::quick();
    let runner = SweepRunner::new();
    let report = runner.run(fig15_sweep(quick));
    println!(
        "# Fig. 15: throughput (ops per Mcycle) vs update percentage, 2 threads \
         [{} sweep workers, {:.2}s wall]",
        report.threads(),
        report.wall().as_secs_f64()
    );
    println!("structure,update_pct,method,ops_per_mcycle");
    for ds in DsKind::ALL {
        for update_pct in [0u32, 5, 20, 50] {
            for (name, opt) in fig15_opts() {
                if !opt.applicable_to(ds) {
                    println!("{},{update_pct},{name},n/a", ds.name());
                    continue;
                }
                let row = report
                    .get(&fig15_label(ds, update_pct, name))
                    .expect("grid point executed");
                match row.value("ops_per_mcycle") {
                    Some(t) if row.is_ok() => {
                        println!("{},{update_pct},{name},{t:.1}", ds.name());
                    }
                    _ => println!("{},{update_pct},{name},{}", ds.name(), row.status.as_str()),
                }
            }
        }
    }
    println!("#");
    println!("# paper shape: throughput decreases with update percentage;");
    println!("# method ordering is stable across the sweep");
}
