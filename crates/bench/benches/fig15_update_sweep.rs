//! Fig. 15 — throughput vs update percentage (0/5/20/50 %) across the four
//! structures and the redundant-flush eliminations (NVTraverse discipline;
//! the paper does not pin the algorithm for this figure — EXPERIMENTS.md
//! documents the choice).
//!
//! Paper's reported shape: throughput falls as the update percentage grows
//! (more writebacks on the critical path); the ordering between methods is
//! preserved across the sweep.

use skipit_pds::{run_set_benchmark, DsKind, OptKind, PersistMode, WorkloadCfg};

const FLIT_TABLE: u64 = 0x0800_0000;

fn main() {
    let quick = skipit_bench::quick();
    println!("# Fig. 15: throughput (ops per Mcycle) vs update percentage, 2 threads");
    println!("structure,update_pct,method,ops_per_mcycle");
    let opts: Vec<(&str, OptKind)> = vec![
        ("plain", OptKind::Plain),
        ("flit-adjacent", OptKind::FlitAdjacent),
        (
            "flit-hash",
            OptKind::FlitHash {
                base: FLIT_TABLE,
                slots: 4096,
            },
        ),
        ("link-and-persist", OptKind::LinkAndPersist),
        ("skip-it", OptKind::SkipIt),
    ];
    for ds in DsKind::ALL {
        for update_pct in [0u32, 5, 20, 50] {
            for (name, opt) in &opts {
                if !opt.applicable_to(ds) {
                    println!("{},{update_pct},{name},n/a", ds.name());
                    continue;
                }
                let (key_range, prefill) = if quick {
                    match ds {
                        DsKind::List => (128, 64),
                        _ => (1024, 512),
                    }
                } else {
                    match ds {
                        DsKind::List => (1024, 512),
                        _ => (16384, 8192),
                    }
                };
                let r = run_set_benchmark(&WorkloadCfg {
                    ds,
                    mode: PersistMode::NvTraverse,
                    opt: *opt,
                    threads: 2,
                    key_range,
                    prefill,
                    update_pct,
                    budget_cycles: if quick { 30_000 } else { 200_000 },
                    seed: 11,
                    hash_buckets: if quick { 256 } else { 1024 },
                    ..WorkloadCfg::default()
                });
                println!("{},{update_pct},{name},{:.1}", ds.name(), r.throughput());
            }
        }
    }
    println!("#");
    println!("# paper shape: throughput decreases with update percentage;");
    println!("# method ordering is stable across the sweep");
}
