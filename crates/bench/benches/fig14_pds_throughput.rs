//! Fig. 14 — throughput of the four persistent data structures under the
//! three persistence disciplines and five redundant-flush eliminations,
//! 5 % updates, two threads. The "plain non-persistent" row is the dotted
//! baseline of the paper's figure.
//!
//! Paper's reported shape (§7.4): Skip It almost always outperforms both
//! FliT variants (up to 2.5×) and performs comparably to Link-and-Persist
//! (which wins slightly on the automatic linked list / hash table, and is
//! not applicable to the BST).

use skipit_pds::{run_set_benchmark, DsKind, OptKind, PersistMode, WorkloadCfg};

const FLIT_TABLE: u64 = 0x0800_0000;

fn opts() -> Vec<(&'static str, OptKind)> {
    vec![
        ("plain", OptKind::Plain),
        ("flit-adjacent", OptKind::FlitAdjacent),
        (
            "flit-hash",
            OptKind::FlitHash {
                base: FLIT_TABLE,
                slots: 4096,
            },
        ),
        ("link-and-persist", OptKind::LinkAndPersist),
        ("skip-it", OptKind::SkipIt),
    ]
}

fn cfg_for(ds: DsKind) -> WorkloadCfg {
    let quick = skipit_bench::quick();
    // Working sets sized like the paper's (§7.4): large enough that the
    // structures thrash the 544 KiB cache hierarchy, which is what exposes
    // FliT's auxiliary-memory cost on this platform.
    let (key_range, prefill) = if quick {
        match ds {
            DsKind::List => (128, 64),
            _ => (2048, 1024),
        }
    } else {
        match ds {
            DsKind::List => (1024, 512),
            DsKind::Hash => (16384, 8192),
            DsKind::Bst => (16384, 8192),
            DsKind::SkipList => (16384, 8192),
        }
    };
    WorkloadCfg {
        ds,
        threads: 2,
        key_range,
        prefill,
        update_pct: 5,
        budget_cycles: if quick { 40_000 } else { 250_000 },
        seed: 7,
        hash_buckets: if quick { 256 } else { 1024 },
        ..WorkloadCfg::default()
    }
}

fn main() {
    println!("# Fig. 14: throughput (ops per Mcycle), 5% updates, 2 threads");
    println!("structure,algorithm,method,ops_per_mcycle,l1_skipped,l2_trivial_skips");
    for ds in DsKind::ALL {
        // Non-persistent baseline (the dotted line).
        let base = run_set_benchmark(&WorkloadCfg {
            mode: PersistMode::None,
            opt: OptKind::Plain,
            ..cfg_for(ds)
        });
        println!("{},none,baseline,{:.1},0,0", ds.name(), base.throughput());
        for (mode_name, mode) in [
            ("automatic", PersistMode::Automatic),
            ("nvtraverse", PersistMode::NvTraverse),
            ("manual", PersistMode::Manual),
        ] {
            for (opt_name, opt) in opts() {
                if !opt.applicable_to(ds) {
                    println!("{},{mode_name},{opt_name},n/a,0,0", ds.name());
                    continue;
                }
                let r = run_set_benchmark(&WorkloadCfg {
                    mode,
                    opt,
                    ..cfg_for(ds)
                });
                let skipped: u64 = r.stats.l1.iter().map(|s| s.writebacks_skipped).sum();
                println!(
                    "{},{mode_name},{opt_name},{:.1},{skipped},{}",
                    ds.name(),
                    r.throughput(),
                    r.stats.l2.root_release_dram_skipped
                );
            }
        }
    }
    println!("#");
    println!("# paper shape: skip-it >= flit variants (up to 2.5x); ");
    println!("# link-and-persist competitive, occasionally ahead on list/hash automatic");
}
