//! Fig. 12 — eight-thread writeback latency: simulated SonicBOOM vs the
//! analytic commercial-CPU models.
//!
//! Paper's reported shape: latencies are comparable across architectures;
//! Intel `clflush` only shows its poor behaviour above 16 KiB at this
//! thread count; the SonicBOOM is competitive across nearly all sizes.

use skipit_bench::commercial::Machine;
use skipit_bench::micro::{fig9_sample, system};
use skipit_bench::{fmt_size, median, quick, size_sweep};

fn main() {
    let reps = if quick() { 3 } else { 15 };
    println!("# Fig. 12: eight-thread writeback latency (cycles, per machine's own clock)");
    print!("size,boom-flush,boom-clean");
    for m in Machine::ALL {
        print!(",{}", m.name());
    }
    println!();
    for size in size_sweep() {
        if size / 64 < 8 {
            continue;
        }
        let mut flush_s: Vec<u64> = (0..reps)
            .map(|_| {
                let mut sys = system(8, false);
                fig9_sample(&mut sys, 8, size, false)
            })
            .collect();
        let mut clean_s: Vec<u64> = (0..reps)
            .map(|_| {
                let mut sys = system(8, false);
                fig9_sample(&mut sys, 8, size, true)
            })
            .collect();
        let boom_f = median(&mut flush_s) as f64;
        let boom_c = median(&mut clean_s) as f64;
        print!("{},{boom_f:.0},{boom_c:.0}", fmt_size(size));
        for m in Machine::ALL {
            print!(",{:.0}", m.cycles_8t(size));
        }
        println!();
    }
    println!("#");
    println!(
        "# paper shape check: intel clflush / clflushopt @8KiB, 8t: {:.1}x \
         (gap much smaller than the 1-thread case)",
        Machine::IntelClflush.cycles_8t(8192) / Machine::IntelClflushOpt.cycles_8t(8192)
    );
}
