//! Fig. 9 — CBO.X latency vs writeback size for 1/2/4/8 threads
//! (non-contended regions, sequential flushes, one trailing fence).
//!
//! The (threads × size) grid is described by
//! `skipit_bench::sweeps::fig9_sweep` and executed across worker threads by
//! `skipit_sweep::SweepRunner`; each grid point builds its own system and
//! reports the median/stddev over its reps, so results are independent of
//! which worker ran them.
//!
//! Paper's reported shape (§7.2): one line ≈ 100 cycles median (σ 13.2),
//! 32 KiB single-thread ≈ 7460 cycles (σ 286.1), 8 threads ≈ 7.2× faster.

use skipit_bench::sweeps::{fig9_label, fig9_sweep};
use skipit_bench::{fmt_size, quick, size_sweep};
use skipit_sweep::SweepRunner;

fn main() {
    let reps = if quick() { 5 } else { 50 };
    let report = SweepRunner::new().run(fig9_sweep(reps));
    println!(
        "# Fig. 9: CBO.X writeback latency (cycles), median of {reps} reps \
         [{} sweep workers, {:.2}s wall]",
        report.threads(),
        report.wall().as_secs_f64()
    );
    println!("threads,size,median_cycles,stddev");
    let mut one_line_median = 0u64;
    let mut full_1t = 0u64;
    let mut full_8t = 0u64;
    for threads in [1u64, 2, 4, 8] {
        for size in size_sweep() {
            if size / 64 < threads {
                continue; // fewer lines than threads: skip like the paper
            }
            let row = report
                .get(&fig9_label(threads, size))
                .expect("grid point executed");
            let med = row.value("median_cycles").unwrap_or(f64::NAN) as u64;
            let sd = row.value("stddev").unwrap_or(f64::NAN);
            println!("{threads},{},{med},{sd:.1}", fmt_size(size));
            if threads == 1 && size == 64 {
                one_line_median = med;
            }
            if size == 32 * 1024 {
                if threads == 1 {
                    full_1t = med;
                }
                if threads == 8 {
                    full_8t = med;
                }
            }
        }
    }
    println!("#");
    println!("# headline comparison (paper → measured):");
    println!("#   1 line, 1 thread median: 100 cy → {one_line_median} cy");
    println!("#   32 KiB, 1 thread:       7460 cy → {full_1t} cy");
    println!(
        "#   8-thread speedup @32KiB:  7.2x → {:.2}x",
        full_1t as f64 / full_8t.max(1) as f64
    );
}
