//! Fig. 11 — single-thread writeback latency: simulated SonicBOOM CBO.X vs
//! analytic commercial-CPU models (see `skipit_bench::commercial` for the
//! substitution rationale).
//!
//! Paper's reported shape: latencies are similar across architectures at
//! small sizes; Intel `clflush` diverges badly at ≥4 KiB; Graviton grows
//! sub-linearly and overtakes the SonicBOOM above 4 KiB.

use skipit_bench::commercial::Machine;
use skipit_bench::micro::{fig9_sample, system};
use skipit_bench::{fmt_size, median, quick, size_sweep};

fn main() {
    let reps = if quick() { 3 } else { 20 };
    println!("# Fig. 11: single-thread writeback latency (cycles, per machine's own clock)");
    print!("size,boom-flush,boom-clean");
    for m in Machine::ALL {
        print!(",{}", m.name());
    }
    println!();
    let mut boom_32k = 0.0;
    let mut graviton_32k = 0.0;
    for size in size_sweep() {
        let mut flush_s: Vec<u64> = (0..reps)
            .map(|_| {
                let mut sys = system(1, false);
                fig9_sample(&mut sys, 1, size, false)
            })
            .collect();
        let mut clean_s: Vec<u64> = (0..reps)
            .map(|_| {
                let mut sys = system(1, false);
                fig9_sample(&mut sys, 1, size, true)
            })
            .collect();
        let boom_f = median(&mut flush_s) as f64;
        let boom_c = median(&mut clean_s) as f64;
        print!("{},{boom_f:.0},{boom_c:.0}", fmt_size(size));
        for m in Machine::ALL {
            print!(",{:.0}", m.cycles_1t(size));
        }
        println!();
        if size == 32 * 1024 {
            boom_32k = boom_f;
            graviton_32k = Machine::GravitonDcCivac.cycles_1t(size);
        }
    }
    println!("#");
    println!("# paper shape checks:");
    println!(
        "#   intel clflush / clflushopt @4KiB: {:.1}x (paper: 'significantly worse')",
        Machine::IntelClflush.cycles_1t(4096) / Machine::IntelClflushOpt.cycles_1t(4096)
    );
    println!(
        "#   graviton vs BOOM @32KiB: {:.2}x (paper: Graviton faster above 4KiB)",
        graviton_32k / boom_32k
    );
}
