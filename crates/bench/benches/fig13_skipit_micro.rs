//! Fig. 13 — naïve vs Skip It on redundant writebacks.
//!
//! Per line: a store, a writeback, then 10 redundant writebacks of the same
//! line; 1 and 8 threads, sizes 64 B … 32 KiB.
//!
//! Paper's reported shape (§7.4 microbenchmark): Skip It is 15–30 % faster —
//! the redundant requests die at the L1 instead of taking the full
//! queue/FSHR/L2 round trip (whose DRAM write the L2 already skips via its
//! dirty bit in both configurations).
//!
//! The writeback flavour is CBO.CLEAN; the paper states the comparison "is
//! identical for CBO.CLEAN" and only the clean path leaves the line resident
//! so that its redundancy is detectable at the L1 (DESIGN.md §2 documents
//! this interpretation).

use skipit_bench::micro::{fig13_sample, system};
use skipit_bench::{fmt_size, median, quick, size_sweep};

fn main() {
    let reps = if quick() { 3 } else { 10 };
    println!("# Fig. 13: store + writeback + 10 redundant writebacks per line");
    println!("threads,size,naive_cycles,skipit_cycles,speedup,skipped_at_l1");
    let mut speedups = Vec::new();
    for threads in [1u64, 8] {
        for size in size_sweep() {
            if size / 64 < threads {
                continue;
            }
            let mut naive_s: Vec<u64> = (0..reps)
                .map(|_| {
                    let mut sys = system(threads as usize, false);
                    fig13_sample(&mut sys, threads, size, 10)
                })
                .collect();
            let (mut skip_s, skipped) = {
                let mut skipped = 0;
                let v: Vec<u64> = (0..reps)
                    .map(|_| {
                        let mut sys = system(threads as usize, true);
                        let c = fig13_sample(&mut sys, threads, size, 10);
                        skipped = sys
                            .stats()
                            .l1
                            .iter()
                            .map(|s| s.writebacks_skipped)
                            .sum::<u64>();
                        c
                    })
                    .collect();
                (v, skipped)
            };
            let n = median(&mut naive_s);
            let s = median(&mut skip_s);
            let speedup = n as f64 / s.max(1) as f64;
            speedups.push(speedup);
            println!(
                "{threads},{},{n},{s},{speedup:.2},{skipped}",
                fmt_size(size)
            );
        }
    }
    let min = speedups.iter().cloned().fold(f64::MAX, f64::min);
    let max = speedups.iter().cloned().fold(0.0f64, f64::max);
    println!("#");
    println!("# paper: Skip It 15-30% faster (speedup 1.15-1.30)");
    println!("# measured speedup range: {min:.2}x - {max:.2}x");
}
