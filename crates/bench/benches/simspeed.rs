//! Host-side simulation speed of the two engines (not a paper figure).
//!
//! Runs a Fig. 9-shaped writeback microbenchmark and a Fig. 14-shaped
//! persistent-set workload under naive cycle-by-cycle stepping and under
//! the event-driven fast-forward engine, reports kilo-simulated-cycles per
//! host second for each, asserts the engines agree cycle-for-cycle, and
//! writes the numbers to `BENCH_simspeed.json` at the repository root.
//!
//! Run with `cargo bench --bench simspeed` (release; debug numbers are
//! meaningless). `SKIPIT_BENCH_QUICK=1` shrinks the workloads.

use skipit_bench::micro::{fig9_sample, fig9_serialized_sample};
use skipit_bench::quick;
use skipit_core::SystemBuilder;
use skipit_pds::{run_set_benchmark, DsKind, OptKind, PersistMode, WorkloadCfg};
use std::time::Instant;

struct Row {
    name: &'static str,
    sim_cycles: u64,
    skipped_pct: f64,
    naive_kcps: f64,
    fast_kcps: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.fast_kcps / self.naive_kcps.max(1e-9)
    }
}

/// Fig. 9 shape: dirty a region, write it back sequentially, fence.
/// `serialized` switches to the §7.2 per-op-fenced latency form of the
/// experiment (one writeback in flight at a time). Returns per-sample
/// cycle counts plus timing for one engine.
fn fig09_shaped(name: &'static str, threads: usize, size: u64, reps: u32, serialized: bool) -> Row {
    let run = |fast: bool| {
        let mut sys = SystemBuilder::new()
            .cores(threads)
            .fast_forward(fast)
            .build();
        let wall = Instant::now();
        let samples: Vec<u64> = (0..reps)
            .map(|_| {
                if serialized {
                    fig9_serialized_sample(&mut sys, threads as u64, size)
                } else {
                    fig9_sample(&mut sys, threads as u64, size, false)
                }
            })
            .collect();
        let secs = wall.elapsed().as_secs_f64();
        (samples, sys.stats().cycles, sys.engine_stats(), secs)
    };
    let (naive_samples, naive_cycles, _, naive_secs) = run(false);
    let (fast_samples, fast_cycles, engine, fast_secs) = run(true);
    assert_eq!(
        naive_samples, fast_samples,
        "{name}: per-sample cycle counts diverge between engines"
    );
    assert_eq!(
        naive_cycles, fast_cycles,
        "{name}: total cycle counts diverge between engines"
    );
    Row {
        name,
        sim_cycles: fast_cycles,
        skipped_pct: engine.skipped_cycles as f64 * 100.0 / fast_cycles.max(1) as f64,
        naive_kcps: naive_cycles as f64 / naive_secs / 1e3,
        fast_kcps: fast_cycles as f64 / fast_secs / 1e3,
    }
}

/// Fig. 14 shape: two threads on a persistent set at 5 % updates.
fn fig14_shaped(name: &'static str, ds: DsKind, budget: u64) -> Row {
    let cfg = |fast: bool| WorkloadCfg {
        ds,
        mode: PersistMode::Automatic,
        opt: OptKind::SkipIt,
        threads: 2,
        key_range: 512,
        prefill: 256,
        update_pct: 5,
        budget_cycles: budget,
        seed: 7,
        fast_forward: fast,
        ..WorkloadCfg::default()
    };
    let wall = Instant::now();
    let naive = run_set_benchmark(&cfg(false));
    let naive_secs = wall.elapsed().as_secs_f64();
    let wall = Instant::now();
    let fast = run_set_benchmark(&cfg(true));
    let fast_secs = wall.elapsed().as_secs_f64();
    assert_eq!(
        naive.cycles, fast.cycles,
        "{name}: measured-phase cycles diverge between engines"
    );
    assert_eq!(
        naive.ops, fast.ops,
        "{name}: completed op counts diverge between engines"
    );
    assert_eq!(
        naive.stats, fast.stats,
        "{name}: system statistics diverge between engines"
    );
    Row {
        name,
        sim_cycles: fast.stats.cycles,
        skipped_pct: f64::NAN, // engine counters are not part of BenchResult
        naive_kcps: naive.stats.cycles as f64 / naive_secs / 1e3,
        fast_kcps: fast.stats.cycles as f64 / fast_secs / 1e3,
    }
}

/// Tracing overhead on the fast engine: the same Fig. 9 workload with the
/// event trace compiled in but off, with the ring buffers live, and with a
/// Chrome-trace export after every rep.
struct TraceRow {
    workload: &'static str,
    off_kcps: f64,
    ring_kcps: f64,
    export_kcps: f64,
}

impl TraceRow {
    fn overhead_pct(base: f64, with: f64) -> f64 {
        (base / with.max(1e-9) - 1.0) * 100.0
    }
}

fn tracing_overhead(workload: &'static str, threads: usize, size: u64, reps: u32) -> TraceRow {
    // mode 0: tracing off; 1: ring buffers on; 2: ring on + export each rep.
    let run = |mode: u8| {
        let mut sys = SystemBuilder::new().cores(threads).build();
        if mode > 0 {
            sys.enable_event_trace(1 << 16);
        }
        let mut exported = 0usize;
        let wall = Instant::now();
        for _ in 0..reps {
            fig9_sample(&mut sys, threads as u64, size, false);
            if mode == 2 {
                exported += sys.export_chrome_trace().len();
                sys.clear_event_trace();
            }
        }
        let secs = wall.elapsed().as_secs_f64();
        std::hint::black_box(exported);
        sys.stats().cycles as f64 / secs / 1e3
    };
    TraceRow {
        workload,
        off_kcps: run(0),
        ring_kcps: run(1),
        export_kcps: run(2),
    }
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "null".into()
    }
}

fn main() {
    let quick = quick();
    let reps = if quick { 3 } else { 10 };
    let rows = vec![
        fig09_shaped("fig09_1t_32k", 1, 32 * 1024, reps, false),
        fig09_shaped("fig09_8t_32k", 8, 32 * 1024, reps, false),
        fig09_shaped("fig09_1t_32k_serialized", 1, 32 * 1024, reps, true),
        fig14_shaped(
            "fig14_list_skipit",
            DsKind::List,
            if quick { 30_000 } else { 100_000 },
        ),
    ];

    println!("# simspeed: host kilo-simulated-cycles per second, naive vs fast-forward");
    println!("workload,sim_cycles,skipped_pct,naive_kcps,fast_kcps,speedup");
    let mut entries = Vec::new();
    for r in &rows {
        println!(
            "{},{},{:.1},{:.0},{:.0},{:.2}",
            r.name,
            r.sim_cycles,
            r.skipped_pct,
            r.naive_kcps,
            r.fast_kcps,
            r.speedup()
        );
        entries.push(format!(
            "    {{\"workload\": \"{}\", \"sim_cycles\": {}, \"skipped_pct\": {}, \
             \"naive_kcycles_per_sec\": {}, \"fast_kcycles_per_sec\": {}, \"speedup\": {}}}",
            r.name,
            r.sim_cycles,
            json_num(r.skipped_pct),
            json_num(r.naive_kcps),
            json_num(r.fast_kcps),
            json_num(r.speedup())
        ));
    }

    let tr = tracing_overhead("fig09_1t_32k", 1, 32 * 1024, reps);
    println!("# tracing overhead on {} (fast engine)", tr.workload);
    println!(
        "tracing_off_kcps,ring_on_kcps,ring_plus_export_kcps,ring_overhead_pct,export_overhead_pct"
    );
    println!(
        "{:.0},{:.0},{:.0},{:.1},{:.1}",
        tr.off_kcps,
        tr.ring_kcps,
        tr.export_kcps,
        TraceRow::overhead_pct(tr.off_kcps, tr.ring_kcps),
        TraceRow::overhead_pct(tr.off_kcps, tr.export_kcps)
    );
    let tracing_json = format!(
        "  \"tracing\": {{\"workload\": \"{}\", \"off_kcycles_per_sec\": {}, \
         \"ring_kcycles_per_sec\": {}, \"export_kcycles_per_sec\": {}, \
         \"ring_overhead_pct\": {}, \"export_overhead_pct\": {}}},",
        tr.workload,
        json_num(tr.off_kcps),
        json_num(tr.ring_kcps),
        json_num(tr.export_kcps),
        json_num(TraceRow::overhead_pct(tr.off_kcps, tr.ring_kcps)),
        json_num(TraceRow::overhead_pct(tr.off_kcps, tr.export_kcps))
    );

    let json = format!(
        "{{\n  \"bench\": \"simspeed\",\n  \"unit\": \"kilo-simulated-cycles per host second\",\n  \
         \"quick\": {},\n{}\n  \"workloads\": [\n{}\n  ]\n}}\n",
        quick,
        tracing_json,
        entries.join(",\n")
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_simspeed.json");
    std::fs::write(&path, json).expect("write BENCH_simspeed.json");
    println!("# wrote {}", path.display());
}
