//! Host-side simulation speed of the engines (not a paper figure).
//!
//! Runs a Fig. 9-shaped writeback microbenchmark and a Fig. 14-shaped
//! persistent-set workload under naive cycle-by-cycle stepping, the
//! global-gate fast-forward engine, and the component-wheel engine; reports
//! kilo-simulated-cycles per host second for each, asserts all engines agree
//! cycle-for-cycle, and writes the numbers to `BENCH_simspeed.json` at the
//! repository root. A separate section compares the serial component wheel
//! against the parallel wheel on a saturated fig09 shape (cycle-identity
//! asserted); its wall-clock speedup is reported as `null` on single-CPU
//! hosts, where the comparison measures only dispatch overhead. Every
//! section records `host_cpus` so committed numbers are interpretable.
//! A tracing section measures the overhead of event rings, Chrome-trace
//! export, and telemetry sampling; a phase section records the wheel
//! engines' wall-time breakdown and the serial fraction (Amdahl bound).
//! Phase data needs `--features profile`, whose per-cycle timers deflate
//! the throughput sections — so regeneration is two-step: run
//! `cargo bench --bench simspeed --features profile` to record real phase
//! data, then run it again without the feature; the plain run restores
//! honest throughput numbers and carries the committed phase section
//! forward instead of zeroing it.
//!
//! Every timing is the median of [`MEASURE_BLOCKS`] repeated blocks after
//! one discarded warm-up block, and the blocks of the variants being
//! compared are interleaved round-robin rather than run back to back.
//! Single-shot sequential timings were noisy enough to report *negative*
//! tracing overheads: first-touch page faults and cold allocator state
//! land on whichever variant runs first, and slow host drift (frequency
//! scaling, noisy neighbors) biases whichever variant runs last. The
//! warm-up kills the cold-start bias, interleaving makes drift hit every
//! variant's median equally, and the median rejects one-off spikes.
//!
//! Run with `cargo bench --bench simspeed` (release; debug numbers are
//! meaningless). Environment knobs:
//!
//! - `SKIPIT_BENCH_QUICK=1` shrinks the workloads.
//! - `SKIPIT_BENCH_OUT=<path>` overrides the JSON output path.
//! - `SKIPIT_BENCH_BASELINE=<path>` compares this run's speedups against a
//!   previously committed `BENCH_simspeed.json` and exits nonzero if any
//!   workload's speedup falls below 0.8× its baseline value (the CI
//!   regression gate; 20 % headroom absorbs host noise).

use skipit_bench::micro::{fig9_sample, fig9_serialized_sample};
use skipit_bench::quick;
use skipit_bench::sweeps::{fig15_reduced_sweep, service_sweep, SERVICE_SLOS};
use skipit_core::{EngineKind, SystemBuilder, TraceConfig};
use skipit_pds::{run_set_benchmark, DsKind, OptKind, PersistMode, WorkloadCfg};
use skipit_sweep::SweepRunner;
use std::time::Instant;

/// Timed blocks per engine per workload; the reported figure is the median.
const MEASURE_BLOCKS: usize = 3;

/// Median of per-block kilo-simulated-cycles-per-second figures.
fn median_kcps(mut blocks: Vec<f64>) -> f64 {
    assert!(!blocks.is_empty());
    blocks.sort_by(f64::total_cmp);
    blocks[blocks.len() / 2]
}

/// Host CPUs available to this process; every JSON section records it so
/// wall-clock figures committed from one host are interpretable on another.
fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

struct Row {
    name: &'static str,
    sim_cycles: u64,
    /// Component-weighted share of per-cycle component slots the wheel
    /// engine never stepped (includes idle components inside busy cycles).
    skipped_pct: f64,
    naive_kcps: f64,
    gate_kcps: f64,
    wheel_kcps: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.wheel_kcps / self.naive_kcps.max(1e-9)
    }

    fn gate_speedup(&self) -> f64 {
        self.gate_kcps / self.naive_kcps.max(1e-9)
    }
}

/// Fig. 9 shape: dirty a region, write it back sequentially, fence.
/// `serialized` switches to the §7.2 per-op-fenced latency form of the
/// experiment (one writeback in flight at a time).
fn fig09_shaped(name: &'static str, threads: usize, size: u64, reps: u32, serialized: bool) -> Row {
    // One block = one fresh system running `reps` samples.
    let exec = |kind: EngineKind, reps: u32| {
        let mut sys = SystemBuilder::new().cores(threads).engine(kind).build();
        let wall = Instant::now();
        let samples: Vec<u64> = (0..reps)
            .map(|_| {
                if serialized {
                    fig9_serialized_sample(&mut sys, threads as u64, size)
                } else {
                    fig9_sample(&mut sys, threads as u64, size, false)
                }
            })
            .collect();
        let secs = wall.elapsed().as_secs_f64();
        (samples, sys.stats().cycles, sys.engine_stats(), secs)
    };
    const ENGINES: [EngineKind; 3] = [
        EngineKind::Naive,
        EngineKind::GlobalGate,
        EngineKind::ComponentWheel,
    ];
    for kind in ENGINES {
        exec(kind, 1); // warm-up, discarded
    }
    let mut blocks: [Vec<f64>; 3] = Default::default();
    let mut runs = Vec::new();
    for block in 0..MEASURE_BLOCKS {
        // Round-robin over the engines so host drift cannot systematically
        // favor one of them.
        for (e, kind) in ENGINES.into_iter().enumerate() {
            let (samples, cycles, engine, secs) = exec(kind, reps);
            blocks[e].push(cycles as f64 / secs / 1e3);
            if block == 0 {
                runs.push((samples, cycles, engine));
            }
        }
    }
    let [naive_b, gate_b, wheel_b] = blocks;
    let (naive_kcps, gate_kcps, wheel_kcps) = (
        median_kcps(naive_b),
        median_kcps(gate_b),
        median_kcps(wheel_b),
    );
    let (wheel_samples, wheel_cycles, wheel_engine) = runs.pop().expect("wheel block");
    let (gate_samples, gate_cycles, _) = runs.pop().expect("gate block");
    let (naive_samples, naive_cycles, _) = runs.pop().expect("naive block");
    for (engine, samples, cycles) in [
        ("global-gate", &gate_samples, gate_cycles),
        ("component-wheel", &wheel_samples, wheel_cycles),
    ] {
        assert_eq!(
            &naive_samples, samples,
            "{name}: per-sample cycle counts diverge between naive and {engine}"
        );
        assert_eq!(
            naive_cycles, cycles,
            "{name}: total cycle counts diverge between naive and {engine}"
        );
    }
    Row {
        name,
        sim_cycles: wheel_cycles,
        skipped_pct: wheel_engine.component_skipped_pct().unwrap_or(f64::NAN),
        naive_kcps,
        gate_kcps,
        wheel_kcps,
    }
}

/// Fig. 14 shape: two threads on a persistent set at 5 % updates.
fn fig14_shaped(name: &'static str, ds: DsKind, budget: u64) -> Row {
    let cfg = |engine: EngineKind| WorkloadCfg {
        ds,
        mode: PersistMode::Automatic,
        opt: OptKind::SkipIt,
        threads: 2,
        key_range: 512,
        prefill: 256,
        update_pct: 5,
        budget_cycles: budget,
        seed: 7,
        engine,
        ..WorkloadCfg::default()
    };
    const ENGINES: [EngineKind; 3] = [
        EngineKind::Naive,
        EngineKind::GlobalGate,
        EngineKind::ComponentWheel,
    ];
    for kind in ENGINES {
        run_set_benchmark(&cfg(kind)); // warm-up, discarded
    }
    let mut blocks: [Vec<f64>; 3] = Default::default();
    let mut results = Vec::new();
    for block in 0..MEASURE_BLOCKS {
        // Round-robin across engines; see `fig09_shaped`.
        for (e, kind) in ENGINES.into_iter().enumerate() {
            let wall = Instant::now();
            let r = run_set_benchmark(&cfg(kind));
            let secs = wall.elapsed().as_secs_f64();
            blocks[e].push(r.stats.cycles as f64 / secs / 1e3);
            if block == 0 {
                results.push(r);
            }
        }
    }
    let [naive_b, gate_b, wheel_b] = blocks;
    let (naive_kcps, gate_kcps, wheel_kcps) = (
        median_kcps(naive_b),
        median_kcps(gate_b),
        median_kcps(wheel_b),
    );
    let wheel = results.pop().expect("wheel block");
    let gate = results.pop().expect("gate block");
    let naive = results.pop().expect("naive block");
    for (engine, r) in [("global-gate", &gate), ("component-wheel", &wheel)] {
        assert_eq!(
            naive.cycles, r.cycles,
            "{name}: measured-phase cycles diverge between naive and {engine}"
        );
        assert_eq!(
            naive.ops, r.ops,
            "{name}: completed op counts diverge between naive and {engine}"
        );
        assert_eq!(
            naive.stats, r.stats,
            "{name}: system statistics diverge between naive and {engine}"
        );
    }
    Row {
        name,
        sim_cycles: wheel.stats.cycles,
        skipped_pct: wheel.engine.component_skipped_pct().unwrap_or(f64::NAN),
        naive_kcps,
        gate_kcps,
        wheel_kcps,
    }
}

/// Serial component wheel vs the parallel wheel on a saturated fig09
/// shape — the busy-path wall the parallel engine exists to break.
struct ParallelRow {
    workload: &'static str,
    sim_cycles: u64,
    host_cpus: usize,
    threads: usize,
    wheel_kcps: f64,
    parallel_kcps: f64,
}

impl ParallelRow {
    /// Wall-clock speedup of the parallel wheel over the serial wheel.
    /// `None` on a single-CPU host: the pool degenerates to one worker and
    /// the ratio measures dispatch overhead, not the engine.
    fn wall_speedup(&self) -> Option<f64> {
        (self.host_cpus > 1).then(|| self.parallel_kcps / self.wheel_kcps.max(1e-9))
    }
}

/// Interleaved wheel-vs-parallel timing on an all-cores-busy fig09 shape
/// (`threads` simulated cores, every one due every cycle, so the slot pool
/// genuinely engages). Asserts per-sample and total cycle identity — the
/// parallel engine's speedup only counts because its results are
/// bit-identical.
fn parallel_shaped(name: &'static str, threads: usize, size: u64, reps: u32) -> ParallelRow {
    let exec = |kind: EngineKind, reps: u32| {
        let mut sys = SystemBuilder::new().cores(threads).engine(kind).build();
        let wall = Instant::now();
        let samples: Vec<u64> = (0..reps)
            .map(|_| fig9_sample(&mut sys, threads as u64, size, true))
            .collect();
        let secs = wall.elapsed().as_secs_f64();
        (samples, sys.stats().cycles, secs)
    };
    const ENGINES: [EngineKind; 2] = [EngineKind::ComponentWheel, EngineKind::ParallelWheel];
    for kind in ENGINES {
        exec(kind, 1); // warm-up, discarded
    }
    let mut blocks: [Vec<f64>; 2] = Default::default();
    let mut runs = Vec::new();
    for block in 0..MEASURE_BLOCKS {
        // Round-robin wheel/parallel; see `fig09_shaped`.
        for (e, kind) in ENGINES.into_iter().enumerate() {
            let (samples, cycles, secs) = exec(kind, reps);
            blocks[e].push(cycles as f64 / secs / 1e3);
            if block == 0 {
                runs.push((samples, cycles));
            }
        }
    }
    let [wheel_b, parallel_b] = blocks;
    let (parallel_samples, parallel_cycles) = runs.pop().expect("parallel block");
    let (wheel_samples, wheel_cycles) = runs.pop().expect("wheel block");
    assert_eq!(
        wheel_samples, parallel_samples,
        "{name}: per-sample cycle counts diverge between wheel and parallel"
    );
    assert_eq!(
        wheel_cycles, parallel_cycles,
        "{name}: total cycle counts diverge between wheel and parallel"
    );
    ParallelRow {
        workload: name,
        sim_cycles: wheel_cycles,
        host_cpus: host_cpus(),
        threads,
        wheel_kcps: median_kcps(wheel_b),
        parallel_kcps: median_kcps(parallel_b),
    }
}

/// Tracing overhead on the wheel engine: the same Fig. 9 workload with the
/// event trace compiled in but off, with the ring buffers live, with a
/// Chrome-trace export after every rep, and with telemetry sampling only.
struct TraceRow {
    workload: &'static str,
    off_kcps: f64,
    ring_kcps: f64,
    export_kcps: f64,
    telemetry_kcps: f64,
}

impl TraceRow {
    fn overhead_pct(base: f64, with: f64) -> f64 {
        (base / with.max(1e-9) - 1.0) * 100.0
    }
}

fn tracing_overhead(workload: &'static str, threads: usize, size: u64, reps: u32) -> TraceRow {
    // mode 0: tracing off; 1: ring buffers on; 2: ring on + export each
    // rep; 3: telemetry sampling only (1 Ki-cycle interval, no events).
    let exec = |mode: u8, reps: u32| {
        let mut sys = SystemBuilder::new().cores(threads).build();
        match mode {
            0 => {}
            3 => sys.set_trace(TraceConfig::new().telemetry(1024)),
            _ => sys.set_trace(TraceConfig::new().events(1 << 16)),
        }
        let mut exported = 0usize;
        let wall = Instant::now();
        for _ in 0..reps {
            fig9_sample(&mut sys, threads as u64, size, false);
            if mode == 2 {
                exported += sys.export_chrome_trace().len();
                sys.clear_event_trace();
            }
        }
        let secs = wall.elapsed().as_secs_f64();
        std::hint::black_box(exported);
        sys.stats().cycles as f64 / secs / 1e3
    };
    for mode in 0..4u8 {
        exec(mode, 1); // warm-up, discarded
    }
    let mut blocks: [Vec<f64>; 4] = Default::default();
    for _ in 0..MEASURE_BLOCKS {
        // Round-robin across modes; see `fig09_shaped`.
        for (m, b) in blocks.iter_mut().enumerate() {
            b.push(exec(m as u8, reps));
        }
    }
    let [off_b, ring_b, export_b, telemetry_b] = blocks;
    TraceRow {
        workload,
        off_kcps: median_kcps(off_b),
        ring_kcps: median_kcps(ring_b),
        export_kcps: median_kcps(export_b),
        telemetry_kcps: median_kcps(telemetry_b),
    }
}

/// Host wall-time phase breakdown of the wheel engines on a saturated
/// fig09 shape — where host time goes inside a busy cycle, and the Amdahl
/// bound it implies for parallel core stepping. All zeros unless built
/// with `--features profile`.
struct PhaseRow {
    threads: usize,
    wheel: skipit_core::PhaseProfile,
    parallel: skipit_core::PhaseProfile,
}

fn phase_profile(threads: usize, size: u64) -> PhaseRow {
    let run = |kind: EngineKind| {
        let mut sys = SystemBuilder::new().cores(threads).engine(kind).build();
        fig9_sample(&mut sys, threads as u64, size, true); // warm-up
        let before = sys.engine_stats().phase;
        fig9_sample(&mut sys, threads as u64, size, true);
        let after = sys.engine_stats().phase;
        skipit_core::PhaseProfile {
            serial_ns: after.serial_ns - before.serial_ns,
            core_ns: after.core_ns - before.core_ns,
            frontend_ns: after.frontend_ns - before.frontend_ns,
            barrier_ns: after.barrier_ns.saturating_sub(before.barrier_ns),
            worker_wait_ns: after.worker_wait_ns.saturating_sub(before.worker_wait_ns),
        }
    };
    PhaseRow {
        threads,
        wheel: run(EngineKind::ComponentWheel),
        parallel: run(EngineKind::ParallelWheel),
    }
}

/// One phase sub-object of the `"phase"` JSON section. Keys deliberately
/// avoid `"workload"`/`"speedup"`/`"parallel": {` so `baseline_speedups`
/// and `baseline_parallel_wall` keep scanning correctly.
fn phase_json(p: &skipit_core::PhaseProfile, threads: usize) -> String {
    format!(
        "{{\"serial_ns\": {}, \"core_ns\": {}, \"frontend_ns\": {}, \
         \"barrier_ns\": {}, \"worker_wait_ns\": {}, \"serial_fraction\": {}, \
         \"amdahl_bound_{threads}t\": {}}}",
        p.serial_ns,
        p.core_ns,
        p.frontend_ns,
        p.barrier_ns,
        p.worker_wait_ns,
        p.serial_fraction()
            .map_or("null".into(), |f| format!("{f:.4}")),
        p.predicted_speedup(threads)
            .map_or("null".into(), |s| format!("{s:.2}")),
    )
}

/// Wall-clock of the reduced Fig. 15 sweep executed serially vs across the
/// sharded worker pool, plus the determinism cross-check (the two result
/// tables must export bit-identical JSON).
struct SweepWall {
    workload: &'static str,
    points: usize,
    host_cpus: usize,
    threads: usize,
    serial_secs: f64,
    parallel_secs: f64,
    identical: bool,
}

impl SweepWall {
    fn wall_speedup(&self) -> f64 {
        self.serial_secs / self.parallel_secs.max(1e-9)
    }
}

/// Times the 16-point reduced Fig. 15 grid under `SweepRunner::serial()`
/// and under a `threads`-wide pool, interleaved round-robin with one
/// discarded warm-up pair (same protocol as the engine rows). The parallel
/// speedup is bounded by the host's core count — `host_cpus` is recorded
/// alongside so a 1-CPU CI container's ≈1× is interpretable.
fn sweep_wall(threads: usize) -> SweepWall {
    let serial = SweepRunner::serial();
    let pool = SweepRunner::new().threads(threads);
    let exec = |runner: &SweepRunner| {
        let report = runner.run(fig15_reduced_sweep(false));
        assert!(
            report.all_ok(),
            "sweep wall-clock workload has a failing point"
        );
        (report.wall().as_secs_f64(), report.to_json())
    };
    exec(&serial); // warm-up, discarded
    exec(&pool);
    let mut serial_b = Vec::new();
    let mut parallel_b = Vec::new();
    let mut jsons = (String::new(), String::new());
    for _ in 0..MEASURE_BLOCKS {
        // Round-robin serial/parallel; see `fig09_shaped`.
        let (s, sj) = exec(&serial);
        let (p, pj) = exec(&pool);
        serial_b.push(s);
        parallel_b.push(p);
        jsons = (sj, pj);
    }
    serial_b.sort_by(f64::total_cmp);
    parallel_b.sort_by(f64::total_cmp);
    SweepWall {
        workload: "fig15_sweep_16pt",
        points: fig15_reduced_sweep(false).len(),
        host_cpus: host_cpus(),
        threads,
        serial_secs: serial_b[serial_b.len() / 2],
        parallel_secs: parallel_b[parallel_b.len() / 2],
        identical: jsons.0 == jsons.1,
    }
}

/// Wall-clock of the reduced Fig. 15 sweep executed cold (every point
/// simulates its own fill) vs warm-started (the grid's four distinct fills
/// are snapshotted once and shared), plus the determinism cross-check: the
/// two result tables must export bit-identical JSON, row by row.
struct WarmWall {
    name: &'static str,
    points: usize,
    fills: usize,
    host_cpus: usize,
    cold_secs: f64,
    warm_secs: f64,
    /// Total encoded bytes of the shared fill snapshots.
    warm_bytes: u64,
    identical: bool,
}

impl WarmWall {
    /// Cold wall-clock over warm wall-clock (>1 means warming wins).
    fn wall_ratio(&self) -> f64 {
        self.cold_secs / self.warm_secs.max(1e-9)
    }
}

/// Times the 16-point reduced Fig. 15 grid cold vs warm-started, both under
/// `SweepRunner::serial()` so the comparison isolates fill sharing from
/// host parallelism. Same protocol as `sweep_wall`: one discarded warm-up
/// pair, then `MEASURE_BLOCKS` interleaved pairs, medians. The warm timing
/// includes the prefill snapshots themselves — the honest campaign cost.
fn warm_wall() -> WarmWall {
    let runner = SweepRunner::serial();
    let exec = |warm: bool| {
        let report = runner.run(fig15_reduced_sweep(warm));
        assert!(
            report.all_ok(),
            "warm wall-clock workload has a failing point"
        );
        let bytes: u64 = report.warm_sizes().iter().map(|(_, b)| b).sum();
        (report.wall().as_secs_f64(), report.to_json(), bytes)
    };
    exec(false); // warm-up, discarded
    exec(true);
    let mut cold_b = Vec::new();
    let mut warm_b = Vec::new();
    let mut jsons = (String::new(), String::new());
    let mut warm_bytes = 0;
    let mut fills = 0;
    for _ in 0..MEASURE_BLOCKS {
        let (c, cj, _) = exec(false);
        let (w, wj, bytes) = exec(true);
        cold_b.push(c);
        warm_b.push(w);
        jsons = (cj, wj);
        warm_bytes = bytes;
        fills = fig15_reduced_sweep(true).prefill_count();
    }
    cold_b.sort_by(f64::total_cmp);
    warm_b.sort_by(f64::total_cmp);
    WarmWall {
        name: "fig15_sweep_16pt",
        points: fig15_reduced_sweep(false).len(),
        fills,
        host_cpus: host_cpus(),
        cold_secs: cold_b[cold_b.len() / 2],
        warm_secs: warm_b[warm_b.len() / 2],
        warm_bytes,
        identical: jsons.0 == jsons.1,
    }
}

/// The service-frontend SLO grid: executed once serially and once across a
/// 2-thread worker pool (the determinism cross-check — the tables must be
/// bit-identical), with the serial table's SLO percentiles and goodput
/// curves recorded row by row. Unlike the engine rows these are committed
/// *results*, not host-speed figures, so single-shot wall times suffice.
struct ServiceWall {
    points: usize,
    total_requests: u64,
    host_cpus: usize,
    serial_secs: f64,
    threaded_secs: f64,
    identical: bool,
    /// Pre-rendered JSON rows of the serial table.
    grid_json: String,
}

fn service_grid(quick: bool) -> ServiceWall {
    let serial = SweepRunner::serial().run(service_sweep(quick));
    let threaded = SweepRunner::new().threads(2).run(service_sweep(quick));
    assert!(serial.all_ok(), "service grid has a failing point");
    let identical = serial.to_json() == threaded.to_json();
    let total_requests: u64 = serial
        .rows()
        .iter()
        .map(|r| r.value("requests").unwrap_or(0.0) as u64)
        .sum();
    let mut grid_json = String::new();
    for (i, row) in serial.rows().iter().enumerate() {
        let v = |name: &str| row.value(name).unwrap_or(f64::NAN);
        let param = |key: &str| {
            row.params
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_str())
                .unwrap_or("?")
        };
        let mut slos = String::new();
        for slo in SERVICE_SLOS {
            slos.push_str(&format!(
                ", \"met_{slo}\": {:.4}, \"goodput_{slo}\": {:.1}",
                v(&format!("met_{slo}")),
                v(&format!("goodput_{slo}"))
            ));
        }
        grid_json.push_str(&format!(
            "      {{\"point\": \"{}\", \"skew\": {}, \"mean_gap\": {}, \"method\": \"{}\", \
             \"stress\": \"{}\", \"requests\": {:.0}, \"cycles\": {}, \"mean\": {:.1}, \
             \"p50\": {:.0}, \"p99\": {:.0}, \"p999\": {:.0}{}}}{}\n",
            row.label,
            param("skew"),
            param("mean_gap"),
            param("method"),
            param("stress"),
            v("requests"),
            row.output.cycles,
            v("mean"),
            v("p50"),
            v("p99"),
            v("p999"),
            slos,
            if i + 1 == serial.rows().len() {
                ""
            } else {
                ","
            }
        ));
    }
    ServiceWall {
        points: serial.rows().len(),
        total_requests,
        host_cpus: host_cpus(),
        serial_secs: serial.wall().as_secs_f64(),
        threaded_secs: threaded.wall().as_secs_f64(),
        identical,
        grid_json,
    }
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "null".into()
    }
}

/// The `"phase"` line of the previously written output file (falling back
/// to `SKIPIT_BENCH_BASELINE`), if one with real (`profile_compiled`)
/// data exists — see the carry-forward note in `main`.
fn committed_phase_section() -> Option<String> {
    let text = std::fs::read_to_string(out_path()).ok().or_else(|| {
        let baseline = std::env::var("SKIPIT_BENCH_BASELINE").ok()?;
        std::fs::read_to_string(baseline).ok()
    })?;
    let line = text
        .lines()
        .find(|l| l.trim_start().starts_with("\"phase\": {"))?;
    line.contains("\"profile_compiled\": true")
        .then(|| line.to_string())
}

/// Output path of the JSON report (`SKIPIT_BENCH_OUT` or the committed
/// `BENCH_simspeed.json` at the repository root).
fn out_path() -> std::path::PathBuf {
    match std::env::var("SKIPIT_BENCH_OUT") {
        Ok(p) => std::path::PathBuf::from(p),
        Err(_) => std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_simspeed.json"),
    }
}

/// Extracts `(workload, speedup)` pairs from a previously written
/// `BENCH_simspeed.json` without a JSON parser: scans for
/// `"workload": "<name>"` and takes the next `"speedup": <number>`.
fn baseline_speedups(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(i) = rest.find("\"workload\": \"") {
        rest = &rest[i + "\"workload\": \"".len()..];
        let Some(end) = rest.find('"') else { break };
        let name = rest[..end].to_string();
        let Some(j) = rest.find("\"speedup\": ") else {
            break;
        };
        rest = &rest[j + "\"speedup\": ".len()..];
        let num: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.push((name, v));
        }
    }
    out
}

/// Extracts the committed parallel-engine wall speedup from a previous
/// `BENCH_simspeed.json`, if its host recorded one (`null` on 1-CPU hosts).
fn baseline_parallel_wall(text: &str) -> Option<f64> {
    let i = text.find("\"parallel\": {")?;
    let rest = &text[i..];
    let j = rest.find("\"wall_speedup\": ")?;
    let num: String = rest[j + "\"wall_speedup\": ".len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

/// Extracts the committed warm-start wall ratio from a previous
/// `BENCH_simspeed.json`, if it has a `warm_sweep` section.
fn baseline_warm_wall(text: &str) -> Option<f64> {
    let i = text.find("\"warm_sweep\": {")?;
    let rest = &text[i..];
    let j = rest.find("\"warm_wall_ratio\": ")?;
    let num: String = rest[j + "\"warm_wall_ratio\": ".len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

/// The CI regression gate: fails the run if any workload's speedup dropped
/// more than 20 % below the committed baseline. Wall-clock comparisons
/// (the parallel-engine speedup) are skipped on single-CPU hosts, where
/// the measured ratio reflects host topology rather than a regression.
/// The warm-start ratio is host-parallelism-independent (both sides run
/// serially), so it is gated on every host.
fn check_against_baseline(rows: &[Row], parallel: &ParallelRow, warm: &WarmWall, path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("SKIPIT_BENCH_BASELINE {path}: {e}"));
    let baseline = baseline_speedups(&text);
    let mut failed = false;
    match baseline_warm_wall(&text) {
        None => println!("# baseline: no warm-start wall ratio committed, skipping"),
        Some(base) => {
            let floor = base * 0.8;
            let got = warm.wall_ratio();
            if got < floor {
                eprintln!(
                    "FAIL {}: warm-start wall ratio {got:.2} is below 0.8x the \
                     baseline {base:.2} (floor {floor:.2})",
                    warm.name
                );
                failed = true;
            } else {
                println!(
                    "# baseline ok {}: warm-start wall ratio {got:.2} vs committed {base:.2}",
                    warm.name
                );
            }
        }
    }
    match (parallel.wall_speedup(), baseline_parallel_wall(&text)) {
        (_, None) => println!("# baseline: no parallel wall speedup committed, skipping"),
        (None, Some(_)) => println!(
            "# baseline: host has {} CPU(s), skipping wall-clock speedup comparison",
            parallel.host_cpus
        ),
        (Some(got), Some(base)) => {
            let floor = base * 0.8;
            if got < floor {
                eprintln!(
                    "FAIL {}: parallel wall speedup {got:.2} is below 0.8x the \
                     baseline {base:.2} (floor {floor:.2})",
                    parallel.workload
                );
                failed = true;
            } else {
                println!(
                    "# baseline ok {}: parallel wall speedup {got:.2} vs committed {base:.2}",
                    parallel.workload
                );
            }
        }
    }
    for r in rows {
        let Some((_, base)) = baseline.iter().find(|(n, _)| n == r.name) else {
            println!("# baseline: {} not in {path}, skipping", r.name);
            continue;
        };
        let floor = base * 0.8;
        let got = r.speedup();
        if got < floor {
            eprintln!(
                "FAIL {}: speedup {got:.2} is below 0.8x the baseline {base:.2} (floor {floor:.2})",
                r.name
            );
            failed = true;
        } else {
            println!(
                "# baseline ok {}: speedup {got:.2} vs committed {base:.2} (floor {floor:.2})",
                r.name
            );
        }
    }
    if failed {
        eprintln!("simspeed regression gate failed against {path}");
        std::process::exit(1);
    }
}

fn main() {
    let quick = quick();
    let reps = if quick { 3 } else { 10 };
    let rows = vec![
        fig09_shaped("fig09_1t_32k", 1, 32 * 1024, reps, false),
        fig09_shaped("fig09_8t_32k", 8, 32 * 1024, reps, false),
        fig09_shaped("fig09_1t_32k_serialized", 1, 32 * 1024, reps, true),
        fig14_shaped(
            "fig14_list_skipit",
            DsKind::List,
            if quick { 30_000 } else { 100_000 },
        ),
    ];

    println!("# simspeed: host kilo-simulated-cycles per second, per engine");
    println!(
        "workload,sim_cycles,skipped_pct,naive_kcps,gate_kcps,wheel_kcps,gate_speedup,speedup"
    );
    let mut entries = Vec::new();
    for r in &rows {
        println!(
            "{},{},{:.1},{:.0},{:.0},{:.0},{:.2},{:.2}",
            r.name,
            r.sim_cycles,
            r.skipped_pct,
            r.naive_kcps,
            r.gate_kcps,
            r.wheel_kcps,
            r.gate_speedup(),
            r.speedup()
        );
        entries.push(format!(
            "    {{\"workload\": \"{}\", \"sim_cycles\": {}, \"skipped_pct\": {}, \
             \"naive_kcycles_per_sec\": {}, \"gate_kcycles_per_sec\": {}, \
             \"fast_kcycles_per_sec\": {}, \"gate_speedup\": {}, \"speedup\": {}}}",
            r.name,
            r.sim_cycles,
            json_num(r.skipped_pct),
            json_num(r.naive_kcps),
            json_num(r.gate_kcps),
            json_num(r.wheel_kcps),
            json_num(r.gate_speedup()),
            json_num(r.speedup())
        ));
    }

    let pr = parallel_shaped("fig09_8t_parallel", 8, 32 * 1024, reps);
    println!(
        "# parallel wheel vs serial wheel on {} ({} simulated cores, host has {} CPUs)",
        pr.workload, pr.threads, pr.host_cpus
    );
    println!("sim_cycles,wheel_kcps,parallel_kcps,wall_speedup");
    println!(
        "{},{:.0},{:.0},{}",
        pr.sim_cycles,
        pr.wheel_kcps,
        pr.parallel_kcps,
        pr.wall_speedup()
            .map_or("skipped(1-cpu)".into(), |s| format!("{s:.2}"))
    );
    // Keys deliberately avoid "workload"/"speedup"; see the sweep section.
    let parallel_json = format!(
        "  \"parallel\": {{\"name\": \"{}\", \"sim_cycles\": {}, \"host_cpus\": {}, \
         \"sim_cores\": {}, \"wheel_kcycles_per_sec\": {}, \
         \"parallel_kcycles_per_sec\": {}, \"wall_speedup\": {}}},",
        pr.workload,
        pr.sim_cycles,
        pr.host_cpus,
        pr.threads,
        json_num(pr.wheel_kcps),
        json_num(pr.parallel_kcps),
        pr.wall_speedup().map_or("null".into(), json_num)
    );

    let tr = tracing_overhead("fig09_1t_32k", 1, 32 * 1024, reps);
    println!("# tracing overhead on {} (wheel engine)", tr.workload);
    println!(
        "tracing_off_kcps,ring_on_kcps,ring_plus_export_kcps,telemetry_kcps,\
         ring_overhead_pct,export_overhead_pct,telemetry_overhead_pct"
    );
    println!(
        "{:.0},{:.0},{:.0},{:.0},{:.1},{:.1},{:.1}",
        tr.off_kcps,
        tr.ring_kcps,
        tr.export_kcps,
        tr.telemetry_kcps,
        TraceRow::overhead_pct(tr.off_kcps, tr.ring_kcps),
        TraceRow::overhead_pct(tr.off_kcps, tr.export_kcps),
        TraceRow::overhead_pct(tr.off_kcps, tr.telemetry_kcps)
    );
    let tracing_json = format!(
        "  \"tracing\": {{\"workload\": \"{}\", \"host_cpus\": {host}, \"off_kcycles_per_sec\": {}, \
         \"ring_kcycles_per_sec\": {}, \"export_kcycles_per_sec\": {}, \
         \"telemetry_kcycles_per_sec\": {}, \"ring_overhead_pct\": {}, \
         \"export_overhead_pct\": {}, \"telemetry_overhead_pct\": {}}},",
        tr.workload,
        json_num(tr.off_kcps),
        json_num(tr.ring_kcps),
        json_num(tr.export_kcps),
        json_num(tr.telemetry_kcps),
        json_num(TraceRow::overhead_pct(tr.off_kcps, tr.ring_kcps)),
        json_num(TraceRow::overhead_pct(tr.off_kcps, tr.export_kcps)),
        json_num(TraceRow::overhead_pct(tr.off_kcps, tr.telemetry_kcps)),
        host = host_cpus()
    );

    let ph = phase_profile(8, 32 * 1024);
    println!(
        "# engine phase profile on fig09_8t_32k (profile feature {})",
        if skipit_core::PROFILE_COMPILED {
            "on"
        } else {
            "off — all zeros"
        }
    );
    println!("engine,serial_ns,core_ns,frontend_ns,barrier_ns,serial_fraction,amdahl_bound_8t");
    for (name, p) in [("wheel", &ph.wheel), ("parallel", &ph.parallel)] {
        println!(
            "{name},{},{},{},{},{},{}",
            p.serial_ns,
            p.core_ns,
            p.frontend_ns,
            p.barrier_ns,
            p.serial_fraction()
                .map_or("-".into(), |f| format!("{f:.4}")),
            p.predicted_speedup(ph.threads)
                .map_or("-".into(), |s| format!("{s:.2}")),
        );
    }
    let mut phase_json = format!(
        "  \"phase\": {{\"name\": \"fig09_8t_32k\", \"profile_compiled\": {}, \
         \"host_cpus\": {}, \"sim_cores\": {}, \"serial_wheel\": {}, \
         \"parallel_wheel\": {}}},",
        skipit_core::PROFILE_COMPILED,
        host_cpus(),
        ph.threads,
        phase_json(&ph.wheel, ph.threads),
        phase_json(&ph.parallel, ph.threads),
    );
    // A non-profile build measures all-zero phases; carry the committed
    // phase section forward instead of clobbering it, so the two-step
    // regeneration recipe works: `--features profile` records real phase
    // data (its per-cycle timers deflate the throughput sections), then a
    // plain run restores honest throughput and keeps the phase section.
    if !skipit_core::PROFILE_COMPILED {
        if let Some(committed) = committed_phase_section() {
            println!("# phase: profile feature off, keeping committed phase section");
            phase_json = committed;
        }
    }

    let sw = sweep_wall(8);
    assert!(
        sw.identical,
        "sweep result tables diverge between serial and parallel execution"
    );
    println!(
        "# sharded sweep wall-clock on {} ({} points, host has {} CPUs)",
        sw.workload, sw.points, sw.host_cpus
    );
    println!("sweep_threads,serial_secs,parallel_secs,wall_speedup,identical");
    println!(
        "{},{:.3},{:.3},{:.2},{}",
        sw.threads,
        sw.serial_secs,
        sw.parallel_secs,
        sw.wall_speedup(),
        sw.identical
    );
    // Keys deliberately avoid "workload"/"speedup" so `baseline_speedups`'s
    // naive scanner keeps pairing engine rows correctly.
    let sweep_json = format!(
        "  \"sweep\": {{\"name\": \"{}\", \"points\": {}, \"host_cpus\": {}, \
         \"threads\": {}, \"serial_secs\": {}, \"parallel_secs\": {}, \
         \"wall_speedup\": {}, \"identical\": {}}},",
        sw.workload,
        sw.points,
        sw.host_cpus,
        sw.threads,
        format_args!("{:.3}", sw.serial_secs),
        format_args!("{:.3}", sw.parallel_secs),
        json_num(sw.wall_speedup()),
        sw.identical
    );

    let ww = warm_wall();
    assert!(
        ww.identical,
        "sweep result tables diverge between cold and warm-started execution"
    );
    println!(
        "# warm-started sweep wall-clock on {} ({} points sharing {} fills)",
        ww.name, ww.points, ww.fills
    );
    println!("cold_secs,warm_secs,warm_wall_ratio,warm_bytes,identical");
    println!(
        "{:.3},{:.3},{:.2},{},{}",
        ww.cold_secs,
        ww.warm_secs,
        ww.wall_ratio(),
        ww.warm_bytes,
        ww.identical
    );
    // Keys deliberately avoid "workload"/"speedup" (see the sweep section);
    // "warm_wall_ratio" is the warm-start gain the regression gate tracks.
    let warm_json = format!(
        "  \"warm_sweep\": {{\"name\": \"{}\", \"points\": {}, \"fills\": {}, \
         \"host_cpus\": {}, \"cold_secs\": {}, \"warm_secs\": {}, \
         \"warm_wall_ratio\": {}, \"warm_bytes\": {}, \"identical\": {}}},",
        ww.name,
        ww.points,
        ww.fills,
        ww.host_cpus,
        format_args!("{:.3}", ww.cold_secs),
        format_args!("{:.3}", ww.warm_secs),
        json_num(ww.wall_ratio()),
        ww.warm_bytes,
        ww.identical
    );

    let sv = service_grid(quick);
    assert!(
        sv.identical,
        "service grid tables diverge between serial and threaded execution"
    );
    println!(
        "# service SLO grid: {} points, {} total requests (host has {} CPUs)",
        sv.points, sv.total_requests, sv.host_cpus
    );
    println!("serial_secs,threaded_secs,identical");
    println!(
        "{:.3},{:.3},{}",
        sv.serial_secs, sv.threaded_secs, sv.identical
    );
    // Keys deliberately avoid "workload"/"speedup" (see the sweep section);
    // grid rows use "point" for the same reason.
    let service_json = format!(
        "  \"service\": {{\"name\": \"service_grid\", \"points\": {}, \"total_requests\": {}, \
         \"host_cpus\": {}, \"serial_secs\": {}, \"threaded_secs\": {}, \"identical\": {}, \
         \"grid\": [\n{}    ]}},",
        sv.points,
        sv.total_requests,
        sv.host_cpus,
        format_args!("{:.3}", sv.serial_secs),
        format_args!("{:.3}", sv.threaded_secs),
        sv.identical,
        sv.grid_json
    );

    let json = format!(
        "{{\n  \"bench\": \"simspeed\",\n  \"unit\": \"kilo-simulated-cycles per host second\",\n  \
         \"quick\": {},\n  \"host_cpus\": {},\n{}\n{}\n{}\n{}\n{}\n{}\n  \"workloads\": [\n{}\n  ]\n}}\n",
        quick,
        host_cpus(),
        parallel_json,
        tracing_json,
        phase_json,
        sweep_json,
        warm_json,
        service_json,
        entries.join(",\n")
    );
    if let Ok(path) = std::env::var("SKIPIT_BENCH_BASELINE") {
        check_against_baseline(&rows, &pr, &ww, &path);
    }
    let path = out_path();
    std::fs::write(&path, json).expect("write benchmark JSON");
    println!("# wrote {}", path.display());
}
