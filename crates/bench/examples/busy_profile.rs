//! Quick busy-path profiling harness for the serial engines.
//!
//! Runs the fig09-shaped saturated-writeback workload (all cores busy every
//! cycle — the workload where cycle skipping is useless and raw per-cycle
//! step cost dominates) under one engine and prints kcycles/sec. Used for
//! before/after numbers when optimising the busy path; not part of the
//! committed benchmark protocol (see `benches/simspeed.rs` for that).
//!
//! Usage: `cargo run --release -p skipit-bench --example busy_profile [engine] [reps]`
//! where `engine` is `naive`, `gate`, `wheel` (default) or `parallel`.

use skipit_bench::micro;
use skipit_core::{EngineKind, SystemBuilder};
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let engine = match args.next().as_deref() {
        None | Some("wheel") => EngineKind::ComponentWheel,
        Some("naive") => EngineKind::Naive,
        Some("gate") => EngineKind::GlobalGate,
        Some("parallel") => EngineKind::ParallelWheel,
        Some(other) => panic!("unknown engine {other:?} (naive|gate|wheel|parallel)"),
    };
    let reps: u32 = args
        .next()
        .map(|s| s.parse().expect("reps must be an integer"))
        .unwrap_or(6);

    let threads = 8u64;
    let bytes = 4 * 1024 * 1024;
    // Warm-up rep, then `reps` measured reps; report the best (least-noise)
    // and median kcycles/sec.
    let mut sys = SystemBuilder::new()
        .cores(threads as usize)
        .skip_it(true)
        .engine(engine)
        .build();
    micro::fig9_sample(&mut sys, threads, bytes, true);
    let mut rates = Vec::new();
    let mut total_cycles = 0u64;
    for _ in 0..reps {
        let t0 = Instant::now();
        let cycles = micro::fig9_sample(&mut sys, threads, bytes, true);
        let dt = t0.elapsed().as_secs_f64();
        total_cycles += cycles;
        rates.push(cycles as f64 / dt / 1000.0);
    }
    rates.sort_by(|a, b| a.total_cmp(b));
    println!(
        "engine={engine:?} reps={reps} cycles/rep={} median_kcps={:.1} best_kcps={:.1}",
        total_cycles / reps as u64,
        rates[rates.len() / 2],
        rates[rates.len() - 1],
    );
}
