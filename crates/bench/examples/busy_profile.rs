//! Quick busy-path profiling harness for the engines.
//!
//! Runs the fig09-shaped saturated-writeback workload (all cores busy every
//! cycle — the workload where cycle skipping is useless and raw per-cycle
//! step cost dominates) under one engine and emits one machine-readable
//! JSON object on stdout. Used for before/after numbers when optimising
//! the busy path; not part of the committed benchmark protocol (see
//! `benches/simspeed.rs` for that).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p skipit-bench --example busy_profile -- \
//!     [--engine naive|gate|wheel|parallel] [--reps N] [--cores N] \
//!     [--kib N] [--min-wall-ms N]
//! ```
//!
//! `--min-wall-ms` keeps repeating (beyond `--reps`) until the measured
//! phase has accumulated at least that much wall time, so short runs on
//! fast hosts still produce stable rates. Compile with
//! `--features profile` to populate the `"phase"` object with the wheel
//! engines' wall-time breakdown (all zeros otherwise).

use skipit_bench::micro;
use skipit_core::{EngineKind, SystemBuilder, PROFILE_COMPILED};
use std::time::Instant;

struct Cli {
    engine: EngineKind,
    reps: u32,
    cores: u64,
    kib: u64,
    min_wall_ms: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: busy_profile [--engine naive|gate|wheel|parallel] [--reps N] \
         [--cores N] [--kib N] [--min-wall-ms N]"
    );
    std::process::exit(2);
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        engine: EngineKind::ComponentWheel,
        reps: 6,
        cores: 8,
        kib: 4096,
        min_wall_ms: 0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--engine" => {
                cli.engine = match value().as_str() {
                    "naive" => EngineKind::Naive,
                    "gate" => EngineKind::GlobalGate,
                    "wheel" => EngineKind::ComponentWheel,
                    "parallel" => EngineKind::ParallelWheel,
                    other => {
                        eprintln!("unknown engine {other:?}");
                        usage()
                    }
                }
            }
            "--reps" => cli.reps = value().parse().unwrap_or_else(|_| usage()),
            "--cores" => cli.cores = value().parse().unwrap_or_else(|_| usage()),
            "--kib" => cli.kib = value().parse().unwrap_or_else(|_| usage()),
            "--min-wall-ms" => cli.min_wall_ms = value().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if cli.reps == 0 || cli.cores == 0 || cli.kib == 0 {
        usage()
    }
    cli
}

fn main() {
    let cli = parse_cli();
    let bytes = cli.kib * 1024;

    let mut sys = SystemBuilder::new()
        .cores(cli.cores as usize)
        .skip_it(true)
        .engine(cli.engine)
        .build();
    // Warm-up rep, then the measured reps; report best (least-noise) and
    // median kcycles/sec over all of them.
    micro::fig9_sample(&mut sys, cli.cores, bytes, true);
    let phase_before = sys.engine_stats().phase;

    let mut rates = Vec::new();
    let mut total_cycles = 0u64;
    let mut wall = 0.0f64;
    let t_all = Instant::now();
    while rates.len() < cli.reps as usize
        || t_all.elapsed().as_millis() < u128::from(cli.min_wall_ms)
    {
        let t0 = Instant::now();
        let cycles = micro::fig9_sample(&mut sys, cli.cores, bytes, true);
        let dt = t0.elapsed().as_secs_f64();
        total_cycles += cycles;
        wall += dt;
        rates.push(cycles as f64 / dt / 1000.0);
    }
    rates.sort_by(|a, b| a.total_cmp(b));

    let after = sys.engine_stats();
    let p = after.phase;
    let serial_ns = p.serial_ns - phase_before.serial_ns;
    let core_ns = p.core_ns - phase_before.core_ns;
    let frontend_ns = p.frontend_ns - phase_before.frontend_ns;
    let barrier_ns = p.barrier_ns.saturating_sub(phase_before.barrier_ns);
    let measured = serial_ns + core_ns + frontend_ns;
    let serial_fraction = if measured > 0 {
        format!("{:.4}", (serial_ns + frontend_ns) as f64 / measured as f64)
    } else {
        "null".into()
    };

    println!("{{");
    println!("  \"engine\": \"{:?}\",", cli.engine);
    println!("  \"cores\": {},", cli.cores);
    println!("  \"kib\": {},", cli.kib);
    println!("  \"reps\": {},", rates.len());
    println!(
        "  \"cycles_per_rep\": {},",
        total_cycles / rates.len() as u64
    );
    println!("  \"wall_s\": {wall:.3},");
    println!("  \"median_kcps\": {:.1},", rates[rates.len() / 2]);
    println!("  \"best_kcps\": {:.1},", rates[rates.len() - 1]);
    println!(
        "  \"component_skipped_pct\": {},",
        after
            .component_skipped_pct()
            .map_or_else(|| "null".into(), |p| format!("{p:.1}"))
    );
    println!("  \"profile_compiled\": {PROFILE_COMPILED},");
    println!("  \"phase\": {{");
    println!("    \"serial_ns\": {serial_ns},");
    println!("    \"core_ns\": {core_ns},");
    println!("    \"frontend_ns\": {frontend_ns},");
    println!("    \"barrier_ns\": {barrier_ns},");
    println!("    \"serial_fraction\": {serial_fraction}");
    println!("  }}");
    println!("}}");
}
