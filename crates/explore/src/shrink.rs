//! Reproducer shrinking: reduce a failing `(scenario, seed)` to a minimal
//! op sequence that still hits the same violation.
//!
//! The reducer is a delta-debugging loop over the per-core op vectors:
//! repeatedly try deleting chunks (halving the chunk size down to single
//! ops) and keep any deletion under which the run still violates the same
//! rule. Every candidate runs on a fresh system with the *same* perturbation
//! seed, so the search is deterministic and the final reproducer replays
//! bit-identically: same rule, same cycle, every time.

use crate::explorer::{build_system, run_with_oracle, ExploreConfig};
use crate::oracle::Violation;
use crate::scenario::Scenario;
use skipit_core::Op;

/// A minimized failing run, replayable from this value alone.
#[derive(Clone, Debug)]
pub struct Reproducer {
    /// Scenario the failure came from (for bookkeeping; the programs below
    /// are what actually replays).
    pub scenario: Scenario,
    /// Perturbation seed the failure needs.
    pub seed: u64,
    /// Minimized per-core programs.
    pub programs: Vec<Vec<Op>>,
    /// The violation the minimized programs hit (rule and cycle are stable
    /// across replays).
    pub violation: Violation,
}

impl std::fmt::Display for Reproducer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "reproducer: scenario={} seed={} ops={:?} -> {}",
            self.scenario.name(),
            self.seed,
            self.programs.iter().map(Vec::len).collect::<Vec<_>>(),
            self.violation,
        )?;
        for (core, prog) in self.programs.iter().enumerate() {
            writeln!(f, "  core {core}: {prog:?}")?;
        }
        Ok(())
    }
}

/// Greedy per-core ddmin: keeps deleting chunks while `still_fails`
/// accepts the candidate; terminates when no single deletion (down to
/// chunk size 1) is accepted. Deterministic in its inputs.
pub fn shrink_programs<F>(mut programs: Vec<Vec<Op>>, mut still_fails: F) -> Vec<Vec<Op>>
where
    F: FnMut(&[Vec<Op>]) -> bool,
{
    loop {
        let mut changed = false;
        for core in 0..programs.len() {
            let mut chunk = (programs[core].len() / 2).max(1);
            loop {
                let mut i = 0;
                while i < programs[core].len() {
                    let mut candidate = programs.clone();
                    let end = (i + chunk).min(candidate[core].len());
                    candidate[core].drain(i..end);
                    if still_fails(&candidate) {
                        programs = candidate;
                        changed = true;
                        // Re-test from the same index: the next chunk slid
                        // into place.
                    } else {
                        i = end;
                    }
                }
                if chunk == 1 {
                    break;
                }
                chunk /= 2;
            }
        }
        if !changed {
            return programs;
        }
    }
}

/// Minimizes the failure at `(scenario, seed)`. Returns `None` if the point
/// does not fail in the first place.
pub fn minimize(scenario: Scenario, seed: u64, cfg: ExploreConfig) -> Option<Reproducer> {
    let programs = scenario.programs(seed, cfg.cores);
    let run = |progs: &[Vec<Op>]| -> Option<Violation> {
        let mut sys = build_system(cfg, seed);
        run_with_oracle(&mut sys, progs.to_vec()).1
    };
    let first = run(&programs)?;
    let rule = first.rule;
    let programs = shrink_programs(programs, |p| run(p).is_some_and(|v| v.rule == rule));
    let violation = run(&programs).expect("shrinking preserves failure");
    Some(Reproducer {
        scenario,
        seed,
        programs,
        violation,
    })
}

/// Replays a reproducer on a fresh system; returns the violation it hits
/// (which must equal `r.violation` — the determinism contract).
pub fn replay(r: &Reproducer, cfg: ExploreConfig) -> Option<Violation> {
    let mut sys = build_system(cfg, r.seed);
    run_with_oracle(&mut sys, r.programs.clone()).1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddmin_finds_a_one_op_core() {
        // Failure model: the run "fails" iff core 0 still contains the
        // poison op. Everything else must be deleted.
        let poison = Op::Store {
            addr: 0xdead,
            value: 1,
        };
        let mut programs = vec![Vec::new(), Vec::new()];
        for i in 0..37 {
            programs[0].push(Op::Load { addr: i * 8 });
            programs[1].push(Op::Load {
                addr: 0x800 + i * 8,
            });
        }
        programs[0].insert(21, poison);
        let shrunk = shrink_programs(programs, |p| p[0].contains(&poison));
        assert_eq!(shrunk[0], vec![poison]);
        assert!(shrunk[1].is_empty());
    }

    #[test]
    fn ddmin_handles_op_pairs() {
        // Failure needs *both* sentinel ops, in order.
        let a = Op::Store {
            addr: 0x10,
            value: 1,
        };
        let b = Op::Flush { addr: 0x10 };
        let mut program = vec![Op::Fence; 50];
        program.insert(10, a);
        program.insert(40, b);
        let shrunk = shrink_programs(vec![program], |p| {
            let ia = p[0].iter().position(|&o| o == a);
            let ib = p[0].iter().position(|&o| o == b);
            matches!((ia, ib), (Some(x), Some(y)) if x < y)
        });
        assert_eq!(shrunk, vec![vec![a, b]]);
    }
}
