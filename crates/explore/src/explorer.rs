//! One exploration = one `(scenario, seed)` point: build a perturbed
//! system, run the scenario's programs under the invariant oracle, drain,
//! and report.

use crate::oracle::{InvariantOracle, Violation};
use crate::scenario::Scenario;
use skipit_core::{Op, PerturbConfig, System, SystemBuilder};

/// How exploration systems are built. `Copy` so campaign points can carry
/// it across worker threads.
#[derive(Clone, Copy, Debug)]
pub struct ExploreConfig {
    /// Cores in the simulated system.
    pub cores: usize,
    /// Whether the §6 Skip It optimization is on (the skip-bit invariant is
    /// only interesting when it is).
    pub skip_it: bool,
    /// Perturbation amplitudes. The per-run seed replaces
    /// [`PerturbConfig::seed`]; everything else is taken as-is.
    pub perturb: PerturbConfig,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            cores: 2,
            skip_it: true,
            perturb: PerturbConfig::exploring(0),
        }
    }
}

/// The outcome of one exploration run.
#[derive(Clone, Debug)]
pub struct Exploration {
    /// Which workload family ran.
    pub scenario: Scenario,
    /// The seed that generated both the programs and the perturbation.
    pub seed: u64,
    /// Cycle count at completion (or at the violation).
    pub cycles: u64,
    /// First invariant violation, if the oracle rejected a state.
    pub violation: Option<Violation>,
}

/// Builds the system an exploration of `seed` runs on.
pub fn build_system(cfg: ExploreConfig, seed: u64) -> System {
    SystemBuilder::new()
        .cores(cfg.cores)
        .skip_it(cfg.skip_it)
        .perturb(cfg.perturb.with_seed(seed))
        .build()
}

/// Runs `programs` to completion (then quiesces) under `check`, observing
/// every executed cycle. Returns the end cycle and the first rejection.
pub fn run_with_check<F>(
    sys: &mut System,
    programs: Vec<Vec<Op>>,
    mut check: F,
) -> (u64, Option<Violation>)
where
    F: FnMut(&System) -> Result<(), Violation>,
{
    if let Err((cycle, v)) = sys.run_programs_observed(programs, &mut check) {
        return (cycle, Some(v));
    }
    if let Err((cycle, v)) = sys.quiesce_observed(&mut check) {
        return (cycle, Some(v));
    }
    (sys.now(), None)
}

/// Runs `programs` under a fresh [`InvariantOracle`].
pub fn run_with_oracle(sys: &mut System, programs: Vec<Vec<Op>>) -> (u64, Option<Violation>) {
    let mut oracle = InvariantOracle::new();
    run_with_check(sys, programs, move |s| oracle.observe(s))
}

/// Explores one `(scenario, seed)` point: deterministic, bit-reproducible
/// from its arguments alone.
pub fn explore_one(scenario: Scenario, seed: u64, cfg: ExploreConfig) -> Exploration {
    let mut sys = build_system(cfg, seed);
    let programs = scenario.programs(seed, cfg.cores);
    let (cycles, violation) = run_with_oracle(&mut sys, programs);
    Exploration {
        scenario,
        seed,
        cycles,
        violation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exploration_is_bit_reproducible() {
        let cfg = ExploreConfig::default();
        let a = explore_one(Scenario::FlushStorm, 42, cfg);
        let b = explore_one(Scenario::FlushStorm, 42, cfg);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.violation, b.violation);
    }

    #[test]
    fn different_seeds_explore_different_schedules() {
        let cfg = ExploreConfig::default();
        let cycles: Vec<u64> = (0..4)
            .map(|seed| explore_one(Scenario::SharedLines, seed, cfg).cycles)
            .collect();
        // Distinct seeds change programs *and* arbitration; at least two of
        // four runs must differ in length or the harness explores nothing.
        assert!(
            cycles.windows(2).any(|w| w[0] != w[1]),
            "all seeds produced identical runs: {cycles:?}"
        );
    }
}
