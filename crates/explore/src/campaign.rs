//! Campaigns: fan `(scenario, seed)` exploration points out over the
//! [`skipit_sweep::SweepRunner`] worker pool.
//!
//! Each point is fully identified by its label (`scenario/seed`); a failing
//! point's error row carries the same coordinates in its message, so any
//! reported failure reproduces with `explore_one(scenario, seed, cfg)` — no
//! state beyond the printed pair is needed. Result tables are bit-identical
//! at any thread count (the [`skipit_sweep`] determinism contract).

use crate::explorer::{explore_one, ExploreConfig};
use crate::scenario::Scenario;
use skipit_sweep::{Point, PointOutput, Sweep, SweepReport, SweepRunner};

/// Builds the sweep for `seeds` seeds of every scenario in `scenarios`.
pub fn campaign_sweep(
    name: &str,
    scenarios: &[Scenario],
    seeds: std::ops::Range<u64>,
    cfg: ExploreConfig,
) -> Sweep {
    let mut sweep = Sweep::new(name);
    for &scenario in scenarios {
        for seed in seeds.clone() {
            let point = Point::new(format!("{}/{seed}", scenario.name()), move |_ctx| {
                let ex = explore_one(scenario, seed, cfg);
                if let Some(v) = &ex.violation {
                    // The panic payload becomes the Error row's message;
                    // everything needed to reproduce is in it.
                    panic!(
                        "invariant violation: scenario={} seed={} {v}",
                        scenario.name(),
                        seed,
                    );
                }
                PointOutput::new().with_cycles(ex.cycles)
            })
            .param("scenario", scenario.name())
            .param("seed", seed);
            sweep = sweep.point(point);
        }
    }
    sweep
}

/// Runs a campaign on `runner` and returns the deterministic report.
pub fn run_campaign(
    name: &str,
    scenarios: &[Scenario],
    seeds: std::ops::Range<u64>,
    cfg: ExploreConfig,
    runner: &SweepRunner,
) -> SweepReport {
    runner.run(campaign_sweep(name, scenarios, seeds, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_labels_carry_reproduction_coordinates() {
        let sweep = campaign_sweep(
            "t",
            &[Scenario::FlushStorm, Scenario::PersistLog],
            0..3,
            ExploreConfig::default(),
        );
        let labels: Vec<&str> = sweep.points().iter().map(|p| p.label()).collect();
        assert_eq!(
            labels,
            [
                "flush_storm/0",
                "flush_storm/1",
                "flush_storm/2",
                "persist_log/0",
                "persist_log/1",
                "persist_log/2",
            ]
        );
    }
}
