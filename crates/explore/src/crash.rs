//! Crash-point enumeration: check recoverability of every durable image a
//! run can leave behind, from a single simulation.
//!
//! The durable image ([`System::durable_image`]) changes *only* when a DRAM
//! write completes — caches and in-flight traffic are lost at a power
//! failure (§2.5), so two crash instants between consecutive write
//! completions leave byte-identical images. Snapshotting at every
//! completed-write count change therefore covers **all** distinct crash
//! images of the run, without re-simulating per crash point.

use skipit_core::{Op, System};
use skipit_mem::Dram;

/// Runs `programs` (then quiesces), calling `check(cycle, image)` on the
/// initial durable image and on every distinct image the run produces.
///
/// Returns the number of distinct images checked, or the first rejection as
/// `Err((cycle, why))` — `cycle` being a crash instant that would strand an
/// unrecoverable image.
pub fn scan_crash_points<E>(
    sys: &mut System,
    programs: Vec<Vec<Op>>,
    mut check: impl FnMut(u64, &Dram) -> Result<(), E>,
) -> Result<usize, (u64, E)> {
    let mut last_writes = u64::MAX;
    let mut points = 0usize;
    let mut observe = |s: &System| -> Result<(), E> {
        let writes = s.stats().mem.writes;
        if writes != last_writes {
            last_writes = writes;
            points += 1;
            check(s.now(), &s.durable_image())?;
        }
        Ok(())
    };
    sys.run_programs_observed(programs, &mut observe)?;
    sys.quiesce_observed(&mut observe)?;
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipit_core::SystemBuilder;

    #[test]
    fn scan_visits_every_distinct_image_once() {
        let mut sys = SystemBuilder::new().cores(1).build();
        let prog = vec![
            Op::Store {
                addr: 0x9000,
                value: 1,
            },
            Op::Flush { addr: 0x9000 },
            Op::Fence,
            Op::Store {
                addr: 0x9040,
                value: 2,
            },
            Op::Flush { addr: 0x9040 },
            Op::Fence,
        ];
        let mut seen = Vec::new();
        let points = scan_crash_points(&mut sys, vec![prog], |cycle, image| {
            seen.push((
                cycle,
                image.read_word_direct(0x9000),
                image.read_word_direct(0x9040),
            ));
            Ok::<(), ()>(())
        })
        .unwrap();
        // Initial empty image + one per completed DRAM write.
        assert_eq!(points, seen.len());
        assert!(points >= 3, "expected >= 3 distinct images, got {points}");
        assert_eq!(seen.first().unwrap().1, 0);
        assert_eq!(seen.last().unwrap(), &(seen.last().unwrap().0, 1, 2));
        // Monotone: once durable, a value never reverts.
        assert!(seen
            .windows(2)
            .all(|w| w[0].1 <= w[1].1 && w[0].2 <= w[1].2));
    }

    #[test]
    fn rejection_reports_the_crash_cycle() {
        let mut sys = SystemBuilder::new().cores(1).build();
        let prog = vec![
            Op::Store {
                addr: 0x9100,
                value: 9,
            },
            Op::Flush { addr: 0x9100 },
            Op::Fence,
        ];
        let err = scan_crash_points(&mut sys, vec![prog], |_cycle, image| {
            if image.read_word_direct(0x9100) == 9 {
                Err("value became durable")
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert_eq!(err.1, "value became durable");
        assert!(err.0 > 0);
    }
}
