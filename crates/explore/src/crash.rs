//! Crash-point enumeration: check recoverability of every durable image a
//! run can leave behind, from a single simulation.
//!
//! The durable image ([`System::durable_image`]) changes *only* when a DRAM
//! write completes — caches and in-flight traffic are lost at a power
//! failure (§2.5), so two crash instants between consecutive write
//! completions leave byte-identical images. Snapshotting at every
//! completed-write count change therefore covers **all** distinct crash
//! images of the run, without re-simulating per crash point.
//!
//! Each visited point is handed to the checker as a [`CrashPoint`]: besides
//! the lossy durable image (what a recovery procedure would see after power
//! failure), it can capture the **full restartable machine state** as a
//! [`Snapshot`] — in-flight TileLink traffic, cache contents, program
//! counters and all — so a rejected point can be re-materialized with
//! [`System::restore`] and single-stepped instead of re-simulating the run
//! from cycle zero.

use skipit_core::{Op, Snapshot, SnapshotError, System};
use skipit_mem::Dram;

/// One distinct crash instant of a scanned run, borrowed from the running
/// system at an executed cycle boundary.
#[derive(Debug)]
pub struct CrashPoint<'a> {
    sys: &'a System,
}

impl CrashPoint<'_> {
    /// The crash instant (current simulated cycle).
    pub fn cycle(&self) -> u64 {
        self.sys.now()
    }

    /// What survives power failure at this instant: DRAM with every
    /// incomplete write dropped. This is the image a recovery procedure
    /// runs against.
    pub fn durable_image(&self) -> Dram {
        self.sys.durable_image()
    }

    /// The full restartable state at this instant — everything, not just
    /// the durable image. Restore it with [`System::restore`] (then
    /// [`System::resume_programs`]) to replay forward from this exact
    /// point, e.g. to bisect how a rejected image came to be.
    pub fn snapshot(&self) -> Result<Snapshot, SnapshotError> {
        self.sys.snapshot()
    }
}

/// Runs `programs` (then quiesces), calling `check(point)` on the initial
/// durable image and on every distinct image the run produces.
///
/// Returns the number of distinct images checked, or the first rejection as
/// `Err((cycle, why))` — `cycle` being a crash instant that would strand an
/// unrecoverable image. Capture [`CrashPoint::snapshot`] inside `check`
/// (e.g. in the rejecting arm) to keep a restartable state of the offending
/// instant.
pub fn scan_crash_points<E>(
    sys: &mut System,
    programs: Vec<Vec<Op>>,
    mut check: impl FnMut(&CrashPoint<'_>) -> Result<(), E>,
) -> Result<usize, (u64, E)> {
    let mut last_writes = u64::MAX;
    let mut points = 0usize;
    let mut observe = |s: &System| -> Result<(), E> {
        let writes = s.stats().mem.writes;
        if writes != last_writes {
            last_writes = writes;
            points += 1;
            check(&CrashPoint { sys: s })?;
        }
        Ok(())
    };
    sys.run_programs_observed(programs, &mut observe)?;
    sys.quiesce_observed(&mut observe)?;
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipit_core::SystemBuilder;

    #[test]
    fn scan_visits_every_distinct_image_once() {
        let mut sys = SystemBuilder::new().cores(1).build();
        let prog = vec![
            Op::Store {
                addr: 0x9000,
                value: 1,
            },
            Op::Flush { addr: 0x9000 },
            Op::Fence,
            Op::Store {
                addr: 0x9040,
                value: 2,
            },
            Op::Flush { addr: 0x9040 },
            Op::Fence,
        ];
        let mut seen = Vec::new();
        let points = scan_crash_points(&mut sys, vec![prog], |point| {
            let image = point.durable_image();
            seen.push((
                point.cycle(),
                image.read_word_direct(0x9000),
                image.read_word_direct(0x9040),
            ));
            Ok::<(), ()>(())
        })
        .unwrap();
        // Initial empty image + one per completed DRAM write.
        assert_eq!(points, seen.len());
        assert!(points >= 3, "expected >= 3 distinct images, got {points}");
        assert_eq!(seen.first().unwrap().1, 0);
        assert_eq!(seen.last().unwrap(), &(seen.last().unwrap().0, 1, 2));
        // Monotone: once durable, a value never reverts.
        assert!(seen
            .windows(2)
            .all(|w| w[0].1 <= w[1].1 && w[0].2 <= w[1].2));
    }

    #[test]
    fn rejection_reports_the_crash_cycle() {
        let mut sys = SystemBuilder::new().cores(1).build();
        let prog = vec![
            Op::Store {
                addr: 0x9100,
                value: 9,
            },
            Op::Flush { addr: 0x9100 },
            Op::Fence,
        ];
        let err = scan_crash_points(&mut sys, vec![prog], |point| {
            if point.durable_image().read_word_direct(0x9100) == 9 {
                Err("value became durable")
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert_eq!(err.1, "value became durable");
        assert!(err.0 > 0);
    }

    /// A crash point is a *restartable state*, not just a DRAM image: the
    /// snapshot captured at a mid-run point restores to a system that
    /// replays the rest of the run bit-identically to the original.
    #[test]
    fn crash_point_snapshots_are_restartable() {
        let prog = || {
            vec![
                Op::Store {
                    addr: 0x9200,
                    value: 7,
                },
                Op::Flush { addr: 0x9200 },
                Op::Fence,
                Op::Store {
                    addr: 0x9240,
                    value: 8,
                },
                Op::Flush { addr: 0x9240 },
                Op::Fence,
                Op::Load { addr: 0x9200 },
            ]
        };
        let mut sys = SystemBuilder::new().cores(1).build();
        let mut mid: Option<(u64, Snapshot)> = None;
        scan_crash_points(&mut sys, vec![prog()], |point| {
            // Keep the first point after the initial image: the run is
            // still in flight there (the second store hasn't completed).
            if mid.is_none() && point.cycle() > 0 {
                mid = Some((point.cycle(), point.snapshot().expect("snapshottable")));
            }
            Ok::<(), ()>(())
        })
        .unwrap();
        sys.quiesce();
        let (cycle, snap) = mid.expect("run produced a mid-run crash point");
        let mut resumed = System::restore(&snap, sys.config()).unwrap();
        assert_eq!(resumed.now(), cycle);
        resumed.resume_programs();
        resumed.quiesce();
        assert_eq!(
            resumed.now(),
            sys.now(),
            "resumed run must land on the same cycle"
        );
        assert_eq!(resumed.stats(), sys.stats());
        for addr in [0x9200, 0x9240] {
            assert_eq!(
                resumed.durable_image().read_word_direct(addr),
                sys.durable_image().read_word_direct(addr)
            );
        }
    }
}
