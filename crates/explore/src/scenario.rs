//! Seeded workload generators for exploration campaigns.
//!
//! Each [`Scenario`] turns a `(seed, cores)` pair into one op program per
//! core, using a SplitMix64 counter generator (no external RNG crates) so a
//! campaign point is identified by its `(scenario, seed)` coordinates alone.

use skipit_core::Op;
use skipit_tilelink::perturb::splitmix64;

/// Minimal deterministic generator: a SplitMix64 counter stream.
#[derive(Clone, Copy, Debug)]
pub struct OpRng {
    state: u64,
}

impl OpRng {
    /// A stream derived from `seed` (distinct seeds give decorrelated
    /// streams; the same seed always gives the same stream).
    pub fn new(seed: u64) -> Self {
        OpRng {
            state: splitmix64(seed ^ 0x6c62_272e_07bb_0142),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64(self.state)
    }

    /// Uniform draw in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A workload family for exploration. Each stresses a different slice of
/// the flush-unit / coherence machinery; all are parameterized by seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Dense CBO traffic (stores, cleans, flushes, invals, fences) over a
    /// small line set: FSHR contention, coalescing, counter bookkeeping.
    FlushStorm,
    /// All cores hammer the same few lines: probes racing queued flushes
    /// and in-flight FSHRs, single-writer and skip-bit maintenance.
    SharedLines,
    /// Working set larger than the L1: the writeback unit and flush unit
    /// compete through the §5.4 interlocks; skip bits meet evictions.
    EvictionPressure,
    /// Store → flush → fence logging rhythm, the §4 durability pattern the
    /// crash scanner slices at every persistence event.
    PersistLog,
}

impl Scenario {
    /// Every scenario, in campaign order.
    pub const ALL: [Scenario; 4] = [
        Scenario::FlushStorm,
        Scenario::SharedLines,
        Scenario::EvictionPressure,
        Scenario::PersistLog,
    ];

    /// Stable identifier (used in campaign point labels).
    pub fn name(self) -> &'static str {
        match self {
            Scenario::FlushStorm => "flush_storm",
            Scenario::SharedLines => "shared_lines",
            Scenario::EvictionPressure => "eviction_pressure",
            Scenario::PersistLog => "persist_log",
        }
    }

    /// Inverse of [`Scenario::name`].
    pub fn from_name(name: &str) -> Option<Scenario> {
        Scenario::ALL.into_iter().find(|s| s.name() == name)
    }

    /// The per-core programs this scenario generates for `seed`. Pure in
    /// `(self, seed, cores)`.
    pub fn programs(self, seed: u64, cores: usize) -> Vec<Vec<Op>> {
        (0..cores)
            .map(|core| {
                // Mix the core index in so cores run distinct streams while
                // the whole workload stays a function of the seed.
                let mut rng = OpRng::new(splitmix64(seed).wrapping_add(core as u64));
                match self {
                    Scenario::FlushStorm => flush_storm(&mut rng),
                    Scenario::SharedLines => shared_lines(&mut rng),
                    Scenario::EvictionPressure => eviction_pressure(&mut rng),
                    Scenario::PersistLog => persist_log(&mut rng, core),
                }
            })
            .collect()
    }
}

/// A word address inside one of `lines` cache lines starting at `base`.
fn word_addr(rng: &mut OpRng, base: u64, lines: u64) -> u64 {
    base + rng.below(lines) * 64 + rng.below(8) * 8
}

fn flush_storm(rng: &mut OpRng) -> Vec<Op> {
    let mut prog = Vec::with_capacity(121);
    for _ in 0..120 {
        let addr = word_addr(rng, 0x4_0000, 8);
        prog.push(match rng.below(20) {
            0..=6 => Op::Store {
                addr,
                value: rng.next_u64(),
            },
            7..=9 => Op::Load { addr },
            10..=13 => Op::Clean { addr },
            14..=16 => Op::Flush { addr },
            17 => Op::Inval { addr },
            _ => Op::Fence,
        });
    }
    prog.push(Op::Fence);
    prog
}

fn shared_lines(rng: &mut OpRng) -> Vec<Op> {
    let mut prog = Vec::with_capacity(101);
    for _ in 0..100 {
        let addr = word_addr(rng, 0x5_0000, 4);
        prog.push(match rng.below(16) {
            0..=4 => Op::Store {
                addr,
                value: rng.next_u64(),
            },
            5..=8 => Op::Load { addr },
            9..=10 => Op::Cas {
                addr,
                expected: 0,
                new: rng.next_u64() | 1,
            },
            11..=12 => Op::Clean { addr },
            13..=14 => Op::Flush { addr },
            _ => Op::Fence,
        });
    }
    prog.push(Op::Fence);
    prog
}

fn eviction_pressure(rng: &mut OpRng) -> Vec<Op> {
    let mut prog = Vec::with_capacity(161);
    for _ in 0..160 {
        // 1024 lines overflow the 512-line L1, forcing WBU traffic.
        let addr = word_addr(rng, 0x8_0000, 1024);
        prog.push(match rng.below(12) {
            0..=5 => Op::Store {
                addr,
                value: rng.next_u64(),
            },
            6..=8 => Op::Load { addr },
            9 => Op::Clean { addr },
            10 => Op::Flush { addr },
            _ => Op::Fence,
        });
    }
    prog.push(Op::Fence);
    prog
}

/// The §4 persistence rhythm: write a payload, flush it, fence, then
/// publish a commit marker the same way. `core` offsets the log region so
/// cores keep private logs while still sharing the cache hierarchy.
fn persist_log(rng: &mut OpRng, core: usize) -> Vec<Op> {
    let log = 0xa_0000 + (core as u64) * 0x1_0000;
    let marker = log + 63 * 64;
    let mut prog = Vec::with_capacity(8 * 8);
    for txn in 0..8 {
        let payload = log + rng.below(32) * 64 + rng.below(8) * 8;
        prog.push(Op::Store {
            addr: payload,
            value: (txn << 32) | 0xbeef,
        });
        prog.push(Op::Flush { addr: payload });
        prog.push(Op::Fence);
        prog.push(Op::Store {
            addr: marker,
            value: txn + 1,
        });
        prog.push(Op::Flush { addr: marker });
        prog.push(Op::Fence);
    }
    prog
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programs_are_pure_in_seed() {
        for sc in Scenario::ALL {
            assert_eq!(sc.programs(7, 2), sc.programs(7, 2), "{}", sc.name());
            assert_ne!(sc.programs(7, 2), sc.programs(8, 2), "{}", sc.name());
        }
    }

    #[test]
    fn names_round_trip() {
        for sc in Scenario::ALL {
            assert_eq!(Scenario::from_name(sc.name()), Some(sc));
        }
        assert_eq!(Scenario::from_name("nope"), None);
    }

    #[test]
    fn cores_get_distinct_streams() {
        let progs = Scenario::FlushStorm.programs(3, 2);
        assert_eq!(progs.len(), 2);
        assert_ne!(progs[0], progs[1]);
    }
}
