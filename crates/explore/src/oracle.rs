//! The always-on invariant oracle.
//!
//! [`InvariantOracle::observe`] is designed to run at every executed cycle
//! boundary of a simulation (the
//! [`skipit_core::System::run_programs_observed`] hook). The fast-forward
//! engines skip only provably idle windows, so observing executed
//! boundaries sees every distinct machine state, and the first violating
//! cycle an exploration reports is identical under every
//! [`skipit_core::EngineKind`].

use skipit_core::{ClientState, FshrState, System};

/// One invariant violation: which rule broke, when, and a human-readable
/// account of the offending state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Stable rule identifier (`"skip_bit"`, `"single_writer"`,
    /// `"inclusion"`, `"fshr_legality"`, `"flush_counter"`).
    pub rule: &'static str,
    /// Cycle at which the violating state was observed.
    pub cycle: u64,
    /// What exactly was wrong.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] cycle {}: {}", self.rule, self.cycle, self.detail)
    }
}

/// Single-cycle FSHR transitions of the Fig. 7 state machine. Within one
/// executed cycle an FSHR can chain up to three of these (RootReleaseAck
/// completion, flush-queue dispatch, and one FSM step all happen in the
/// same `DataCache::step`), so legality between two observed states is
/// reachability in at most three hops.
fn fshr_successors(s: FshrState) -> &'static [FshrState] {
    match s {
        FshrState::Free => &[FshrState::MetaWrite, FshrState::SendRelease],
        FshrState::MetaWrite => &[FshrState::FillBuffer, FshrState::SendRelease],
        FshrState::FillBuffer => &[FshrState::SendReleaseData],
        FshrState::SendReleaseData => &[FshrState::WaitAck],
        FshrState::SendRelease => &[FshrState::WaitAck],
        FshrState::WaitAck => &[FshrState::Free],
    }
}

fn fshr_reachable(from: FshrState, to: FshrState, hops: usize) -> bool {
    from == to
        || hops > 0
            && fshr_successors(from)
                .iter()
                .any(|&mid| fshr_reachable(mid, to, hops - 1))
}

/// Stateful invariant checker. Construct one per run; feed it every
/// observed state in order (it tracks FSHR states between observations to
/// judge transition legality).
#[derive(Clone, Debug, Default)]
pub struct InvariantOracle {
    /// Last observed FSHR states, per core (empty until first observation).
    fshr_last: Vec<Vec<FshrState>>,
    /// Observations performed (diagnostics).
    observations: u64,
}

impl InvariantOracle {
    /// A fresh oracle with no observation history.
    pub fn new() -> Self {
        InvariantOracle::default()
    }

    /// Number of states this oracle has checked.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Checks every invariant against the current state, returning the
    /// first violation found. Intended as the observer closure of
    /// [`System::run_programs_observed`] /
    /// [`System::quiesce_observed`].
    pub fn observe(&mut self, s: &System) -> Result<(), Violation> {
        self.observations += 1;
        let now = s.now();
        let cores = s.config().cores;

        // §6.2: a valid, clean L1 line with its skip bit set must be clean
        // (persisted) in the L2 — otherwise Skip It would drop a required
        // writeback. Also: coherence single-writer and inclusion.
        for core in 0..cores {
            for (line, state, skip) in s.l1(core).resident_lines() {
                if skip
                    && !state.is_dirty()
                    && state != ClientState::Invalid
                    && s.l2().peek_dirty(line)
                {
                    return Err(Violation {
                        rule: "skip_bit",
                        cycle: now,
                        detail: format!(
                            "core {core}: line {line:?} valid+clean with skip set but dirty in L2"
                        ),
                    });
                }
                // Inclusion: an L1-resident line must be accounted for by
                // the L2 — in the directory, or mid-transaction in an MSHR
                // (an inclusive-eviction victim is directory-invalid between
                // its last probe ack and the fill, yet fully tracked).
                if !s.l2().peek_tracked(line) {
                    return Err(Violation {
                        rule: "inclusion",
                        cycle: now,
                        detail: format!(
                            "core {core}: line {line:?} ({state}) resident in L1 but \
                             neither resident nor MSHR-tracked in L2"
                        ),
                    });
                }
                if state.can_write() {
                    for other in 0..cores {
                        if other != core
                            && s.l1(other).peek_state(line.base()) != ClientState::Invalid
                        {
                            return Err(Violation {
                                rule: "single_writer",
                                cycle: now,
                                detail: format!(
                                    "line {line:?} writable in core {core} but present in core {other}"
                                ),
                            });
                        }
                    }
                }
            }
        }

        // Flush-counter conservation (§5.3: the fence waits on this counter,
        // so a drift would either hang fences or let them retire early):
        // counter == queued entries + busy FSHRs, always.
        for core in 0..cores {
            let fu = s.l1(core).flush_unit();
            let busy = fu
                .fshrs()
                .iter()
                .filter(|f| f.state != FshrState::Free)
                .count() as u64;
            let expect = fu.queue_len() as u64 + busy;
            if fu.counter_value() != expect {
                return Err(Violation {
                    rule: "flush_counter",
                    cycle: now,
                    detail: format!(
                        "core {core}: flush counter {} but queue {} + busy FSHRs {busy}",
                        fu.counter_value(),
                        fu.queue_len(),
                    ),
                });
            }
        }

        // Fig. 7 FSHR transition legality between consecutive observations.
        if self.fshr_last.len() != cores {
            self.fshr_last = (0..cores)
                .map(|c| {
                    s.l1(c)
                        .flush_unit()
                        .fshrs()
                        .iter()
                        .map(|f| f.state)
                        .collect()
                })
                .collect();
        } else {
            for core in 0..cores {
                let fshrs = s.l1(core).flush_unit().fshrs();
                for (i, f) in fshrs.iter().enumerate() {
                    let prev = self.fshr_last[core][i];
                    if !fshr_reachable(prev, f.state, 3) {
                        return Err(Violation {
                            rule: "fshr_legality",
                            cycle: now,
                            detail: format!(
                                "core {core} FSHR {i}: illegal transition {} -> {}",
                                prev.name(),
                                f.state.name(),
                            ),
                        });
                    }
                    self.fshr_last[core][i] = f.state;
                }
            }
        }

        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipit_core::SystemBuilder;

    #[test]
    fn legality_closure_matches_fig7() {
        // Direct edges and the in-cycle compound chains.
        assert!(fshr_reachable(FshrState::Free, FshrState::Free, 3));
        assert!(fshr_reachable(FshrState::Free, FshrState::MetaWrite, 3));
        assert!(fshr_reachable(FshrState::Free, FshrState::SendRelease, 3));
        assert!(fshr_reachable(FshrState::Free, FshrState::FillBuffer, 3));
        assert!(fshr_reachable(
            FshrState::WaitAck,
            FshrState::SendRelease,
            3
        ));
        assert!(fshr_reachable(FshrState::WaitAck, FshrState::WaitAck, 3));
        // Impossible in one cycle: entering meta_write from anywhere but
        // free, or stepping backwards through the FSM.
        assert!(!fshr_reachable(
            FshrState::FillBuffer,
            FshrState::MetaWrite,
            3
        ));
        assert!(!fshr_reachable(
            FshrState::SendRelease,
            FshrState::FillBuffer,
            3
        ));
        assert!(!fshr_reachable(
            FshrState::WaitAck,
            FshrState::SendReleaseData,
            3
        ));
    }

    #[test]
    fn clean_run_produces_no_violations() {
        use skipit_core::Op;
        let mut sys = SystemBuilder::new().cores(2).skip_it(true).build();
        let mut oracle = InvariantOracle::new();
        let prog = vec![
            Op::Store {
                addr: 0x1000,
                value: 7,
            },
            Op::Flush { addr: 0x1000 },
            Op::Fence,
            Op::Load { addr: 0x1000 },
            Op::Clean { addr: 0x1000 },
            Op::Fence,
        ];
        sys.run_programs_observed(vec![prog], |s| oracle.observe(s))
            .expect("clean run must not violate invariants");
        sys.quiesce_observed(|s| oracle.observe(s)).unwrap();
        assert!(oracle.observations() > 0);
    }
}
