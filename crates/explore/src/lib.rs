//! Adversarial schedule & crash-point exploration for the Skip It simulator.
//!
//! The protocol machinery this repository reproduces — the flush unit's
//! Fig. 7 FSM, the `probe_rdy`/`flush_rdy`/`wb_rdy` interlocks (§5.4), the
//! L2 `RootRelease` transactions, the skip bit's §6.2 safety argument — is
//! exactly the kind of logic whose bugs hide in *schedules*: a probe landing
//! one cycle before a dispatch, an ack overtaking an eviction. The directed
//! tests pin down known-tricky interleavings; this crate searches for the
//! unknown ones, deterministically:
//!
//! * **Seeded perturbation** ([`skipit_core::PerturbConfig`], threaded
//!   through [`skipit_core::SystemBuilder::perturb`]) injects bounded,
//!   SplitMix64-derived arbitration jitter into every TileLink channel, the
//!   flush-queue→FSHR dispatch, and L2 MSHR scheduling. Every perturbed
//!   schedule is one a real arbiter could produce, and every run is
//!   bit-reproducible from `(seed, config)`.
//! * **A continuous invariant oracle** ([`oracle::InvariantOracle`]) checks
//!   the paper's structural invariants — skip ⇔ ¬L2-dirty (§6.2), coherence
//!   single-writer and inclusion, Fig. 7 FSHR transition legality, flush
//!   counter conservation — at every executed cycle of a run, via
//!   [`skipit_core::System::run_programs_observed`].
//! * **Crash-point enumeration** ([`crash::scan_crash_points`]) visits
//!   every point where the durable memory image can change and checks
//!   recoverability of each image, all from a single simulation. Each
//!   visited [`crash::CrashPoint`] can also capture the full restartable
//!   machine state as a [`skipit_core::Snapshot`], so an offending instant
//!   replays from itself instead of from cycle zero.
//! * **Shrinking** ([`shrink::minimize`]) reduces a failing `(scenario,
//!   seed)` to a minimal op-level reproducer that hits the identical
//!   violation, deterministically.
//! * **Campaigns** ([`campaign::campaign_sweep`]) fan seeds × scenarios out
//!   over the [`skipit_sweep::SweepRunner`] worker pool; result tables are
//!   bit-identical at any thread count, and a failing point's error message
//!   carries the `(scenario, seed)` pair that reproduces it.

pub mod campaign;
pub mod crash;
pub mod explorer;
pub mod oracle;
pub mod scenario;
pub mod shrink;

pub use campaign::{campaign_sweep, run_campaign};
pub use crash::{scan_crash_points, CrashPoint};
pub use explorer::{
    build_system, explore_one, run_with_check, run_with_oracle, Exploration, ExploreConfig,
};
pub use oracle::{InvariantOracle, Violation};
pub use scenario::{OpRng, Scenario};
pub use shrink::{minimize, replay, shrink_programs, Reproducer};
