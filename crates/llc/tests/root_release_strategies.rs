//! Probe-strategy tests for the three RootRelease kinds (§5.5 + the
//! CBO.INVAL extension), driven against the raw L2 with a scripted L1 side.

use skipit_llc::{InclusiveCache, L2Config, L2Ports};
use skipit_mem::{Dram, DramConfig};
use skipit_tilelink::{
    Cap, ChannelA, ChannelB, ChannelC, ChannelD, ChannelE, Grow, LineAddr, LineData, Link, Shrink,
    WritebackKind,
};

struct Bench {
    l2: InclusiveCache,
    a: Vec<Link<ChannelA>>,
    b: Vec<Link<ChannelB>>,
    c: Vec<Link<ChannelC>>,
    d: Vec<Link<ChannelD>>,
    e: Vec<Link<ChannelE>>,
    mem: Dram,
    now: u64,
}

impl Bench {
    fn new(cores: usize) -> Self {
        Bench {
            l2: InclusiveCache::new(cores, L2Config::default()),
            a: (0..cores).map(|_| Link::new(1, 8)).collect(),
            b: (0..cores).map(|_| Link::new(1, 8)).collect(),
            c: (0..cores).map(|_| Link::new(1, 8)).collect(),
            d: (0..cores).map(|_| Link::new(1, 8)).collect(),
            e: (0..cores).map(|_| Link::new(1, 8)).collect(),
            mem: Dram::new(DramConfig {
                read_latency: 5,
                write_latency: 5,
                issue_interval: 1,
            }),
            now: 0,
        }
    }

    fn step(&mut self) {
        let mut ports = L2Ports {
            a: &mut self.a,
            b: &mut self.b,
            c: &mut self.c,
            d: &mut self.d,
            e: &mut self.e,
            mem: &mut self.mem,
        };
        self.l2.step(self.now, &mut ports);
        self.now += 1;
    }

    /// Completes an acquire for `core`, answering probes with `reply`.
    fn acquire(&mut self, core: usize, addr: LineAddr, grow: Grow) {
        self.a[core].push(
            self.now,
            ChannelA::AcquireBlock {
                source: core,
                addr,
                grow,
            },
        );
        for _ in 0..300 {
            self.step();
            for bc in 0..self.b.len() {
                while let Some(ChannelB::Probe { target, addr, cap }) = self.b[bc].pop(self.now) {
                    self.c[bc].push(
                        self.now,
                        ChannelC::ProbeAck {
                            source: target,
                            addr,
                            shrink: match cap {
                                Cap::ToN => Shrink::TtoN,
                                Cap::ToB => Shrink::TtoB,
                                Cap::ToT => Shrink::TtoT,
                            },
                            data: None,
                        },
                    );
                }
            }
            if let Some(ChannelD::Grant { .. }) = self.d[core].peek(self.now) {
                self.d[core].pop(self.now);
                self.e[core].push(self.now, ChannelE::GrantAck { source: core, addr });
                self.step();
                self.step();
                return;
            }
        }
        panic!("acquire did not complete");
    }
}

fn line(n: u64) -> LineAddr {
    LineAddr::new(n * 64)
}

fn data(seed: u64) -> LineData {
    let mut d = LineData::zeroed();
    d.set_word(0, seed);
    d
}

/// RootReleaseClean with a *foreign* Trunk owner probes exactly that owner
/// with ToB (downgrade, not invalidate).
#[test]
fn clean_probes_only_the_foreign_trunk_owner() {
    let mut b = Bench::new(3);
    b.acquire(0, line(5), Grow::NtoT); // core 0 owns Trunk
                                       // Core 2 issues a clean for the line it does not own.
    b.c[2].push(
        b.now,
        ChannelC::RootRelease {
            source: 2,
            addr: line(5),
            kind: WritebackKind::Clean,
            data: None,
        },
    );
    let mut probed = Vec::new();
    for _ in 0..300 {
        b.step();
        for bc in 0..3 {
            while let Some(ChannelB::Probe { target, addr, cap }) = b.b[bc].pop(b.now) {
                probed.push((target, cap));
                b.c[bc].push(
                    b.now,
                    ChannelC::ProbeAck {
                        source: target,
                        addr,
                        shrink: Shrink::TtoB,
                        data: Some(data(42)),
                    },
                );
            }
        }
        if matches!(
            b.d[2].peek(b.now),
            Some(ChannelD::ReleaseAck { root: true, .. })
        ) {
            b.d[2].pop(b.now);
            assert_eq!(probed, vec![(0, Cap::ToB)], "only the trunk owner, ToB");
            assert_eq!(b.mem.read_direct(line(5)), data(42), "dirty data durable");
            return;
        }
    }
    panic!("clean did not complete");
}

/// RootReleaseInval probes every owner with ToN and discards their data.
#[test]
fn inval_revokes_all_owners_and_discards() {
    let mut b = Bench::new(3);
    b.acquire(0, line(9), Grow::NtoB);
    b.acquire(1, line(9), Grow::NtoB);
    b.c[2].push(
        b.now,
        ChannelC::RootRelease {
            source: 2,
            addr: line(9),
            kind: WritebackKind::Inval,
            data: None,
        },
    );
    let mut probed = Vec::new();
    for _ in 0..300 {
        b.step();
        for bc in 0..3 {
            while let Some(ChannelB::Probe { target, addr, cap }) = b.b[bc].pop(b.now) {
                probed.push((target, cap));
                b.c[bc].push(
                    b.now,
                    ChannelC::ProbeAck {
                        source: target,
                        addr,
                        shrink: Shrink::BtoN,
                        data: None,
                    },
                );
            }
        }
        if matches!(
            b.d[2].peek(b.now),
            Some(ChannelD::ReleaseAck { root: true, .. })
        ) {
            b.d[2].pop(b.now);
            probed.sort();
            assert_eq!(probed, vec![(0, Cap::ToN), (1, Cap::ToN)]);
            assert!(!b.l2.peek_valid(line(9)), "inval removes the L2 copy");
            assert_eq!(b.mem.stats().writes, 0, "inval never writes memory");
            assert_eq!(b.l2.stats().root_release_inval, 1);
            return;
        }
    }
    panic!("inval did not complete");
}

/// A flush whose requester held the only copy probes nobody (the requester
/// cleared its own permissions before sending, §5.2).
#[test]
fn flush_from_sole_owner_probes_nobody() {
    let mut b = Bench::new(2);
    b.acquire(0, line(3), Grow::NtoT);
    b.c[0].push(
        b.now,
        ChannelC::RootRelease {
            source: 0,
            addr: line(3),
            kind: WritebackKind::Flush,
            data: Some(data(7)),
        },
    );
    for _ in 0..300 {
        b.step();
        for bc in 0..2 {
            assert!(
                b.b[bc].pop(b.now).is_none(),
                "no probes expected for a sole-owner flush"
            );
        }
        if matches!(
            b.d[0].peek(b.now),
            Some(ChannelD::ReleaseAck { root: true, .. })
        ) {
            assert_eq!(b.mem.read_direct(line(3)), data(7));
            assert!(!b.l2.peek_valid(line(3)));
            return;
        }
    }
    panic!("flush did not complete");
}
