//! L2 event counters.

/// Counters maintained by the inclusive L2.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct L2Stats {
    /// `Acquire` transactions completed.
    pub acquires: u64,
    /// Grants answered with `GrantData` (line persisted — skip bit set).
    pub grants_clean: u64,
    /// Grants answered with `GrantDataDirty` (line dirty in L2, §6).
    pub grants_dirty: u64,
    /// `RootReleaseFlush` transactions completed (§5.5).
    pub root_release_flush: u64,
    /// `RootReleaseClean` transactions completed.
    pub root_release_clean: u64,
    /// `RootReleaseInval` transactions completed (CMO extension, beyond the
    /// paper's two instructions).
    pub root_release_inval: u64,
    /// RootReleases whose DRAM write was *trivially skipped* because the line
    /// was clean everywhere (§5.5 / §7.4).
    pub root_release_dram_skipped: u64,
    /// Lines written back to DRAM on behalf of RootReleases.
    pub root_release_dram_writes: u64,
    /// Probes sent to L1 caches.
    pub probes_sent: u64,
    /// Voluntary `Release` transactions (L1 evictions) absorbed.
    pub releases: u64,
    /// Inclusive victim evictions (capacity) performed.
    pub evictions: u64,
    /// Victim evictions that wrote dirty data to DRAM.
    pub dirty_evictions: u64,
    /// Line fills from DRAM.
    pub mem_fills: u64,
    /// TL-C requests deferred through the ListBuffer.
    pub list_buffered: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        assert_eq!(L2Stats::default().acquires, 0);
    }
}

// --- snapshot codec (DESIGN.md §11) ---

use skipit_snap::{Codec, SnapError, SnapReader, SnapWriter};

impl Codec for L2Stats {
    fn encode(&self, w: &mut SnapWriter) {
        for v in [
            self.acquires,
            self.grants_clean,
            self.grants_dirty,
            self.root_release_flush,
            self.root_release_clean,
            self.root_release_inval,
            self.root_release_dram_skipped,
            self.root_release_dram_writes,
            self.probes_sent,
            self.releases,
            self.evictions,
            self.dirty_evictions,
            self.mem_fills,
            self.list_buffered,
        ] {
            w.put_u64(v);
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let mut s = L2Stats::default();
        for f in [
            &mut s.acquires,
            &mut s.grants_clean,
            &mut s.grants_dirty,
            &mut s.root_release_flush,
            &mut s.root_release_clean,
            &mut s.root_release_inval,
            &mut s.root_release_dram_skipped,
            &mut s.root_release_dram_writes,
            &mut s.probes_sent,
            &mut s.releases,
            &mut s.evictions,
            &mut s.dirty_evictions,
            &mut s.mem_fills,
            &mut s.list_buffered,
        ] {
            *f = r.get_u64()?;
        }
        Ok(s)
    }
}
