//! L2 configuration.

/// Geometry and timing of the inclusive L2.
///
/// The default matches the evaluation platform of §7.1: a 512 KiB shared
/// inclusive L2 over 64 B lines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct L2Config {
    /// Number of sets (default 1024 → 1024 × 8 × 64 B = 512 KiB).
    pub sets: usize,
    /// Associativity (default 8).
    pub ways: usize,
    /// Number of L2 MSHRs.
    pub mshrs: usize,
    /// Directory/banked-store access latency in cycles, applied once per
    /// MSHR allocation.
    pub access_latency: u64,
    /// Capacity of the ListBuffer holding deferred TL-C requests (§3.4).
    pub list_buffer_depth: usize,
}

impl Default for L2Config {
    fn default() -> Self {
        L2Config {
            sets: 1024,
            ways: 8,
            mshrs: 64,
            access_latency: 6,
            list_buffer_depth: 64,
        }
    }
}

impl L2Config {
    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * skipit_tilelink::LINE_BYTES
    }

    /// Validates invariants the model relies on.
    ///
    /// # Panics
    ///
    /// Panics if any field is zero or `sets` is not a power of two.
    pub fn validate(&self) {
        assert!(self.sets.is_power_of_two(), "sets must be a power of two");
        assert!(self.ways > 0, "ways must be nonzero");
        assert!(self.mshrs > 0, "mshrs must be nonzero");
        assert!(
            self.list_buffer_depth > 0,
            "list_buffer_depth must be nonzero"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_512kib() {
        let c = L2Config::default();
        c.validate();
        assert_eq!(c.capacity_bytes(), 512 * 1024);
    }
}
