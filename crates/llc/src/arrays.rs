//! L2 directory and banked data store.
//!
//! Each line's metadata carries the full-map directory bits the SiFive
//! inclusive cache keeps (§3.4): validity, the dirty bit, the set of L1
//! owners, and which owner (if any) holds write (Trunk) permission.

use crate::config::L2Config;
use skipit_tilelink::{AgentId, LineAddr, LineData, LINE_BYTES};

/// Directory entry for one L2 line.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DirEntry {
    /// Tag bits.
    pub tag: u64,
    /// Whether the way holds a line.
    pub valid: bool,
    /// The line differs from main memory — the bit Skip It mirrors into the
    /// L1 skip bit (§6) and the bit that lets the L2 "trivially skip"
    /// redundant writebacks (§5.5).
    pub dirty: bool,
    /// Bitmask of client (L1) agents holding a copy.
    pub owners: u32,
    /// The single agent holding Trunk (write) permission, if any.
    pub trunk: Option<AgentId>,
    /// Reserved by an in-flight MSHR; excluded from victim selection.
    pub reserved: bool,
}

impl DirEntry {
    /// Whether agent `a` holds a copy.
    pub fn owns(&self, a: AgentId) -> bool {
        self.owners & (1 << a) != 0
    }

    /// Adds agent `a` as an owner, with Trunk permission if `trunk`.
    pub fn add_owner(&mut self, a: AgentId, trunk: bool) {
        self.owners |= 1 << a;
        if trunk {
            self.trunk = Some(a);
        }
    }

    /// Removes agent `a` as an owner (clearing Trunk if it held it).
    pub fn remove_owner(&mut self, a: AgentId) {
        self.owners &= !(1 << a);
        if self.trunk == Some(a) {
            self.trunk = None;
        }
    }

    /// Iterates over owner agent ids.
    pub fn owner_ids(&self) -> impl Iterator<Item = AgentId> + '_ {
        (0..32).filter(|&a| self.owns(a))
    }

    /// Number of owners.
    pub fn owner_count(&self) -> usize {
        self.owners.count_ones() as usize
    }
}

/// log2 of the line size, for shift-based address splitting.
const LINE_SHIFT: u32 = (LINE_BYTES as u64).trailing_zeros();

/// The L2 directory + banked store.
#[derive(Debug)]
pub struct L2Arrays {
    sets: usize,
    ways: usize,
    /// `log2(sets)` — same shift/mask address split as the L1 arrays: set
    /// counts are validated power-of-two, and the two 64-bit divides per
    /// `lookup` showed up on every directory walk of the busy path.
    set_bits: u32,
    dir: Vec<DirEntry>,
    data: Vec<LineData>,
    lru: Vec<u64>,
    tick: u64,
}

impl L2Arrays {
    /// Allocates empty arrays.
    pub fn new(cfg: &L2Config) -> Self {
        assert!(cfg.sets.is_power_of_two(), "l2.sets must be a power of two");
        let n = cfg.sets * cfg.ways;
        L2Arrays {
            sets: cfg.sets,
            ways: cfg.ways,
            set_bits: cfg.sets.trailing_zeros(),
            dir: vec![DirEntry::default(); n],
            data: vec![LineData::zeroed(); n],
            lru: vec![0; n],
            tick: 0,
        }
    }

    /// Set index of `addr`.
    pub fn set_index(&self, addr: LineAddr) -> usize {
        ((addr.base() >> LINE_SHIFT) & (self.sets as u64 - 1)) as usize
    }

    fn tag(&self, addr: LineAddr) -> u64 {
        addr.base() >> (LINE_SHIFT + self.set_bits)
    }

    fn slot(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    /// Line address stored in `(set, way)` (meaningful when valid).
    pub fn addr_of(&self, set: usize, way: usize) -> LineAddr {
        let e = &self.dir[self.slot(set, way)];
        LineAddr::new((e.tag << self.set_bits | set as u64) << LINE_SHIFT)
    }

    /// Looks up `addr`, returning its way if resident.
    pub fn lookup(&self, addr: LineAddr) -> Option<usize> {
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        (0..self.ways).find(|&w| {
            let e = &self.dir[self.slot(set, w)];
            e.valid && e.tag == tag
        })
    }

    /// Directory access.
    pub fn dir(&self, set: usize, way: usize) -> &DirEntry {
        &self.dir[self.slot(set, way)]
    }

    /// Mutable directory access.
    pub fn dir_mut(&mut self, set: usize, way: usize) -> &mut DirEntry {
        let s = self.slot(set, way);
        &mut self.dir[s]
    }

    /// Banked-store read.
    pub fn line(&self, set: usize, way: usize) -> LineData {
        self.data[self.slot(set, way)]
    }

    /// Banked-store write.
    pub fn set_line(&mut self, set: usize, way: usize, data: LineData) {
        let s = self.slot(set, way);
        self.data[s] = data;
    }

    /// Marks `(set, way)` most recently used.
    pub fn touch(&mut self, set: usize, way: usize) {
        self.tick += 1;
        let s = self.slot(set, way);
        self.lru[s] = self.tick;
    }

    /// Chooses a victim way in `addr`'s set (invalid preferred, else LRU),
    /// skipping reserved ways. `None` when every way is reserved.
    pub fn victim_way(&self, addr: LineAddr) -> Option<usize> {
        let set = self.set_index(addr);
        let mut best: Option<(usize, u64)> = None;
        for w in 0..self.ways {
            let e = &self.dir[self.slot(set, w)];
            if e.reserved {
                continue;
            }
            if !e.valid {
                return Some(w);
            }
            let stamp = self.lru[self.slot(set, w)];
            if best.is_none_or(|(_, s)| stamp < s) {
                best = Some((w, stamp));
            }
        }
        best.map(|(w, _)| w)
    }

    /// Installs a fresh line (from memory), with no owners and clean.
    pub fn install(&mut self, addr: LineAddr, way: usize, data: LineData) {
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let s = self.slot(set, way);
        self.dir[s] = DirEntry {
            tag,
            valid: true,
            dirty: false,
            owners: 0,
            trunk: None,
            reserved: self.dir[s].reserved,
        };
        self.data[s] = data;
        self.touch(set, way);
    }

    /// Number of valid lines (test/debug helper).
    pub fn valid_lines(&self) -> usize {
        self.dir.iter().filter(|e| e.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dir_entry_owner_tracking() {
        let mut e = DirEntry::default();
        e.add_owner(0, false);
        e.add_owner(3, true);
        assert!(e.owns(0) && e.owns(3) && !e.owns(1));
        assert_eq!(e.trunk, Some(3));
        assert_eq!(e.owner_count(), 2);
        assert_eq!(e.owner_ids().collect::<Vec<_>>(), vec![0, 3]);
        e.remove_owner(3);
        assert_eq!(e.trunk, None);
        assert!(!e.owns(3));
    }

    #[test]
    fn install_lookup_roundtrip() {
        let cfg = L2Config::default();
        let mut a = L2Arrays::new(&cfg);
        let addr = LineAddr::new(0x123 * 64);
        let mut d = LineData::zeroed();
        d.set_word(1, 5);
        a.install(addr, 2, d);
        let w = a.lookup(addr).unwrap();
        assert_eq!(w, 2);
        let set = a.set_index(addr);
        assert_eq!(a.line(set, w).word(1), 5);
        assert_eq!(a.addr_of(set, w), addr);
        assert!(!a.dir(set, w).dirty);
    }

    #[test]
    fn victim_selection_prefers_invalid_then_lru() {
        let cfg = L2Config {
            sets: 4,
            ways: 2,
            ..L2Config::default()
        };
        let mut a = L2Arrays::new(&cfg);
        let addr = LineAddr::new(0);
        a.install(addr, 0, LineData::zeroed());
        assert_eq!(a.victim_way(addr), Some(1));
        a.install(addr.offset_lines(4), 1, LineData::zeroed()); // same set
        assert_eq!(a.victim_way(addr), Some(0));
        a.touch(a.set_index(addr), 0);
        assert_eq!(a.victim_way(addr), Some(1));
    }
}

// --- snapshot codec (DESIGN.md §11) ---

use skipit_snap::{Codec, SnapError, SnapReader, SnapWriter};

impl Codec for DirEntry {
    fn encode(&self, w: &mut SnapWriter) {
        self.tag.encode(w);
        self.valid.encode(w);
        self.dirty.encode(w);
        self.owners.encode(w);
        self.trunk.encode(w);
        self.reserved.encode(w);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(DirEntry {
            tag: u64::decode(r)?,
            valid: bool::decode(r)?,
            dirty: bool::decode(r)?,
            owners: u32::decode(r)?,
            trunk: Option::decode(r)?,
            reserved: bool::decode(r)?,
        })
    }
}

impl L2Arrays {
    /// Whether way slot `i` carries no information: pristine directory
    /// entry, zero data, zero LRU stamp (collapses to one flag byte).
    fn way_is_pristine(&self, i: usize) -> bool {
        self.dir[i] == DirEntry::default() && self.lru[i] == 0 && self.data[i].0 == [0u64; 8]
    }

    /// Encodes the L2 arrays' simulated state; same shape and rationale as
    /// the L1 `CacheArrays::encode_state` (stale data of invalid ways is
    /// preserved bit-for-bit, pristine ways collapse to a flag byte).
    pub fn encode_state(&self, w: &mut SnapWriter) {
        w.tag(0x32);
        self.sets.encode(w);
        self.ways.encode(w);
        for i in 0..self.dir.len() {
            if self.way_is_pristine(i) {
                w.put_u8(0);
            } else {
                w.put_u8(1);
                self.dir[i].encode(w);
                self.data[i].encode(w);
                self.lru[i].encode(w);
            }
        }
        self.tick.encode(w);
    }

    /// Overwrites the arrays' simulated state from `r`; geometry must
    /// match.
    pub fn decode_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.expect_tag(0x32, "l2 arrays section")?;
        if usize::decode(r)? != self.sets || usize::decode(r)? != self.ways {
            return Err(SnapError::ConfigMismatch);
        }
        for i in 0..self.dir.len() {
            match r.get_u8()? {
                0 => {
                    self.dir[i] = DirEntry::default();
                    self.data[i] = LineData::zeroed();
                    self.lru[i] = 0;
                }
                1 => {
                    self.dir[i] = DirEntry::decode(r)?;
                    self.data[i] = LineData::decode(r)?;
                    self.lru[i] = u64::decode(r)?;
                }
                _ => return Err(SnapError::Corrupt("l2 way flag")),
            }
        }
        self.tick = u64::decode(r)?;
        Ok(())
    }
}
