//! SiFive-style inclusive last-level cache with the paper's `RootRelease`
//! support (§3.4, §5.5).
//!
//! The L2 is the coherence manager for all L1 data caches and the client of
//! main memory. It keeps a full-map directory (owner bitmask, exclusive
//! owner, dirty bit) with every line, enforces inclusion, and implements:
//!
//! * `Acquire` handling with recursive probes of other owners;
//! * voluntary `Release` handling (L1 evictions), including the
//!   release-vs-probe race;
//! * the paper's **`RootRelease{Flush,Clean}`** transactions: probe owners
//!   (all for flush; only a foreign write-permission owner for clean, §5.5),
//!   merge dirty data, write the line back to DRAM *only if dirty anywhere* —
//!   "the last level cache already catches and eliminates unnecessary
//!   writebacks by trivially checking its dirty bit" — then answer with
//!   `RootReleaseAck`;
//! * Skip It's `GrantData` vs `GrantDataDirty` selection from the L2 dirty
//!   bit (§6.1);
//! * a `ListBuffer` that defers TL-C requests that conflict with an active
//!   MSHR (§3.4).

pub mod arrays;
pub mod cache;
pub mod config;
pub mod stats;

pub use cache::{InclusiveCache, L2Ports};
pub use config::L2Config;
pub use stats::L2Stats;
