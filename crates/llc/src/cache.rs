//! The inclusive L2 transaction engine.
//!
//! Structure follows the SiFive inclusive cache of §3.4 / Fig. 4: TL-C
//! requests arrive through *SinkC* (here: per-core channel C links), are
//! allocated to MSHRs immediately or deferred through the *ListBuffer*;
//! probes go out on channel B; responses leave through *SourceD* (channel D);
//! DRAM traffic leaves through *SourceC* (the [`skipit_mem::Dram`] port).

use crate::arrays::L2Arrays;
use crate::config::L2Config;
use crate::stats::L2Stats;
use skipit_mem::{Dram, MemReq, MemResp};
use skipit_tilelink::perturb::L2_MSHR_SITE;
use skipit_tilelink::{
    AgentId, Cap, ChannelA, ChannelB, ChannelC, ChannelD, ChannelE, GrantFlavor, Grow, LineAddr,
    LineData, Link, PerturbConfig, Shrink, WritebackKind,
};
use skipit_trace::{TraceEvent, TraceSink};
use std::collections::VecDeque;

/// Channel endpoints the L2 drives each cycle, one link of each kind per
/// core, plus the memory port.
#[derive(Debug)]
pub struct L2Ports<'a> {
    /// Channel A from each core's L1.
    pub a: &'a mut [Link<ChannelA>],
    /// Channel B to each core's L1.
    pub b: &'a mut [Link<ChannelB>],
    /// Channel C from each core's L1.
    pub c: &'a mut [Link<ChannelC>],
    /// Channel D to each core's L1.
    pub d: &'a mut [Link<ChannelD>],
    /// Channel E from each core's L1.
    pub e: &'a mut [Link<ChannelE>],
    /// Main memory.
    pub mem: &'a mut Dram,
}

/// The request an L2 MSHR is serving.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum L2Req {
    Acquire {
        source: AgentId,
        grow: Grow,
    },
    RootRelease {
        source: AgentId,
        kind: WritebackKind,
        /// Dirty data carried by the request (merged at MSHR allocation).
        data: Option<LineData>,
    },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum L2MshrState {
    /// Directory/banked-store access latency.
    Access { until: u64 },
    /// Sending/awaiting probes that evict the inclusive victim.
    VictimProbe,
    /// Waiting to issue the dirty victim's DRAM write.
    VictimWrite,
    /// Waiting for the victim write's durability ack.
    VictimWriteWait,
    /// Waiting to issue the fill read.
    MemRead,
    /// Waiting for fill data.
    MemReadWait,
    /// Sending/awaiting probes of the request line's owners.
    OwnerProbe,
    /// RootRelease: waiting to issue the line's DRAM write.
    DramWrite,
    /// RootRelease: waiting for the durability ack.
    DramWriteWait,
    /// Ready to push the Grant / RootReleaseAck.
    SendResp,
    /// Grant pushed; waiting for the client's GrantAck.
    WaitGrantAck,
}

#[derive(Clone, Copy, Debug)]
struct L2Mshr {
    addr: LineAddr,
    req: L2Req,
    state: L2MshrState,
    /// Probes sent but not yet acknowledged.
    pending_acks: usize,
    /// Probe targets not yet sent (agent ids).
    to_probe: u32,
    /// Capability the outstanding probes demand.
    probe_cap: Cap,
    /// Reserved L2 way for the request line (Acquire fills).
    way: Option<usize>,
    /// Victim line being evicted for inclusion.
    victim: Option<LineAddr>,
    /// Token of the outstanding memory request.
    token: u64,
    /// Snapshot written by an in-flight RootRelease DRAM write; the dirty
    /// bit is cleared on completion only if the banked store still holds
    /// exactly this data (newer merges must stay dirty).
    wrote: Option<LineData>,
}

/// A TL-C request deferred because of an MSHR conflict or MSHR exhaustion
/// (the ListBuffer of §3.4).
#[derive(Clone, Copy, Debug)]
struct Deferred(ChannelC);

/// The inclusive L2 cache. See [module docs](self).
///
/// The L2 communicates with the L1s only through the [`L2Ports`] links —
/// no shared references into other components. Under the parallel wheel
/// engine the L2+DRAM slot steps serially *before* the parallel core phase
/// (its same-cycle effects are observable by the cores, exactly as in
/// serial engine order), so it is never stepped concurrently with anything;
/// the assertion below keeps it movable across host threads all the same.
#[derive(Debug)]
pub struct InclusiveCache {
    cfg: L2Config,
    arrays: L2Arrays,
    mshrs: Vec<Option<L2Mshr>>,
    /// Bitmask of occupied `mshrs` slots, so the per-cycle event scan walks
    /// only live transactions instead of the whole (mostly empty) array.
    occupied: u64,
    list_buffer: VecDeque<Deferred>,
    next_token: u64,
    stats: L2Stats,
    cores: usize,
    /// Event sink for MSHR allocation/retirement and §5.5 DRAM-write skips.
    sink: Option<TraceSink>,
    /// Adversarial MSHR-scheduling perturbation (None when rotation is off).
    perturb: Option<PerturbConfig>,
    /// Count of MSHR allocations; keys the rotation draw so it depends only
    /// on simulated state transitions, never on how often a cycle is probed.
    alloc_seq: u64,
}

/// Parallel-stepping audit: the L2 must be movable across host threads.
#[allow(dead_code)]
fn _assert_l2_send() {
    fn send<T: Send>() {}
    send::<InclusiveCache>();
}

impl InclusiveCache {
    /// Creates an L2 managing `cores` L1 clients.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation or `cores` is 0 or exceeds 32 (the
    /// directory owner bitmask width).
    pub fn new(cores: usize, cfg: L2Config) -> Self {
        cfg.validate();
        assert!((1..=32).contains(&cores), "1..=32 cores supported");
        assert!(cfg.mshrs <= 64, "occupancy bitmask is 64 bits wide");
        InclusiveCache {
            arrays: L2Arrays::new(&cfg),
            mshrs: vec![None; cfg.mshrs],
            occupied: 0,
            list_buffer: VecDeque::with_capacity(cfg.list_buffer_depth),
            next_token: 0,
            stats: L2Stats::default(),
            cores,
            sink: None,
            perturb: None,
            alloc_seq: 0,
            cfg,
        }
    }

    /// Enables seeded MSHR-scheduling perturbation: each allocation picks its
    /// slot starting from a pseudo-random rotation of the free-slot scan,
    /// which reorders the MSHR service walk relative to the deterministic
    /// lowest-free-slot policy. A no-op unless `cfg.mshr_rotation` is set.
    pub fn set_perturb(&mut self, cfg: PerturbConfig) {
        self.perturb = cfg.mshr_rotation.then_some(cfg);
    }

    /// Installs an event sink; MSHR lifecycle and §5.5 trivial-completion
    /// events emit through it.
    pub fn set_trace(&mut self, sink: TraceSink) {
        self.sink = Some(sink);
    }

    /// The installed event sink, if any.
    pub fn trace_sink(&self) -> Option<&TraceSink> {
        self.sink.as_ref()
    }

    /// Mutable access to the installed event sink (for clearing).
    pub fn trace_sink_mut(&mut self) -> Option<&mut TraceSink> {
        self.sink.as_mut()
    }

    /// Removes and returns the event sink.
    pub fn take_trace(&mut self) -> Option<TraceSink> {
        self.sink.take()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> L2Stats {
        self.stats
    }

    /// MSHRs currently live (telemetry gauge).
    pub fn mshr_occupancy(&self) -> usize {
        self.occupied.count_ones() as usize
    }

    /// Configuration.
    pub fn config(&self) -> &L2Config {
        &self.cfg
    }

    /// Whether no transaction is in flight (tests / quiesce detection).
    pub fn is_quiescent(&self) -> bool {
        self.mshrs.iter().all(Option::is_none) && self.list_buffer.is_empty()
    }

    /// Dirty bit of a resident line (`false` if absent) — test/debug helper.
    pub fn peek_dirty(&self, addr: LineAddr) -> bool {
        self.arrays
            .lookup(addr)
            .map(|w| self.arrays.dir(self.arrays.set_index(addr), w).dirty)
            .unwrap_or(false)
    }

    /// Whether a line is resident — test/debug helper.
    pub fn peek_valid(&self, addr: LineAddr) -> bool {
        self.arrays.lookup(addr).is_some()
    }

    /// Whether a line is resident *or* referenced by an active MSHR (as the
    /// transaction address or as an inclusive-eviction victim) — the
    /// invariant-oracle's notion of "the L2 still accounts for this line".
    /// Mid-transaction a line can be directory-invalid yet fully tracked
    /// (e.g. a victim between its last probe ack and the fill's
    /// re-installation); such a line is not an inclusion violation.
    pub fn peek_tracked(&self, addr: LineAddr) -> bool {
        self.peek_valid(addr) || self.mshr_conflict(addr)
    }

    fn mshr_conflict(&self, addr: LineAddr) -> bool {
        self.mshrs
            .iter()
            .flatten()
            .any(|m| m.addr == addr || m.victim == Some(addr))
    }

    /// First free MSHR slot under the current scan rotation. A pure function
    /// of simulated state (`alloc_seq` advances only when a slot is actually
    /// allocated), so repeated calls within a cycle — including the
    /// [`Self::can_accept_acquire`] pre-check — agree on the answer.
    fn free_mshr(&self) -> Option<usize> {
        let n = self.mshrs.len();
        let start = match self.perturb {
            Some(cfg) => cfg.draw(L2_MSHR_SITE, self.alloc_seq, n as u64 - 1) as usize,
            None => 0,
        };
        (0..n)
            .map(|k| (start + k) % n)
            .find(|&i| self.mshrs[i].is_none())
    }

    /// Whether an Acquire for `addr` arriving this cycle would be sunk into
    /// an MSHR (rather than left in the channel A link by back-pressure).
    /// The event-driven scheduler uses this to avoid busy-waiting on a
    /// blocked Acquire: the MSHR transition that clears the conflict is an
    /// event of its own.
    pub fn can_accept_acquire(&self, addr: LineAddr) -> bool {
        !self.mshr_conflict(addr) && self.free_mshr().is_some()
    }

    /// Conservative lower bound on the next cycle at which the L2 can change
    /// state on its own: directory-access completions, probe/response/DRAM
    /// issue work due now, or the memory controller's issue gate for MSHRs
    /// waiting to talk to DRAM. Wait states advanced only by TileLink or
    /// memory arrivals report nothing — the scheduler events those sources
    /// separately (channel C/E links, [`Dram::next_event`]).
    ///
    /// `b`/`d` are the outbound per-core links: a sender blocked on a full
    /// one is not an event (the L1's pop that frees the slot is evented
    /// through that link's head; the freed slot becomes usable at the next
    /// tick, which a re-evaluation then reports as `now`).
    pub fn next_event(
        &self,
        now: u64,
        mem: &Dram,
        b: &[Link<ChannelB>],
        d: &[Link<ChannelD>],
    ) -> Option<u64> {
        let mut next: Option<u64> = None;
        let mut merge = |t: u64| next = Some(next.map_or(t, |n| n.min(t)));
        let mut occ = self.occupied;
        while occ != 0 {
            let idx = occ.trailing_zeros() as usize;
            occ &= occ - 1;
            let m = self.mshrs[idx].as_ref().expect("occupied slot is live");
            match m.state {
                L2MshrState::Access { until } => {
                    if until <= now {
                        return Some(now);
                    }
                    merge(until);
                }
                L2MshrState::VictimProbe | L2MshrState::OwnerProbe => {
                    // A fully acknowledged phase completes this cycle; unsent
                    // probes progress iff some target's channel B has room.
                    // Outstanding acks arrive on channel C (evented
                    // separately).
                    if m.to_probe == 0 && m.pending_acks == 0 {
                        return Some(now);
                    }
                    if (0..self.cores).any(|a| m.to_probe & (1 << a) != 0 && b[a].can_push()) {
                        return Some(now);
                    }
                }
                // MemRead invalidates its victim unconditionally before
                // consulting the memory issue gate — that is progress even
                // while DRAM is busy.
                L2MshrState::MemRead if m.victim.is_some() => return Some(now),
                L2MshrState::VictimWrite | L2MshrState::MemRead | L2MshrState::DramWrite => {
                    let t = mem.next_accept(now);
                    if t <= now {
                        return Some(now);
                    }
                    merge(t);
                }
                L2MshrState::SendResp => {
                    let (L2Req::Acquire { source, .. } | L2Req::RootRelease { source, .. }) = m.req;
                    if d[source].can_push() {
                        return Some(now);
                    }
                }
                L2MshrState::VictimWriteWait
                | L2MshrState::MemReadWait
                | L2MshrState::DramWriteWait
                | L2MshrState::WaitGrantAck => {}
            }
        }
        if self
            .list_buffer
            .iter()
            .any(|&Deferred(msg)| self.can_accept_acquire(msg.addr()))
        {
            return Some(now);
        }
        next
    }

    /// Advances the L2 by one cycle.
    pub fn step(&mut self, now: u64, ports: &mut L2Ports<'_>) {
        self.drain_mem(now, ports);
        self.drain_grant_acks(now, ports);
        self.drain_channel_c(now, ports);
        self.drain_list_buffer(now);
        self.accept_acquires(now, ports);
        self.step_mshrs(now, ports);
    }

    fn drain_mem(&mut self, now: u64, ports: &mut L2Ports<'_>) {
        ports.mem.step(now);
        while let Some(resp) = ports.mem.pop_response() {
            let token = resp.token();
            let Some(idx) = self.mshrs.iter().position(|m| {
                m.as_ref().is_some_and(|m| {
                    m.token == token
                        && matches!(
                            m.state,
                            L2MshrState::MemReadWait
                                | L2MshrState::VictimWriteWait
                                | L2MshrState::DramWriteWait
                        )
                })
            }) else {
                panic!("memory response with unknown token {token}");
            };
            let m = self.mshrs[idx].as_mut().expect("checked");
            match (resp, m.state) {
                (MemResp::ReadDone { data, .. }, L2MshrState::MemReadWait) => {
                    let way = m.way.expect("fill way reserved");
                    self.arrays.install(m.addr, way, data);
                    self.stats.mem_fills += 1;
                    // A fresh fill has no owners to probe.
                    self.mshrs[idx].as_mut().expect("checked").state = L2MshrState::SendResp;
                }
                (MemResp::WriteDone { .. }, L2MshrState::VictimWriteWait) => {
                    m.state = L2MshrState::MemRead;
                }
                (MemResp::WriteDone { .. }, L2MshrState::DramWriteWait) => {
                    // The written snapshot is durable; clear the dirty bit
                    // (§5.5) — unless newer dirty data was merged into the
                    // banked store while the write was in flight (a deferred
                    // same-line RootRelease's arrival merge): that data
                    // still needs its own trip.
                    if let Some(w) = self.arrays.lookup(m.addr) {
                        let set = self.arrays.set_index(m.addr);
                        if m.wrote == Some(self.arrays.line(set, w)) {
                            self.arrays.dir_mut(set, w).dirty = false;
                        }
                    }
                    m.state = L2MshrState::SendResp;
                }
                (resp, state) => panic!("memory response {resp:?} in state {state:?}"),
            }
        }
    }

    fn drain_grant_acks(&mut self, now: u64, ports: &mut L2Ports<'_>) {
        for core in 0..self.cores {
            while let Some(ChannelE::GrantAck { addr, .. }) = ports.e[core].pop(now) {
                let Some(idx) = self.mshrs.iter().position(|m| {
                    m.as_ref()
                        .is_some_and(|m| m.addr == addr && m.state == L2MshrState::WaitGrantAck)
                }) else {
                    panic!("GrantAck for {addr:?} without a waiting MSHR");
                };
                skipit_trace::trace!(
                    self.sink,
                    now,
                    TraceEvent::L2MshrFree {
                        slot: idx,
                        addr: addr.base(),
                    }
                );
                self.mshrs[idx] = None;
                self.occupied &= !(1 << idx);
            }
        }
    }

    fn drain_channel_c(&mut self, now: u64, ports: &mut L2Ports<'_>) {
        for core in 0..self.cores {
            // Process every arrived message unless the ListBuffer would
            // overflow (back-pressure stays in the link).
            // Not a `while let`: RootRelease may leave its message in the
            // link (back-pressure) and break out explicitly.
            #[allow(clippy::while_let_loop)]
            loop {
                let Some(&msg) = ports.c[core].peek(now) else {
                    break;
                };
                match msg {
                    ChannelC::ProbeAck {
                        source,
                        addr,
                        shrink,
                        data,
                    } => {
                        ports.c[core].pop(now);
                        self.handle_probe_ack(source, addr, shrink, data);
                    }
                    ChannelC::Release {
                        source,
                        addr,
                        shrink,
                        data,
                    } => {
                        ports.c[core].pop(now);
                        self.handle_release(source, addr, shrink, data);
                        ports.d[core].push(
                            now,
                            ChannelD::ReleaseAck {
                                target: source,
                                addr,
                                root: false,
                            },
                        );
                    }
                    ChannelC::RootRelease {
                        source,
                        addr,
                        kind,
                        data,
                    } => {
                        // §5.5: "If it contains dirty data, it is
                        // simultaneously written back to the BankedStore"
                        // — immediately on arrival, even if the request is
                        // buffered, so a racing Acquire can never grant
                        // stale data. The requester's directory state is
                        // updated at the same moment (a flush self-
                        // invalidated before sending).
                        let mut msg = msg;
                        if let Some(w) = self.arrays.lookup(addr) {
                            let set = self.arrays.set_index(addr);
                            if let Some(d) = data {
                                self.arrays.set_line(set, w, d);
                                self.arrays.dir_mut(set, w).dirty = true;
                                msg = ChannelC::RootRelease {
                                    source,
                                    addr,
                                    kind,
                                    data: None,
                                };
                            }
                            if kind.invalidates() {
                                self.arrays.dir_mut(set, w).remove_owner(source);
                            } else if data.is_some() {
                                // Clean with data: the requester's copy is
                                // now clean; it keeps ownership.
                            }
                        }
                        if !self.mshr_conflict(addr) {
                            if let Some(slot) = self.free_mshr() {
                                ports.c[core].pop(now);
                                self.allocate_root_release(now, slot, msg);
                                continue;
                            }
                        }
                        if self.list_buffer.len() < self.cfg.list_buffer_depth {
                            ports.c[core].pop(now);
                            self.list_buffer.push_back(Deferred(msg));
                            self.stats.list_buffered += 1;
                        }
                        // ListBuffer full: leave the message in the link.
                        break;
                    }
                }
            }
        }
    }

    fn drain_list_buffer(&mut self, now: u64) {
        // Schedule the first deferred request whose conflict has cleared.
        let mut i = 0;
        while i < self.list_buffer.len() {
            let Deferred(msg) = self.list_buffer[i];
            let addr = msg.addr();
            if !self.mshr_conflict(addr) {
                if let Some(slot) = self.free_mshr() {
                    self.list_buffer.remove(i);
                    self.allocate_root_release(now, slot, msg);
                    continue;
                }
                break; // no free MSHRs; try again next cycle
            }
            i += 1;
        }
    }

    fn handle_probe_ack(
        &mut self,
        source: AgentId,
        addr: LineAddr,
        shrink: Shrink,
        data: Option<LineData>,
    ) {
        // Update the directory with the client's transition.
        if let Some(w) = self.arrays.lookup(addr) {
            let set = self.arrays.set_index(addr);
            if let Some(d) = data {
                self.arrays.set_line(set, w, d);
                self.arrays.dir_mut(set, w).dirty = true;
            }
            let e = self.arrays.dir_mut(set, w);
            if !shrink.keeps_copy() {
                e.remove_owner(source);
            } else if !shrink.keeps_trunk() && e.trunk == Some(source) {
                e.trunk = None;
            }
        }
        // Route to the waiting MSHR: probes for a line come from exactly one
        // MSHR (per-line conflict serialization).
        let Some(m) = self
            .mshrs
            .iter_mut()
            .flatten()
            .find(|m| (m.addr == addr || m.victim == Some(addr)) && m.pending_acks > 0)
        else {
            panic!("ProbeAck for {addr:?} with no probing MSHR");
        };
        m.pending_acks -= 1;
    }

    fn handle_release(
        &mut self,
        source: AgentId,
        addr: LineAddr,
        shrink: Shrink,
        data: Option<LineData>,
    ) {
        self.stats.releases += 1;
        let Some(w) = self.arrays.lookup(addr) else {
            // Inclusion means a released line is resident — unless the race
            // window where we just evicted it (the client's release crossed
            // our victim probe). Data, if any, was already captured by the
            // ProbeAck path of the victim flow; a voluntary release with
            // dirty data for a non-resident line cannot occur because the
            // victim flow waits for all acks before invalidating.
            assert!(
                data.is_none(),
                "dirty Release for non-resident line {addr:?}"
            );
            return;
        };
        let set = self.arrays.set_index(addr);
        if let Some(d) = data {
            self.arrays.set_line(set, w, d);
            self.arrays.dir_mut(set, w).dirty = true;
        }
        let e = self.arrays.dir_mut(set, w);
        if !shrink.keeps_copy() {
            e.remove_owner(source);
        } else if !shrink.keeps_trunk() && e.trunk == Some(source) {
            e.trunk = None;
        }
    }

    fn accept_acquires(&mut self, now: u64, ports: &mut L2Ports<'_>) {
        for core in 0..self.cores {
            let Some(&ChannelA::AcquireBlock { source, addr, grow }) = ports.a[core].peek(now)
            else {
                continue;
            };
            if self.mshr_conflict(addr) {
                continue;
            }
            let Some(slot) = self.free_mshr() else {
                return;
            };
            ports.a[core].pop(now);
            self.occupied |= 1 << slot;
            self.alloc_seq += 1;
            skipit_trace::trace!(
                self.sink,
                now,
                TraceEvent::L2MshrAlloc {
                    slot,
                    addr: addr.base(),
                    op: "Acquire",
                }
            );
            self.mshrs[slot] = Some(L2Mshr {
                addr,
                req: L2Req::Acquire { source, grow },
                state: L2MshrState::Access {
                    until: now + self.cfg.access_latency,
                },
                pending_acks: 0,
                to_probe: 0,
                probe_cap: Cap::ToN,
                way: None,
                victim: None,
                token: u64::MAX,
                wrote: None,
            });
        }
    }

    fn allocate_root_release(&mut self, now: u64, slot: usize, msg: ChannelC) {
        let ChannelC::RootRelease {
            source,
            addr,
            kind,
            data,
        } = msg
        else {
            panic!("ListBuffer held a non-RootRelease message: {msg:?}");
        };
        self.occupied |= 1 << slot;
        self.alloc_seq += 1;
        skipit_trace::trace!(
            self.sink,
            now,
            TraceEvent::L2MshrAlloc {
                slot,
                addr: addr.base(),
                op: "RootRelease",
            }
        );
        self.mshrs[slot] = Some(L2Mshr {
            addr,
            req: L2Req::RootRelease { source, kind, data },
            state: L2MshrState::Access {
                until: now + self.cfg.access_latency,
            },
            pending_acks: 0,
            to_probe: 0,
            probe_cap: Cap::ToN,
            way: None,
            victim: None,
            token: u64::MAX,
            wrote: None,
        });
    }

    fn step_mshrs(&mut self, now: u64, ports: &mut L2Ports<'_>) {
        for idx in 0..self.mshrs.len() {
            let Some(m) = self.mshrs[idx] else { continue };
            match m.state {
                L2MshrState::Access { until } => {
                    if now >= until {
                        self.plan(now, idx);
                    }
                }
                L2MshrState::VictimProbe | L2MshrState::OwnerProbe => {
                    self.send_probes(now, idx, ports);
                    let m = self.mshrs[idx].as_mut().expect("active");
                    if m.to_probe == 0 && m.pending_acks == 0 {
                        self.probes_complete(now, idx);
                    }
                }
                L2MshrState::VictimWrite => {
                    if ports.mem.can_accept(now) {
                        let m = self.mshrs[idx].as_mut().expect("active");
                        let victim = m.victim.expect("victim set");
                        let set = self.arrays.set_index(victim);
                        let Some(w) = self.arrays.lookup(victim) else {
                            // Vanished between VictimProbe and here (another
                            // transaction wrote it out): skip to the fill.
                            m.state = L2MshrState::MemRead;
                            continue;
                        };
                        let data = self.arrays.line(set, w);
                        let token = self.next_token;
                        self.next_token += 1;
                        m.token = token;
                        m.state = L2MshrState::VictimWriteWait;
                        ports.mem.request(
                            now,
                            MemReq::Write {
                                addr: victim,
                                data,
                                token,
                            },
                        );
                        self.stats.dirty_evictions += 1;
                    }
                }
                L2MshrState::MemRead => {
                    // The victim (if any) is finished with: invalidate it so
                    // the fill can take the way.
                    if let Some(victim) = m.victim {
                        if let Some(w) = self.arrays.lookup(victim) {
                            let set = self.arrays.set_index(victim);
                            let e = self.arrays.dir_mut(set, w);
                            e.valid = false;
                            e.dirty = false;
                            e.owners = 0;
                            e.trunk = None;
                        }
                        self.mshrs[idx].as_mut().expect("active").victim = None;
                    }
                    if ports.mem.can_accept(now) {
                        let token = self.next_token;
                        self.next_token += 1;
                        let m = self.mshrs[idx].as_mut().expect("active");
                        m.token = token;
                        m.state = L2MshrState::MemReadWait;
                        ports.mem.request(
                            now,
                            MemReq::Read {
                                addr: m.addr,
                                token,
                            },
                        );
                    }
                }
                L2MshrState::DramWrite => {
                    if ports.mem.can_accept(now) {
                        // Resident: banked-store contents. Not resident (the
                        // eviction race): the data carried by the request.
                        let data = match self.arrays.lookup(m.addr) {
                            Some(w) => self.arrays.line(self.arrays.set_index(m.addr), w),
                            None => match m.req {
                                L2Req::RootRelease { data: Some(d), .. } => d,
                                _ => panic!("DramWrite for non-resident {:?} without data", m.addr),
                            },
                        };
                        let token = self.next_token;
                        self.next_token += 1;
                        let mm = self.mshrs[idx].as_mut().expect("active");
                        mm.token = token;
                        mm.wrote = Some(data);
                        mm.state = L2MshrState::DramWriteWait;
                        ports.mem.request(
                            now,
                            MemReq::Write {
                                addr: m.addr,
                                data,
                                token,
                            },
                        );
                        self.stats.root_release_dram_writes += 1;
                    }
                }
                L2MshrState::SendResp => self.send_response(now, idx, ports),
                L2MshrState::VictimWriteWait
                | L2MshrState::MemReadWait
                | L2MshrState::DramWriteWait
                | L2MshrState::WaitGrantAck => {}
            }
        }
    }

    /// First directory decision after the access latency.
    fn plan(&mut self, now: u64, idx: usize) {
        let m = self.mshrs[idx].expect("active");
        match m.req {
            L2Req::Acquire { source, grow } => {
                if let Some(w) = self.arrays.lookup(m.addr) {
                    let set = self.arrays.set_index(m.addr);
                    self.arrays.dir_mut(set, w).reserved = true;
                    self.arrays.touch(set, w);
                    let e = *self.arrays.dir(set, w);
                    let mm = self.mshrs[idx].as_mut().expect("active");
                    mm.way = Some(w);
                    // Probe strategy (§2.2): writes revoke every other copy;
                    // reads only downgrade a foreign Trunk owner.
                    let (targets, cap) = if grow.wants_write() {
                        (e.owners & !(1 << source), Cap::ToN)
                    } else if let Some(t) = e.trunk.filter(|&t| t != source) {
                        (1 << t, Cap::ToB)
                    } else {
                        (0, Cap::ToB)
                    };
                    mm.to_probe = targets;
                    mm.probe_cap = cap;
                    mm.state = L2MshrState::OwnerProbe;
                } else {
                    // Miss: reserve a way, evicting inclusively if needed.
                    let Some(w) = self.arrays.victim_way(m.addr) else {
                        return; // every way reserved; retry next cycle
                    };
                    let set = self.arrays.set_index(m.addr);
                    let victim_entry = *self.arrays.dir(set, w);
                    if victim_entry.valid && self.mshr_conflict(self.arrays.addr_of(set, w)) {
                        // The candidate victim is mid-transaction in another
                        // MSHR (e.g. a RootRelease about to invalidate it);
                        // retry once that transaction completes.
                        return;
                    }
                    self.arrays.dir_mut(set, w).reserved = true;
                    let mm = self.mshrs[idx].as_mut().expect("active");
                    mm.way = Some(w);
                    if victim_entry.valid {
                        let victim = self.arrays.addr_of(set, w);
                        mm.victim = Some(victim);
                        mm.to_probe = victim_entry.owners;
                        mm.probe_cap = Cap::ToN;
                        mm.state = L2MshrState::VictimProbe;
                        self.stats.evictions += 1;
                    } else {
                        mm.state = L2MshrState::MemRead;
                    }
                }
            }
            L2Req::RootRelease { source, kind, data } => {
                let resident = self.arrays.lookup(m.addr);
                if let Some(w) = resident {
                    let set = self.arrays.set_index(m.addr);
                    if let Some(d) = data {
                        // Dirty data travels with the request and is written
                        // to the BankedStore (§5.5).
                        self.arrays.set_line(set, w, d);
                        self.arrays.dir_mut(set, w).dirty = true;
                    }
                    if kind == WritebackKind::Flush {
                        // The requester invalidated its own copy before
                        // sending (§5.2 meta_write).
                        self.arrays.dir_mut(set, w).remove_owner(source);
                    } else if data.is_some() {
                        // Clean: the requester keeps the (now clean) copy;
                        // it no longer holds dirty data but retains Trunk.
                    }
                    let e = *self.arrays.dir(set, w);
                    // Probe strategy of §5.5: flush revokes every remaining
                    // owner; clean only downgrades a *foreign* write-
                    // permission owner.
                    let (targets, cap) = match kind {
                        WritebackKind::Flush | WritebackKind::Inval => (e.owners, Cap::ToN),
                        WritebackKind::Clean => {
                            if let Some(t) = e.trunk.filter(|&t| t != source) {
                                (1u32 << t, Cap::ToB)
                            } else {
                                (0, Cap::ToB)
                            }
                        }
                    };
                    let mm = self.mshrs[idx].as_mut().expect("active");
                    mm.to_probe = targets;
                    mm.probe_cap = cap;
                    mm.state = L2MshrState::OwnerProbe;
                } else if data.is_some() {
                    // Not resident but carrying dirty data: the L2 evicted
                    // the line while this RootRelease was in flight (the
                    // victim probe crossed it on the wire). The carried data
                    // is newer than the eviction's writeback — send it
                    // straight to DRAM.
                    self.mshrs[idx].as_mut().expect("active").state = L2MshrState::DramWrite;
                } else {
                    // Not resident, no data ⇒ (inclusion) no L1 holds it
                    // dirty ⇒ memory is already up to date: trivially
                    // complete (§5.5).
                    self.stats.root_release_dram_skipped += 1;
                    skipit_trace::trace!(
                        self.sink,
                        now,
                        TraceEvent::DramWriteSkipped {
                            addr: m.addr.base()
                        }
                    );
                    self.mshrs[idx].as_mut().expect("active").state = L2MshrState::SendResp;
                }
            }
        }
    }

    fn send_probes(&mut self, now: u64, idx: usize, ports: &mut L2Ports<'_>) {
        let m = self.mshrs[idx].as_mut().expect("active");
        let addr = m.victim.unwrap_or(m.addr);
        for a in 0..self.cores {
            if m.to_probe & (1 << a) == 0 {
                continue;
            }
            if !ports.b[a].can_push() {
                continue;
            }
            ports.b[a].push(
                now,
                ChannelB::Probe {
                    target: a,
                    addr,
                    cap: m.probe_cap,
                },
            );
            m.to_probe &= !(1 << a);
            m.pending_acks += 1;
            self.stats.probes_sent += 1;
        }
    }

    /// All probes for the current phase acknowledged.
    fn probes_complete(&mut self, now: u64, idx: usize) {
        let m = self.mshrs[idx].expect("active");
        match m.state {
            L2MshrState::VictimProbe => {
                let victim = m.victim.expect("victim set");
                // The victim may have been removed by a concurrent
                // transaction while we probed; nothing left to write back.
                let dirty = self
                    .arrays
                    .lookup(victim)
                    .is_some_and(|w| self.arrays.dir(self.arrays.set_index(victim), w).dirty);
                self.mshrs[idx].as_mut().expect("active").state = if dirty {
                    L2MshrState::VictimWrite
                } else {
                    L2MshrState::MemRead
                };
            }
            L2MshrState::OwnerProbe => {
                let mm = self.mshrs[idx].as_mut().expect("active");
                match mm.req {
                    L2Req::Acquire { .. } => mm.state = L2MshrState::SendResp,
                    L2Req::RootRelease { kind, .. } => {
                        let set = self.arrays.set_index(m.addr);
                        let w = self.arrays.lookup(m.addr).expect("resident");
                        let dirty = self.arrays.dir(set, w).dirty;
                        // "The last level cache already catches and
                        // eliminates unnecessary writebacks by trivially
                        // checking its dirty bit" (§5.5). CBO.INVAL never
                        // writes back — collected dirty data is discarded.
                        if dirty && kind.writes_back() {
                            mm.state = L2MshrState::DramWrite;
                        } else {
                            if kind.writes_back() {
                                self.stats.root_release_dram_skipped += 1;
                                skipit_trace::trace!(
                                    self.sink,
                                    now,
                                    TraceEvent::DramWriteSkipped {
                                        addr: m.addr.base()
                                    }
                                );
                            }
                            mm.state = L2MshrState::SendResp;
                        }
                    }
                }
            }
            other => panic!("probes_complete in state {other:?}"),
        }
    }

    fn send_response(&mut self, now: u64, idx: usize, ports: &mut L2Ports<'_>) {
        let m = self.mshrs[idx].expect("active");
        match m.req {
            L2Req::Acquire { source, grow } => {
                if !ports.d[source].can_push() {
                    return;
                }
                let set = self.arrays.set_index(m.addr);
                let w = m.way.expect("way reserved");
                let e = *self.arrays.dir(set, w);
                let others = e.owners & !(1 << source);
                // Grant Trunk for writes, and opportunistically for sole
                // readers (MESI Exclusive).
                let is_trunk = grow.wants_write() || others == 0;
                let flavor = if e.dirty {
                    GrantFlavor::Dirty
                } else {
                    GrantFlavor::Clean
                };
                ports.d[source].push(
                    now,
                    ChannelD::Grant {
                        target: source,
                        addr: m.addr,
                        is_trunk,
                        data: self.arrays.line(set, w),
                        flavor,
                    },
                );
                let e = self.arrays.dir_mut(set, w);
                e.add_owner(source, is_trunk);
                if !is_trunk && e.trunk == Some(source) {
                    e.trunk = None;
                }
                e.reserved = false;
                self.stats.acquires += 1;
                match flavor {
                    GrantFlavor::Clean => self.stats.grants_clean += 1,
                    GrantFlavor::Dirty => self.stats.grants_dirty += 1,
                }
                self.mshrs[idx].as_mut().expect("active").state = L2MshrState::WaitGrantAck;
            }
            L2Req::RootRelease { source, kind, .. } => {
                if !ports.d[source].can_push() {
                    return;
                }
                // A flush or inval removes the line from the whole coherent
                // hierarchy (§2.6) — unless a racing same-line RootRelease
                // merged newer dirty data while we completed (it sits
                // deferred in the ListBuffer and needs the entry to survive
                // until its own writeback; the invalidation is then its
                // job).
                if kind.invalidates() {
                    if let Some(w) = self.arrays.lookup(m.addr) {
                        let set = self.arrays.set_index(m.addr);
                        let keep_dirty = kind.writes_back() && self.arrays.dir(set, w).dirty;
                        if !keep_dirty {
                            let e = self.arrays.dir_mut(set, w);
                            debug_assert_eq!(e.owners, 0, "flush left owners behind");
                            e.valid = false;
                            e.dirty = false;
                            e.trunk = None;
                        }
                    }
                }
                ports.d[source].push(
                    now,
                    ChannelD::ReleaseAck {
                        target: source,
                        addr: m.addr,
                        root: true,
                    },
                );
                match kind {
                    WritebackKind::Flush => self.stats.root_release_flush += 1,
                    WritebackKind::Clean => self.stats.root_release_clean += 1,
                    WritebackKind::Inval => self.stats.root_release_inval += 1,
                }
                skipit_trace::trace!(
                    self.sink,
                    now,
                    TraceEvent::L2MshrFree {
                        slot: idx,
                        addr: m.addr.base(),
                    }
                );
                self.mshrs[idx] = None;
                self.occupied &= !(1 << idx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipit_mem::DramConfig;

    struct Harness {
        l2: InclusiveCache,
        a: Vec<Link<ChannelA>>,
        b: Vec<Link<ChannelB>>,
        c: Vec<Link<ChannelC>>,
        d: Vec<Link<ChannelD>>,
        e: Vec<Link<ChannelE>>,
        mem: Dram,
        now: u64,
    }

    impl Harness {
        fn new(cores: usize) -> Self {
            Harness {
                l2: InclusiveCache::new(cores, L2Config::default()),
                a: (0..cores).map(|_| Link::new(1, 8)).collect(),
                b: (0..cores).map(|_| Link::new(1, 8)).collect(),
                c: (0..cores).map(|_| Link::new(1, 8)).collect(),
                d: (0..cores).map(|_| Link::new(1, 8)).collect(),
                e: (0..cores).map(|_| Link::new(1, 8)).collect(),
                mem: Dram::new(DramConfig {
                    read_latency: 10,
                    write_latency: 10,
                    issue_interval: 1,
                }),
                now: 0,
            }
        }

        fn step(&mut self) {
            let mut ports = L2Ports {
                a: &mut self.a,
                b: &mut self.b,
                c: &mut self.c,
                d: &mut self.d,
                e: &mut self.e,
                mem: &mut self.mem,
            };
            self.l2.step(self.now, &mut ports);
            self.now += 1;
        }

        /// Steps until core `core` receives a D message, auto-answering any
        /// probes with `probe_reply`.
        fn await_d(
            &mut self,
            core: usize,
            mut probe_reply: impl FnMut(ChannelB) -> ChannelC,
        ) -> ChannelD {
            for _ in 0..500 {
                self.step();
                for b_core in 0..self.b.len() {
                    while let Some(p) = self.b[b_core].pop(self.now) {
                        let reply = probe_reply(p);
                        self.c[b_core].push(self.now, reply);
                    }
                }
                if let Some(msg) = self.d[core].pop(self.now) {
                    return msg;
                }
            }
            panic!("no D response for core {core}");
        }

        fn acquire(&mut self, core: usize, addr: LineAddr, grow: Grow) -> ChannelD {
            self.a[core].push(
                self.now,
                ChannelA::AcquireBlock {
                    source: core,
                    addr,
                    grow,
                },
            );
            let resp = self.await_d(core, |p| {
                let ChannelB::Probe { target, addr, cap } = p;
                ChannelC::ProbeAck {
                    source: target,
                    addr,
                    shrink: match cap {
                        Cap::ToN => Shrink::BtoN,
                        Cap::ToB => Shrink::TtoB,
                        Cap::ToT => Shrink::TtoT,
                    },
                    data: None,
                }
            });
            self.e[core].push(self.now, ChannelE::GrantAck { source: core, addr });
            self.step();
            self.step();
            resp
        }

        fn root_release(
            &mut self,
            core: usize,
            addr: LineAddr,
            kind: WritebackKind,
            data: Option<LineData>,
        ) -> ChannelD {
            self.c[core].push(
                self.now,
                ChannelC::RootRelease {
                    source: core,
                    addr,
                    kind,
                    data,
                },
            );
            self.await_d(core, |p| {
                let ChannelB::Probe { target, addr, cap } = p;
                ChannelC::ProbeAck {
                    source: target,
                    addr,
                    shrink: match cap {
                        Cap::ToN => Shrink::BtoN,
                        Cap::ToB => Shrink::BtoB,
                        Cap::ToT => Shrink::TtoT,
                    },
                    data: None,
                }
            })
        }
    }

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n * 64)
    }

    fn data(seed: u64) -> LineData {
        let mut d = LineData::zeroed();
        d.set_word(0, seed);
        d
    }

    #[test]
    fn acquire_miss_fills_from_memory_and_grants_trunk() {
        let mut h = Harness::new(1);
        h.mem.write_direct(line(5), data(77));
        let resp = h.acquire(0, line(5), Grow::NtoB);
        match resp {
            ChannelD::Grant {
                is_trunk,
                data: d,
                flavor,
                ..
            } => {
                assert!(is_trunk, "sole reader gets Exclusive");
                assert_eq!(d.word(0), 77);
                assert_eq!(flavor, GrantFlavor::Clean, "fresh fill is persisted");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(h.l2.stats().mem_fills, 1);
        assert!(h.l2.is_quiescent());
    }

    #[test]
    fn second_reader_gets_branch() {
        let mut h = Harness::new(2);
        h.acquire(0, line(5), Grow::NtoB);
        let resp = h.acquire(1, line(5), Grow::NtoB);
        match resp {
            ChannelD::Grant { is_trunk, .. } => {
                assert!(!is_trunk, "second sharer must get Branch")
            }
            other => panic!("unexpected {other:?}"),
        }
        // Core 0 held Trunk (E) → must have been probed ToB.
        assert!(h.l2.stats().probes_sent >= 1);
    }

    #[test]
    fn write_acquire_revokes_other_owner() {
        let mut h = Harness::new(2);
        h.acquire(0, line(9), Grow::NtoB);
        let resp = h.acquire(1, line(9), Grow::NtoT);
        match resp {
            ChannelD::Grant { is_trunk, .. } => assert!(is_trunk),
            other => panic!("unexpected {other:?}"),
        }
        assert!(h.l2.stats().probes_sent >= 1);
    }

    #[test]
    fn root_release_clean_with_data_writes_dram_and_keeps_line() {
        let mut h = Harness::new(1);
        h.acquire(0, line(7), Grow::NtoT);
        let resp = h.root_release(0, line(7), WritebackKind::Clean, Some(data(42)));
        assert!(matches!(resp, ChannelD::ReleaseAck { root: true, .. }));
        assert_eq!(h.mem.read_direct(line(7)), data(42), "data must be durable");
        assert!(h.l2.peek_valid(line(7)), "clean keeps the L2 copy");
        assert!(!h.l2.peek_dirty(line(7)));
        assert_eq!(h.l2.stats().root_release_clean, 1);
        assert_eq!(h.l2.stats().root_release_dram_writes, 1);
    }

    #[test]
    fn root_release_flush_invalidates_l2_copy() {
        let mut h = Harness::new(1);
        h.acquire(0, line(8), Grow::NtoT);
        let resp = h.root_release(0, line(8), WritebackKind::Flush, Some(data(13)));
        assert!(matches!(resp, ChannelD::ReleaseAck { root: true, .. }));
        assert_eq!(h.mem.read_direct(line(8)), data(13));
        assert!(!h.l2.peek_valid(line(8)), "flush removes the L2 copy");
        assert_eq!(h.l2.stats().root_release_flush, 1);
    }

    #[test]
    fn redundant_root_release_trivially_skips_dram() {
        let mut h = Harness::new(1);
        h.acquire(0, line(7), Grow::NtoT);
        h.root_release(0, line(7), WritebackKind::Clean, Some(data(1)));
        let writes_before = h.mem.stats().writes;
        // Second clean: nothing dirty anywhere → no DRAM write (§5.5).
        h.root_release(0, line(7), WritebackKind::Clean, None);
        assert_eq!(h.mem.stats().writes, writes_before);
        assert_eq!(h.l2.stats().root_release_dram_skipped, 1);
    }

    #[test]
    fn root_release_for_unknown_line_acks_without_memory_traffic() {
        let mut h = Harness::new(1);
        let resp = h.root_release(0, line(100), WritebackKind::Flush, None);
        assert!(matches!(resp, ChannelD::ReleaseAck { root: true, .. }));
        assert_eq!(h.mem.stats().writes, 0);
        assert_eq!(h.l2.stats().root_release_dram_skipped, 1);
    }

    #[test]
    fn grant_flavor_tracks_l2_dirty_bit() {
        let mut h = Harness::new(2);
        // Core 0 writes the line and evicts it dirty into L2.
        h.acquire(0, line(3), Grow::NtoT);
        h.c[0].push(
            h.now,
            ChannelC::Release {
                source: 0,
                addr: line(3),
                shrink: Shrink::TtoN,
                data: Some(data(9)),
            },
        );
        // Wait for the ReleaseAck.
        let ack = h.await_d(0, |_| panic!("no probes expected"));
        assert!(matches!(ack, ChannelD::ReleaseAck { root: false, .. }));
        assert!(h.l2.peek_dirty(line(3)));
        // Core 1 acquires: line is dirty in L2 → GrantDataDirty (§6.1).
        let resp = h.acquire(1, line(3), Grow::NtoB);
        match resp {
            ChannelD::Grant {
                flavor, data: d, ..
            } => {
                assert_eq!(flavor, GrantFlavor::Dirty);
                assert_eq!(d.word(0), 9);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(h.l2.stats().grants_dirty, 1);
    }

    #[test]
    fn release_updates_directory_and_data() {
        let mut h = Harness::new(1);
        h.acquire(0, line(4), Grow::NtoT);
        h.c[0].push(
            h.now,
            ChannelC::Release {
                source: 0,
                addr: line(4),
                shrink: Shrink::TtoN,
                data: Some(data(5)),
            },
        );
        let ack = h.await_d(0, |_| panic!("no probes expected"));
        assert!(matches!(ack, ChannelD::ReleaseAck { root: false, .. }));
        assert!(h.l2.peek_dirty(line(4)));
        assert_eq!(h.l2.stats().releases, 1);
    }

    #[test]
    fn inclusive_eviction_probes_owner_and_writes_back() {
        // Tiny L2 (2 sets × 1 way) forces an eviction on the second line.
        let mut h = Harness {
            l2: InclusiveCache::new(
                1,
                L2Config {
                    sets: 2,
                    ways: 1,
                    ..L2Config::default()
                },
            ),
            ..Harness::new(1)
        };
        h.acquire(0, line(0), Grow::NtoT);
        // Same set (stride 2 lines), forces eviction of line 0, which core 0
        // owns dirty: the probe reply carries data.
        h.a[0].push(
            h.now,
            ChannelA::AcquireBlock {
                source: 0,
                addr: line(2),
                grow: Grow::NtoT,
            },
        );
        let resp = h.await_d(0, |p| {
            let ChannelB::Probe { target, addr, cap } = p;
            assert_eq!(addr, line(0), "victim line must be probed");
            assert_eq!(cap, Cap::ToN);
            ChannelC::ProbeAck {
                source: target,
                addr,
                shrink: Shrink::TtoN,
                data: Some(data(66)),
            }
        });
        assert!(matches!(resp, ChannelD::Grant { .. }));
        assert_eq!(h.mem.read_direct(line(0)), data(66));
        assert_eq!(h.l2.stats().evictions, 1);
        assert_eq!(h.l2.stats().dirty_evictions, 1);
    }

    #[test]
    fn conflicting_root_release_defers_to_list_buffer() {
        let mut h = Harness::new(2);
        h.acquire(0, line(6), Grow::NtoT);
        // Start an acquire from core 1 (will probe core 0) but do not answer
        // the probe yet; meanwhile a RootRelease for the same line arrives.
        h.a[1].push(
            h.now,
            ChannelA::AcquireBlock {
                source: 1,
                addr: line(6),
                grow: Grow::NtoB,
            },
        );
        for _ in 0..30 {
            h.step();
        }
        h.c[0].push(
            h.now,
            ChannelC::RootRelease {
                source: 0,
                addr: line(6),
                kind: WritebackKind::Clean,
                data: None,
            },
        );
        for _ in 0..10 {
            h.step();
        }
        assert_eq!(h.l2.stats().list_buffered, 1);
        // Now answer the probe; both transactions must complete.
        while let Some(ChannelB::Probe { target, addr, .. }) = h.b[0].pop(h.now) {
            h.c[0].push(
                h.now,
                ChannelC::ProbeAck {
                    source: target,
                    addr,
                    shrink: Shrink::TtoB,
                    data: Some(data(2)),
                },
            );
        }
        let g = h.await_d(1, |_| panic!("probe already answered"));
        assert!(matches!(g, ChannelD::Grant { .. }));
        h.e[1].push(
            h.now,
            ChannelE::GrantAck {
                source: 1,
                addr: line(6),
            },
        );
        let ack = h.await_d(0, |p| {
            let ChannelB::Probe { target, addr, cap } = p;
            ChannelC::ProbeAck {
                source: target,
                addr,
                shrink: match cap {
                    Cap::ToB => Shrink::BtoB,
                    Cap::ToN => Shrink::BtoN,
                    Cap::ToT => Shrink::TtoT,
                },
                data: None,
            }
        });
        assert!(matches!(ack, ChannelD::ReleaseAck { root: true, .. }));
    }
}

// --- snapshot codec (DESIGN.md §11) ---

use skipit_snap::{Codec, SnapError, SnapReader, SnapWriter};

impl Codec for L2Req {
    fn encode(&self, w: &mut SnapWriter) {
        match *self {
            L2Req::Acquire { source, grow } => {
                w.put_u8(0);
                source.encode(w);
                grow.encode(w);
            }
            L2Req::RootRelease { source, kind, data } => {
                w.put_u8(1);
                source.encode(w);
                kind.encode(w);
                data.encode(w);
            }
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(L2Req::Acquire {
                source: usize::decode(r)?,
                grow: Grow::decode(r)?,
            }),
            1 => Ok(L2Req::RootRelease {
                source: usize::decode(r)?,
                kind: WritebackKind::decode(r)?,
                data: Option::decode(r)?,
            }),
            _ => Err(SnapError::Corrupt("l2 request kind")),
        }
    }
}

impl Codec for L2MshrState {
    fn encode(&self, w: &mut SnapWriter) {
        match *self {
            L2MshrState::Access { until } => {
                w.put_u8(0);
                until.encode(w);
            }
            L2MshrState::VictimProbe => w.put_u8(1),
            L2MshrState::VictimWrite => w.put_u8(2),
            L2MshrState::VictimWriteWait => w.put_u8(3),
            L2MshrState::MemRead => w.put_u8(4),
            L2MshrState::MemReadWait => w.put_u8(5),
            L2MshrState::OwnerProbe => w.put_u8(6),
            L2MshrState::DramWrite => w.put_u8(7),
            L2MshrState::DramWriteWait => w.put_u8(8),
            L2MshrState::SendResp => w.put_u8(9),
            L2MshrState::WaitGrantAck => w.put_u8(10),
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.get_u8()? {
            0 => L2MshrState::Access {
                until: u64::decode(r)?,
            },
            1 => L2MshrState::VictimProbe,
            2 => L2MshrState::VictimWrite,
            3 => L2MshrState::VictimWriteWait,
            4 => L2MshrState::MemRead,
            5 => L2MshrState::MemReadWait,
            6 => L2MshrState::OwnerProbe,
            7 => L2MshrState::DramWrite,
            8 => L2MshrState::DramWriteWait,
            9 => L2MshrState::SendResp,
            10 => L2MshrState::WaitGrantAck,
            _ => return Err(SnapError::Corrupt("l2 mshr state")),
        })
    }
}

impl Codec for L2Mshr {
    fn encode(&self, w: &mut SnapWriter) {
        self.addr.encode(w);
        self.req.encode(w);
        self.state.encode(w);
        self.pending_acks.encode(w);
        self.to_probe.encode(w);
        self.probe_cap.encode(w);
        self.way.encode(w);
        self.victim.encode(w);
        self.token.encode(w);
        self.wrote.encode(w);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(L2Mshr {
            addr: LineAddr::decode(r)?,
            req: L2Req::decode(r)?,
            state: L2MshrState::decode(r)?,
            pending_acks: usize::decode(r)?,
            to_probe: u32::decode(r)?,
            probe_cap: Cap::decode(r)?,
            way: Option::decode(r)?,
            victim: Option::decode(r)?,
            token: u64::decode(r)?,
            wrote: Option::decode(r)?,
        })
    }
}

impl Codec for Deferred {
    fn encode(&self, w: &mut SnapWriter) {
        self.0.encode(w);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Deferred(ChannelC::decode(r)?))
    }
}

impl InclusiveCache {
    /// Encodes the L2's complete simulated state: directory/data/LRU
    /// arrays, every live MSHR (the occupancy bitmask is re-derived on
    /// decode), the §3.4 list buffer, the memory-request token counter, the
    /// statistics, and the MSHR-allocation stamp that keys adversarial
    /// rotation draws. Configuration, trace sink and perturbation
    /// installation are host-side and excluded.
    pub fn encode_state(&self, w: &mut SnapWriter) {
        w.tag(0x4d);
        self.arrays.encode_state(w);
        w.put_u64(self.mshrs.len() as u64);
        for m in &self.mshrs {
            m.encode(w);
        }
        self.list_buffer.encode(w);
        self.next_token.encode(w);
        self.stats.encode(w);
        self.alloc_seq.encode(w);
    }

    /// Overwrites the L2's simulated state from `r` (the inverse of
    /// [`InclusiveCache::encode_state`]); array geometry and MSHR count
    /// must match the configuration this cache was built with.
    pub fn decode_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.expect_tag(0x4d, "l2 section")?;
        self.arrays.decode_state(r)?;
        let n = r.get_count(64, "l2 mshr count")?;
        if n != self.mshrs.len() {
            return Err(SnapError::ConfigMismatch);
        }
        let mut occupied = 0u64;
        for (i, slot) in self.mshrs.iter_mut().enumerate() {
            *slot = Option::decode(r)?;
            if slot.is_some() {
                occupied |= 1 << i;
            }
        }
        self.occupied = occupied;
        self.list_buffer = VecDeque::decode(r)?;
        self.next_token = u64::decode(r)?;
        self.stats = L2Stats::decode(r)?;
        self.alloc_seq = u64::decode(r)?;
        Ok(())
    }
}
