//! Simulated-time telemetry: interval-sampled counter series.
//!
//! Event tracing (the rest of this crate) answers *what happened, in
//! order*; telemetry answers *how behaviour evolved over simulated time*.
//! A [`Telemetry`] sampler records, every N simulated cycles, the
//! per-interval **deltas** of the simulator's cumulative counters (ops
//! retired, TileLink beats, skip-bit drops, DRAM traffic) alongside
//! instantaneous **gauges** (MSHR/FSHR occupancy, flush-queue depth) into a
//! bounded drop-oldest ring of [`TelemetrySample`]s.
//!
//! The sampler is observation-only and cycle-aligned: samples land at exact
//! multiples of the interval regardless of which engine advances the clock
//! (fast-forwarded windows are provably free of counter changes, so
//! boundaries inside a jumped window record zero deltas and unchanged
//! gauges — exactly what the naive engine would have recorded). Enabling it
//! is bit-identical to leaving it off, for every engine.
//!
//! The system feeds the sampler cumulative [`TelemetryCounters`]; delta
//! computation, ring bounds and the flat JSON / CSV renderings live here.
//! Perfetto counter-track export lives next to the event exporter in the
//! system crate.

use std::collections::VecDeque;
use std::fmt::Write as _;

/// Default bound on buffered samples when none is configured.
pub const DEFAULT_TELEMETRY_CAPACITY: usize = 4096;

/// Cumulative per-core counters and instantaneous gauges, as captured by
/// the system at one instant. Counter fields only ever grow; gauge fields
/// (`*_occupancy`, `flush_queue_depth`) are point-in-time readings.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreCounters {
    /// Memory ops accepted by the L1 (loads + stores + AMOs), cumulative.
    pub ops: u64,
    /// L1 MSHRs currently mid-transaction (gauge).
    pub mshr_occupancy: u64,
    /// FSHRs currently executing a writeback (gauge).
    pub fshr_occupancy: u64,
    /// Requests buffered in the flush queue (gauge).
    pub flush_queue_depth: u64,
    /// CBO.X requests dropped by the Skip It check, cumulative.
    pub skips: u64,
    /// CBO.X requests that entered the flush queue, cumulative.
    pub enqueued: u64,
    /// Messages pushed per TileLink channel A–E, cumulative.
    pub link_pushed: [u64; 5],
}

/// One full cumulative counter capture: what the system hands
/// [`Telemetry::record_up_to`]. See [`CoreCounters`] for the
/// counter-vs-gauge split.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TelemetryCounters {
    /// Per-core counters, indexed by core.
    pub cores: Vec<CoreCounters>,
    /// L2 MSHRs currently live (gauge).
    pub l2_mshr_occupancy: u64,
    /// Line reads DRAM has serviced, cumulative.
    pub dram_reads: u64,
    /// Line writes DRAM has serviced (lines persisted), cumulative.
    pub dram_writes: u64,
}

/// One core's share of a sampled interval: counter fields are **deltas
/// over the covered span**, gauge fields are readings at the sample
/// instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreSample {
    /// Memory ops the L1 accepted during the span.
    pub ops: u64,
    /// L1 MSHR occupancy at the sample instant.
    pub mshr_occupancy: u64,
    /// FSHR occupancy at the sample instant.
    pub fshr_occupancy: u64,
    /// Flush-queue depth at the sample instant.
    pub flush_queue_depth: u64,
    /// Writebacks dropped by Skip It during the span.
    pub skips: u64,
    /// Writebacks enqueued during the span.
    pub enqueued: u64,
    /// Messages pushed per TileLink channel A–E during the span.
    pub link_beats: [u64; 5],
}

impl CoreSample {
    /// Memory ops per cycle over `span` (the per-core IPC series).
    pub fn ipc(&self, span: u64) -> f64 {
        if span == 0 {
            0.0
        } else {
            self.ops as f64 / span as f64
        }
    }

    /// Fraction of this span's CBO.X requests eliminated by the skip bit
    /// (`skips / (skips + enqueued)`); `None` when the span saw none.
    pub fn skip_drop_rate(&self) -> Option<f64> {
        let total = self.skips + self.enqueued;
        (total > 0).then(|| self.skips as f64 / total as f64)
    }

    /// Total TileLink beats across all five channels during the span.
    pub fn total_beats(&self) -> u64 {
        self.link_beats.iter().sum()
    }
}

/// One sampled interval. `cycle` is the sample instant (the end of the
/// covered span); `span` is how many simulated cycles the deltas cover —
/// the configured interval for aligned samples, possibly less for the
/// final partial sample taken by [`Telemetry::finish`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TelemetrySample {
    /// Sample instant (end of the covered span).
    pub cycle: u64,
    /// Simulated cycles the deltas cover.
    pub span: u64,
    /// Per-core deltas and gauges.
    pub cores: Vec<CoreSample>,
    /// L2 MSHR occupancy at the sample instant.
    pub l2_mshr_occupancy: u64,
    /// DRAM line reads during the span.
    pub dram_reads: u64,
    /// DRAM line writes (lines persisted) during the span.
    pub dram_writes: u64,
}

impl TelemetrySample {
    /// DRAM read bandwidth in lines per kilocycle over the span.
    pub fn dram_read_bw(&self) -> f64 {
        per_kcycle(self.dram_reads, self.span)
    }

    /// DRAM write bandwidth in lines per kilocycle over the span.
    pub fn dram_write_bw(&self) -> f64 {
        per_kcycle(self.dram_writes, self.span)
    }
}

fn per_kcycle(n: u64, span: u64) -> f64 {
    if span == 0 {
        0.0
    } else {
        n as f64 * 1000.0 / span as f64
    }
}

/// The interval sampler: a bounded drop-oldest ring of
/// [`TelemetrySample`]s plus the cumulative baseline the next delta is
/// computed against.
///
/// The owner (the system) calls [`Telemetry::record_up_to`] whenever the
/// simulated clock has reached or crossed [`Telemetry::next_cycle`] *and
/// the state at the current instant equals the state at every crossed
/// boundary* — true at every executed-cycle boundary and at fast-forward
/// landing points, since skipped windows contain no state changes. Each
/// crossed boundary gets its own sample, so the series is identical
/// whichever engine advanced the clock.
#[derive(Clone)]
pub struct Telemetry {
    interval: u64,
    capacity: usize,
    /// Next boundary cycle to sample.
    next: u64,
    /// Cycle of the previous sample (or the install baseline).
    last_cycle: u64,
    /// Cumulative counters at `last_cycle`.
    prev: TelemetryCounters,
    samples: VecDeque<TelemetrySample>,
    dropped: u64,
}

// Summary-only, mirroring `TraceSink`: keep any accidental inclusion in a
// state digest cheap and layout-independent.
impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Telemetry(interval={}, len={}, dropped={})",
            self.interval,
            self.samples.len(),
            self.dropped
        )
    }
}

impl Telemetry {
    /// A sampler recording every `interval` cycles into a ring of at most
    /// `capacity` samples, with `baseline` as the cumulative state at
    /// install time (`now`). The first sample lands at the next multiple
    /// of `interval` strictly after `now`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` or `capacity` is zero.
    pub fn new(interval: u64, capacity: usize, now: u64, baseline: TelemetryCounters) -> Self {
        assert!(interval > 0, "telemetry interval must be nonzero");
        assert!(capacity > 0, "telemetry capacity must be nonzero");
        Telemetry {
            interval,
            capacity,
            next: (now / interval + 1) * interval,
            last_cycle: now,
            prev: baseline,
            samples: VecDeque::new(),
            dropped: 0,
        }
    }

    /// The configured sampling interval (cycles).
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// The ring capacity (samples).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The next boundary cycle a sample will land on.
    pub fn next_cycle(&self) -> u64 {
        self.next
    }

    /// Whether the clock having reached `now` means samples are due.
    #[inline]
    pub fn due(&self, now: u64) -> bool {
        now >= self.next
    }

    /// Records one sample per boundary in `(last, now]`, with `counters`
    /// as the cumulative state at `now`. The first crossed boundary
    /// carries the deltas since the previous sample; further boundaries
    /// (inside a fast-forwarded window) record zero deltas and repeated
    /// gauges — the caller guarantees no counter changed between the first
    /// crossed boundary and `now`.
    pub fn record_up_to(&mut self, now: u64, counters: &TelemetryCounters) {
        while self.next <= now {
            let cycle = self.next;
            self.push(cycle, counters);
            self.next += self.interval;
        }
    }

    /// Takes a final partial sample covering `(last, now]` — the tail of a
    /// run that ended between boundaries. A no-op when `now` is already
    /// sampled. Boundary alignment of future samples is unaffected.
    pub fn finish(&mut self, now: u64, counters: &TelemetryCounters) {
        if now > self.last_cycle {
            self.push(now, counters);
        }
    }

    fn push(&mut self, cycle: u64, counters: &TelemetryCounters) {
        let sample = TelemetrySample {
            cycle,
            span: cycle - self.last_cycle,
            cores: counters
                .cores
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let p = self.prev.cores.get(i).copied().unwrap_or_default();
                    let mut beats = [0u64; 5];
                    for (b, (cur, prev)) in beats
                        .iter_mut()
                        .zip(c.link_pushed.iter().zip(p.link_pushed.iter()))
                    {
                        *b = cur.saturating_sub(*prev);
                    }
                    CoreSample {
                        ops: c.ops.saturating_sub(p.ops),
                        mshr_occupancy: c.mshr_occupancy,
                        fshr_occupancy: c.fshr_occupancy,
                        flush_queue_depth: c.flush_queue_depth,
                        skips: c.skips.saturating_sub(p.skips),
                        enqueued: c.enqueued.saturating_sub(p.enqueued),
                        link_beats: beats,
                    }
                })
                .collect(),
            l2_mshr_occupancy: counters.l2_mshr_occupancy,
            dram_reads: counters.dram_reads.saturating_sub(self.prev.dram_reads),
            dram_writes: counters.dram_writes.saturating_sub(self.prev.dram_writes),
        };
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
            self.dropped += 1;
        }
        self.samples.push_back(sample);
        self.prev = counters.clone();
        self.last_cycle = cycle;
    }

    /// The buffered samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &TelemetrySample> {
        self.samples.iter()
    }

    /// Number of buffered samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no sample has been taken (or all were evicted).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Flat JSON rendering: the interval, the drop count, and one object
    /// per sample (per-core deltas/gauges under `"cores"`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"interval\": {},", self.interval);
        let _ = writeln!(out, "  \"dropped\": {},", self.dropped);
        out.push_str("  \"samples\": [\n");
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let _ = write!(
                out,
                "    {{\"cycle\": {}, \"span\": {}, \"dram_reads\": {}, \"dram_writes\": {}, \
                 \"l2_mshr_occupancy\": {}, \"cores\": [",
                s.cycle, s.span, s.dram_reads, s.dram_writes, s.l2_mshr_occupancy
            );
            for (j, c) in s.cores.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{{\"ops\": {}, \"mshr_occupancy\": {}, \"fshr_occupancy\": {}, \
                     \"flush_queue_depth\": {}, \"skips\": {}, \"enqueued\": {}, \
                     \"link_beats\": [{}, {}, {}, {}, {}]}}",
                    c.ops,
                    c.mshr_occupancy,
                    c.fshr_occupancy,
                    c.flush_queue_depth,
                    c.skips,
                    c.enqueued,
                    c.link_beats[0],
                    c.link_beats[1],
                    c.link_beats[2],
                    c.link_beats[3],
                    c.link_beats[4]
                );
            }
            out.push_str("]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// CSV rendering: one row per `(sample, core)` pair, system-wide
    /// columns repeated on each of a sample's rows.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "cycle,span,core,ops,mshr_occupancy,fshr_occupancy,flush_queue_depth,\
             skips,enqueued,beats_a,beats_b,beats_c,beats_d,beats_e,\
             l2_mshr_occupancy,dram_reads,dram_writes\n",
        );
        for s in &self.samples {
            for (i, c) in s.cores.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                    s.cycle,
                    s.span,
                    i,
                    c.ops,
                    c.mshr_occupancy,
                    c.fshr_occupancy,
                    c.flush_queue_depth,
                    c.skips,
                    c.enqueued,
                    c.link_beats[0],
                    c.link_beats[1],
                    c.link_beats[2],
                    c.link_beats[3],
                    c.link_beats[4],
                    s.l2_mshr_occupancy,
                    s.dram_reads,
                    s.dram_writes
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(ops: u64, reads: u64) -> TelemetryCounters {
        TelemetryCounters {
            cores: vec![CoreCounters {
                ops,
                mshr_occupancy: 1,
                fshr_occupancy: 2,
                flush_queue_depth: 3,
                skips: ops / 2,
                enqueued: ops,
                link_pushed: [ops, 0, ops * 2, 0, 0],
            }],
            l2_mshr_occupancy: 4,
            dram_reads: reads,
            dram_writes: reads * 2,
        }
    }

    #[test]
    fn samples_land_on_boundaries_with_deltas() {
        let mut t = Telemetry::new(100, 16, 0, counters(0, 0));
        assert_eq!(t.next_cycle(), 100);
        assert!(!t.due(99));
        assert!(t.due(100));
        t.record_up_to(100, &counters(10, 3));
        let s: Vec<_> = t.samples().collect();
        assert_eq!(s.len(), 1);
        assert_eq!((s[0].cycle, s[0].span), (100, 100));
        assert_eq!(s[0].cores[0].ops, 10);
        assert_eq!(s[0].cores[0].link_beats, [10, 0, 20, 0, 0]);
        assert_eq!((s[0].dram_reads, s[0].dram_writes), (3, 6));
        // Gauges are instantaneous, not deltas.
        assert_eq!(s[0].cores[0].mshr_occupancy, 1);
        assert_eq!(s[0].l2_mshr_occupancy, 4);
    }

    #[test]
    fn jumped_windows_emit_zero_delta_samples() {
        let mut t = Telemetry::new(100, 16, 0, counters(0, 0));
        // Clock lands at 350 after a jump: boundaries 100, 200, 300.
        t.record_up_to(350, &counters(5, 1));
        let s: Vec<_> = t.samples().collect();
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].cores[0].ops, 5, "first boundary carries the delta");
        assert_eq!(s[1].cores[0].ops, 0);
        assert_eq!(s[2].cores[0].ops, 0);
        assert_eq!(s[2].cores[0].mshr_occupancy, 1, "gauges repeat");
        assert_eq!(t.next_cycle(), 400);
    }

    #[test]
    fn finish_takes_partial_tail_sample() {
        let mut t = Telemetry::new(100, 16, 0, counters(0, 0));
        t.record_up_to(200, &counters(4, 2));
        t.finish(250, &counters(9, 2));
        let s: Vec<_> = t.samples().collect();
        assert_eq!(s.len(), 3);
        assert_eq!((s[2].cycle, s[2].span), (250, 50));
        assert_eq!(s[2].cores[0].ops, 5);
        // Already-sampled instants are a no-op.
        t.finish(250, &counters(9, 2));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn ring_drops_oldest() {
        let mut t = Telemetry::new(10, 2, 0, counters(0, 0));
        t.record_up_to(40, &counters(8, 0));
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 2);
        let first = t.samples().next().unwrap();
        assert_eq!(first.cycle, 30, "oldest samples evicted");
    }

    #[test]
    fn deltas_sum_to_cumulative_totals() {
        let mut t = Telemetry::new(64, 64, 0, counters(0, 0));
        for (now, ops) in [(64, 3), (128, 3), (300, 17), (301, 17)] {
            t.record_up_to(now, &counters(ops, ops));
        }
        t.finish(333, &counters(20, 20));
        let ops: u64 = t.samples().map(|s| s.cores[0].ops).sum();
        let reads: u64 = t.samples().map(|s| s.dram_reads).sum();
        assert_eq!(ops, 20);
        assert_eq!(reads, 20);
        let spans: u64 = t.samples().map(|s| s.span).sum();
        assert_eq!(spans, 333, "spans tile the run without gaps");
    }

    #[test]
    fn rates_and_ratios() {
        let c = CoreSample {
            ops: 500,
            skips: 3,
            enqueued: 1,
            ..CoreSample::default()
        };
        assert!((c.ipc(1000) - 0.5).abs() < 1e-12);
        assert_eq!(c.ipc(0), 0.0);
        assert_eq!(c.skip_drop_rate(), Some(0.75));
        assert_eq!(CoreSample::default().skip_drop_rate(), None);
        let s = TelemetrySample {
            span: 2000,
            dram_reads: 4,
            dram_writes: 6,
            ..TelemetrySample::default()
        };
        assert!((s.dram_read_bw() - 2.0).abs() < 1e-12);
        assert!((s.dram_write_bw() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn json_and_csv_shapes() {
        let mut t = Telemetry::new(100, 4, 0, counters(0, 0));
        t.record_up_to(100, &counters(10, 3));
        let json = t.to_json();
        assert!(json.contains("\"interval\": 100"));
        assert!(json.contains("\"cycle\": 100"));
        assert!(json.contains("\"link_beats\": [10, 0, 20, 0, 0]"));
        let csv = t.to_csv();
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("cycle,span,core,ops"));
        assert_eq!(
            lines.next().unwrap(),
            "100,100,0,10,1,2,3,5,10,10,0,20,0,0,4,3,6"
        );
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn mid_run_install_aligns_to_absolute_boundaries() {
        let t = Telemetry::new(100, 4, 150, counters(0, 0));
        assert_eq!(t.next_cycle(), 200, "boundaries are absolute multiples");
        let t = Telemetry::new(100, 4, 200, counters(0, 0));
        assert_eq!(t.next_cycle(), 300, "strictly after the install instant");
    }
}
