//! Unified cycle-stamped event tracing for the Skip It simulator.
//!
//! Every simulated subsystem (LSU, L1 D-cache, flush unit, TileLink links,
//! L2, DRAM, the fast-forward engine itself) owns an optional
//! [`TraceSink`] — a bounded ring buffer of [`TraceEvent`]s stamped with the
//! cycle they occurred on. Sinks are installed by
//! `System::set_trace` and harvested into one deterministically
//! merged stream for export (Chrome-trace JSON for Perfetto, or a
//! human-readable text dump).
//!
//! # The engine-invariance contract
//!
//! Events are emitted **only from state-mutating code paths** (an FSHR
//! changing state, a message entering or leaving a link, an MSHR being
//! allocated…), never from the pure `next_event` / `would_accept` mirrors
//! the fast-forward engine plans with. Since the fast engine only skips
//! cycles on which no component mutates state, the emitted stream — modulo
//! the engine's own [`TraceEvent::FastForwardJump`] markers — is
//! bit-identical between the naive and fast-forward engines. Tracing can
//! therefore never perturb (or even observe a difference in) simulation.
//!
//! # Zero cost when disabled
//!
//! The [`trace!`] macro wraps every emission in
//! `if TRACE_COMPILED { if let Some(sink) = … }`. With the crate's `trace`
//! feature disabled (`--no-default-features`) the constant is `false` and
//! the whole site — including event construction — is dead code. With the
//! feature on but no sink installed (the default at run time), the cost is
//! a single `Option` discriminant test per site.

use std::collections::VecDeque;

mod telemetry;

pub use telemetry::{
    CoreCounters, CoreSample, Telemetry, TelemetryCounters, TelemetrySample,
    DEFAULT_TELEMETRY_CAPACITY,
};

/// `true` when the `trace` feature is compiled in. [`trace!`] tests this
/// constant first, so disabled builds optimize every emission site away.
pub const TRACE_COMPILED: bool = cfg!(feature = "trace");

/// Emits an event into an `Option<TraceSink>`-typed place.
///
/// ```
/// use skipit_trace::{trace, TraceEvent, TraceSink};
///
/// let mut sink = Some(TraceSink::new(16));
/// trace!(sink, 42, TraceEvent::DramRead { addr: 0x1000 });
/// assert_eq!(sink.unwrap().len(), 1);
/// ```
#[macro_export]
macro_rules! trace {
    ($sink:expr, $now:expr, $ev:expr) => {
        if $crate::TRACE_COMPILED {
            if let ::core::option::Option::Some(s) = ($sink).as_mut() {
                s.emit($now, $ev);
            }
        }
    };
}

/// A single cycle-stamped simulator event. Variants carry the originating
/// core where one exists, so sinks can filter per core and exporters can
/// assign tracks without extra bookkeeping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// An FSHR moved between two Fig. 7 states (`free`, `meta_write`,
    /// `fill_buffer`, `root_release_data`, `root_release`,
    /// `root_release_ack`).
    FshrTransition {
        /// Originating core.
        core: usize,
        /// FSHR index within the flush unit.
        fshr: usize,
        /// Line the FSHR is operating on.
        addr: u64,
        /// State left.
        from: &'static str,
        /// State entered.
        to: &'static str,
    },
    /// A CBO.X request entered the flush queue.
    FlushEnqueue {
        /// Originating core.
        core: usize,
        /// Requested line.
        addr: u64,
        /// `CBO.CLEAN` / `CBO.FLUSH` / `CBO.INVAL`.
        kind: &'static str,
    },
    /// An arriving CBO.X merged into an already-queued same-line entry
    /// (§5.3) instead of occupying a new slot.
    FlushCoalesce {
        /// Originating core.
        core: usize,
        /// Requested line.
        addr: u64,
        /// Kind of the arriving (absorbed) request.
        kind: &'static str,
    },
    /// A queued flush entry was downgraded to a miss-kind entry because a
    /// probe or an eviction took the line away first (§5.4).
    FlushInvalidate {
        /// Originating core.
        core: usize,
        /// Affected line.
        addr: u64,
        /// `"probe"` or `"evict"`.
        by: &'static str,
    },
    /// A writeback was dropped at the L1 by the Skip It check
    /// (hit ∧ clean ∧ skip bit, §6).
    WritebackDropped {
        /// Originating core.
        core: usize,
        /// Line whose writeback was dropped.
        addr: u64,
    },
    /// A message entered a TileLink channel (producer side).
    TlBegin {
        /// Channel name: `'A'`–`'E'`.
        channel: char,
        /// Core index of the per-core link the message travels on.
        core: usize,
        /// Message opcode (e.g. `"AcquireBlock"`, `"RootRelease"`).
        opcode: &'static str,
        /// Message parameter (grow/shrink/kind/flavor), `""` when none.
        param: &'static str,
        /// Line address the message concerns.
        addr: u64,
    },
    /// The message at the head of a TileLink channel was consumed. Channels
    /// are FIFOs, so the n-th `TlEnd` of a (channel, core) pair closes the
    /// n-th [`TraceEvent::TlBegin`].
    TlEnd {
        /// Channel name: `'A'`–`'E'`.
        channel: char,
        /// Core index of the per-core link.
        core: usize,
        /// Message opcode.
        opcode: &'static str,
        /// Message parameter, `""` when none.
        param: &'static str,
        /// Line address.
        addr: u64,
    },
    /// An L1 MSHR was allocated for a miss.
    L1MshrAlloc {
        /// Originating core.
        core: usize,
        /// MSHR slot index.
        slot: usize,
        /// Missing line.
        addr: u64,
    },
    /// An L1 MSHR finished its transaction and returned to the free pool.
    L1MshrFree {
        /// Originating core.
        core: usize,
        /// MSHR slot index.
        slot: usize,
        /// Line the MSHR serviced.
        addr: u64,
    },
    /// An L2 MSHR was allocated (for an Acquire or a RootRelease).
    L2MshrAlloc {
        /// MSHR slot index.
        slot: usize,
        /// Line the transaction concerns.
        addr: u64,
        /// `"Acquire"` or `"RootRelease"`.
        op: &'static str,
    },
    /// An L2 MSHR completed and was freed.
    L2MshrFree {
        /// MSHR slot index.
        slot: usize,
        /// Line the transaction concerned.
        addr: u64,
    },
    /// The L1 set a line's skip bit (line known persisted, §6).
    SkipBitSet {
        /// Originating core.
        core: usize,
        /// Line address.
        addr: u64,
    },
    /// The L1 cleared a line's skip bit.
    SkipBitClear {
        /// Originating core.
        core: usize,
        /// Line address.
        addr: u64,
        /// What invalidated the skip knowledge (`"store"`, `"grant"`,
        /// `"probe"`, `"evict"`…).
        why: &'static str,
    },
    /// DRAM completed a line read.
    DramRead {
        /// Line address.
        addr: u64,
    },
    /// DRAM completed a line write (the persistence event).
    DramWrite {
        /// Line address.
        addr: u64,
    },
    /// The L2 skipped a RootRelease DRAM write because nothing was dirty
    /// (§5.5 "trivial skip").
    DramWriteSkipped {
        /// Line address.
        addr: u64,
    },
    /// A fence entered the LSU and began gating retirement (it completes
    /// only when older ops are done and the flush counter is zero, §5.3).
    FenceStallBegin {
        /// Originating core.
        core: usize,
        /// Op token of the fence.
        token: u64,
    },
    /// The fence completed.
    FenceStallEnd {
        /// Originating core.
        core: usize,
        /// Op token of the fence.
        token: u64,
    },
    /// The fast-forward engine jumped the clock over a provably idle
    /// window. `l2` / `cores` / `frontend` attribute the gate(s) due at the
    /// jump target (all clear when the jump came from the bare
    /// `fast_forward_clock` path, which records no attribution).
    FastForwardJump {
        /// First skipped cycle.
        from: u64,
        /// Jump target (next cycle with work).
        to: u64,
        /// The L2/DRAM gate is due at the target.
        l2: bool,
        /// Bitmask of cores whose gate is due at the target.
        cores: u64,
        /// A frontend issue/rendezvous event is due at the target.
        frontend: bool,
    },
}

impl TraceEvent {
    /// The core an event belongs to, when it has one (per-core filtering).
    pub fn core(&self) -> Option<usize> {
        use TraceEvent::*;
        match *self {
            FshrTransition { core, .. }
            | FlushEnqueue { core, .. }
            | FlushCoalesce { core, .. }
            | FlushInvalidate { core, .. }
            | WritebackDropped { core, .. }
            | TlBegin { core, .. }
            | TlEnd { core, .. }
            | L1MshrAlloc { core, .. }
            | L1MshrFree { core, .. }
            | SkipBitSet { core, .. }
            | SkipBitClear { core, .. }
            | FenceStallBegin { core, .. }
            | FenceStallEnd { core, .. } => Some(core),
            _ => None,
        }
    }

    /// The line address an event concerns, when it has one (address-range
    /// filtering).
    pub fn addr(&self) -> Option<u64> {
        use TraceEvent::*;
        match *self {
            FshrTransition { addr, .. }
            | FlushEnqueue { addr, .. }
            | FlushCoalesce { addr, .. }
            | FlushInvalidate { addr, .. }
            | WritebackDropped { addr, .. }
            | TlBegin { addr, .. }
            | TlEnd { addr, .. }
            | L1MshrAlloc { addr, .. }
            | L1MshrFree { addr, .. }
            | L2MshrAlloc { addr, .. }
            | L2MshrFree { addr, .. }
            | SkipBitSet { addr, .. }
            | SkipBitClear { addr, .. }
            | DramRead { addr }
            | DramWrite { addr }
            | DramWriteSkipped { addr } => Some(addr),
            _ => None,
        }
    }

    /// `true` for the fast-forward engine's own jump markers — the one
    /// event class excluded from the naive-vs-fast equality contract.
    pub fn is_engine_event(&self) -> bool {
        matches!(self, TraceEvent::FastForwardJump { .. })
    }
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use TraceEvent::*;
        match *self {
            FshrTransition {
                core,
                fshr,
                addr,
                from,
                to,
            } => write!(f, "core{core} fshr{fshr} {from} -> {to} @{addr:#x}"),
            FlushEnqueue { core, addr, kind } => {
                write!(f, "core{core} flush-queue enqueue {kind} @{addr:#x}")
            }
            FlushCoalesce { core, addr, kind } => {
                write!(f, "core{core} flush-queue coalesce {kind} @{addr:#x}")
            }
            FlushInvalidate { core, addr, by } => {
                write!(f, "core{core} flush-entry invalidated by {by} @{addr:#x}")
            }
            WritebackDropped { core, addr } => {
                write!(f, "core{core} writeback skip-dropped @{addr:#x}")
            }
            TlBegin {
                channel,
                core,
                opcode,
                param,
                addr,
            } => write!(f, "core{core} TL-{channel} + {opcode}{param} @{addr:#x}"),
            TlEnd {
                channel,
                core,
                opcode,
                param,
                addr,
            } => write!(f, "core{core} TL-{channel} - {opcode}{param} @{addr:#x}"),
            L1MshrAlloc { core, slot, addr } => {
                write!(f, "core{core} L1 mshr{slot} alloc @{addr:#x}")
            }
            L1MshrFree { core, slot, addr } => {
                write!(f, "core{core} L1 mshr{slot} free @{addr:#x}")
            }
            L2MshrAlloc { slot, addr, op } => {
                write!(f, "L2 mshr{slot} alloc {op} @{addr:#x}")
            }
            L2MshrFree { slot, addr } => write!(f, "L2 mshr{slot} free @{addr:#x}"),
            SkipBitSet { core, addr } => write!(f, "core{core} skip-bit set @{addr:#x}"),
            SkipBitClear { core, addr, why } => {
                write!(f, "core{core} skip-bit clear ({why}) @{addr:#x}")
            }
            DramRead { addr } => write!(f, "DRAM read @{addr:#x}"),
            DramWrite { addr } => write!(f, "DRAM write @{addr:#x}"),
            DramWriteSkipped { addr } => write!(f, "DRAM write trivially skipped @{addr:#x}"),
            FenceStallBegin { core, token } => {
                write!(f, "core{core} fence#{token} stall begin")
            }
            FenceStallEnd { core, token } => write!(f, "core{core} fence#{token} done"),
            FastForwardJump {
                from,
                to,
                l2,
                cores,
                frontend,
            } => write!(
                f,
                "engine jump {from} -> {to} (l2:{l2} cores:{cores:#x} fe:{frontend})"
            ),
        }
    }
}

/// An event with the cycle it occurred on and its position in the emitting
/// sink's stream (`seq` is per-sink and strictly increasing, so merged
/// streams can be ordered deterministically).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimedEvent {
    /// Cycle the event occurred on.
    pub cycle: u64,
    /// Per-sink emission index.
    pub seq: u64,
    /// The event.
    pub event: TraceEvent,
}

/// Admission filter applied before an event enters a sink. The default
/// admits everything; component-level filtering is done by installing
/// sinks only on the components of interest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceFilter {
    /// Bitmask of admitted cores. Events without a core (DRAM, L2, engine)
    /// are always admitted.
    pub cores: u64,
    /// Inclusive lower bound on event addresses.
    pub addr_lo: u64,
    /// Inclusive upper bound on event addresses. Events without an address
    /// are always admitted.
    pub addr_hi: u64,
}

impl Default for TraceFilter {
    fn default() -> Self {
        TraceFilter {
            cores: u64::MAX,
            addr_lo: 0,
            addr_hi: u64::MAX,
        }
    }
}

impl TraceFilter {
    /// Admit only events of cores set in `mask`.
    pub fn cores(mask: u64) -> Self {
        TraceFilter {
            cores: mask,
            ..TraceFilter::default()
        }
    }

    /// Admit only events whose address falls in `[lo, hi]`.
    pub fn addr_range(lo: u64, hi: u64) -> Self {
        TraceFilter {
            addr_lo: lo,
            addr_hi: hi,
            ..TraceFilter::default()
        }
    }

    /// Whether `ev` passes the filter.
    pub fn admits(&self, ev: &TraceEvent) -> bool {
        if let Some(core) = ev.core() {
            if self.cores & (1u64 << (core as u32 % 64)) == 0 {
                return false;
            }
        }
        if let Some(addr) = ev.addr() {
            if addr < self.addr_lo || addr > self.addr_hi {
                return false;
            }
        }
        true
    }
}

/// Builder-style description of a system's complete tracing setup: what
/// `System::set_trace` consumes. One value describes both tracing
/// facilities —
///
/// * **event tracing**: cycle-stamped [`TraceEvent`] ring buffers on every
///   component ([`TraceConfig::events`], optionally narrowed by
///   [`TraceConfig::filter`]), and
/// * **op-latency tracing**: per-core completion records and latency
///   histograms ([`TraceConfig::latency`]), and
/// * **telemetry sampling**: interval-aligned counter-series samples
///   ([`TraceConfig::telemetry`], see the [`Telemetry`] sampler).
///
/// The default ([`TraceConfig::off`]) disables all three, so
/// `set_trace(TraceConfig::off())` returns a system to the zero-overhead
/// state.
///
/// # Example
///
/// ```
/// use skipit_trace::{TraceConfig, TraceFilter};
///
/// let cfg = TraceConfig::new()
///     .events(1 << 16)
///     .filter(TraceFilter::cores(0b01))
///     .latency(1024)
///     .telemetry(4096);
/// assert_eq!(cfg.event_capacity(), Some(1 << 16));
/// assert_eq!(cfg.latency_capacity(), Some(1024));
/// assert_eq!(cfg.telemetry_interval(), Some(4096));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    event_capacity: Option<usize>,
    filter: TraceFilter,
    latency_capacity: Option<usize>,
    telemetry_interval: Option<u64>,
    telemetry_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::off()
    }
}

impl TraceConfig {
    /// Everything disabled (the zero-overhead state).
    pub fn off() -> Self {
        TraceConfig {
            event_capacity: None,
            filter: TraceFilter::default(),
            latency_capacity: None,
            telemetry_interval: None,
            telemetry_capacity: DEFAULT_TELEMETRY_CAPACITY,
        }
    }

    /// Starts from everything-disabled; chain [`TraceConfig::events`],
    /// [`TraceConfig::filter`] and [`TraceConfig::latency`] to enable
    /// facilities.
    pub fn new() -> Self {
        TraceConfig::off()
    }

    /// Enables component event tracing with ring buffers of `capacity`
    /// events per component sink.
    pub fn events(mut self, capacity: usize) -> Self {
        self.event_capacity = Some(capacity);
        self
    }

    /// Admission filter applied by every event sink (core mask / address
    /// range). Only meaningful together with [`TraceConfig::events`].
    pub fn filter(mut self, filter: TraceFilter) -> Self {
        self.filter = filter;
        self
    }

    /// Enables per-core op-latency tracing, keeping up to `capacity`
    /// completion records per core (histograms keep counting past the
    /// bound).
    pub fn latency(mut self, capacity: usize) -> Self {
        self.latency_capacity = Some(capacity);
        self
    }

    /// Enables telemetry sampling: one [`TelemetrySample`] every
    /// `interval` simulated cycles, cycle-aligned and engine-independent.
    ///
    /// # Panics
    ///
    /// A zero `interval` panics when the config is installed.
    pub fn telemetry(mut self, interval: u64) -> Self {
        self.telemetry_interval = Some(interval);
        self
    }

    /// Bounds the telemetry sample ring at `capacity` samples
    /// (drop-oldest; default [`DEFAULT_TELEMETRY_CAPACITY`]). Only
    /// meaningful together with [`TraceConfig::telemetry`].
    pub fn telemetry_ring(mut self, capacity: usize) -> Self {
        self.telemetry_capacity = capacity;
        self
    }

    /// Disables component event tracing (keeping any latency setup).
    pub fn without_events(mut self) -> Self {
        self.event_capacity = None;
        self
    }

    /// Disables op-latency tracing (keeping any event setup).
    pub fn without_latency(mut self) -> Self {
        self.latency_capacity = None;
        self
    }

    /// Disables telemetry sampling (keeping event/latency setup).
    pub fn without_telemetry(mut self) -> Self {
        self.telemetry_interval = None;
        self
    }

    /// Per-sink event capacity, `None` when event tracing is off.
    pub fn event_capacity(&self) -> Option<usize> {
        self.event_capacity
    }

    /// The event admission filter.
    pub fn event_filter(&self) -> TraceFilter {
        self.filter
    }

    /// Per-core latency-record capacity, `None` when op-latency tracing is
    /// off.
    pub fn latency_capacity(&self) -> Option<usize> {
        self.latency_capacity
    }

    /// Sampling interval in cycles, `None` when telemetry is off.
    pub fn telemetry_interval(&self) -> Option<u64> {
        self.telemetry_interval
    }

    /// Telemetry sample-ring capacity.
    pub fn telemetry_capacity(&self) -> usize {
        self.telemetry_capacity
    }
}

/// A bounded ring buffer of [`TimedEvent`]s owned by one simulated
/// component. When full, the **oldest** events are discarded (`dropped`
/// counts them), so a sink always holds the most recent window — the
/// useful half when diagnosing why a run *ended* the way it did.
#[derive(Clone)]
pub struct TraceSink {
    events: VecDeque<TimedEvent>,
    capacity: usize,
    filter: TraceFilter,
    seq: u64,
    dropped: u64,
}

// Sinks appear inside components whose `Debug` output feeds the lockstep
// oracle's state digest; keep it to a summary so digests stay cheap (the
// summary is still covered: any emission inside a claimed-idle window
// changes `seq` and trips the oracle, by design).
impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TraceSink(len={}, seq={}, dropped={})",
            self.events.len(),
            self.seq,
            self.dropped
        )
    }
}

impl TraceSink {
    /// A sink holding at most `capacity` events, admitting everything.
    pub fn new(capacity: usize) -> Self {
        TraceSink::with_filter(capacity, TraceFilter::default())
    }

    /// A sink holding at most `capacity` events that pass `filter`.
    pub fn with_filter(capacity: usize, filter: TraceFilter) -> Self {
        TraceSink {
            events: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            filter,
            seq: 0,
            dropped: 0,
        }
    }

    /// Records `event` at `cycle` (applying the filter and the capacity
    /// bound). Prefer the [`trace!`] macro at emission sites — it adds the
    /// compile-out and `Option` guards.
    pub fn emit(&mut self, cycle: u64, event: TraceEvent) {
        if !self.filter.admits(&event) {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        let seq = self.seq;
        self.seq += 1;
        self.events.push_back(TimedEvent { cycle, seq, event });
    }

    /// The buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TimedEvent> {
        self.events.iter()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted by the capacity bound since the last clear.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Capacity the sink was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The admission filter.
    pub fn filter(&self) -> &TraceFilter {
        &self.filter
    }

    /// Discards buffered events and resets the drop counter (the sequence
    /// counter keeps running, so merged orderings stay stable across
    /// clears).
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

/// Static description of a TileLink message for tracing (what `trace!`
/// records at link push/pop). Produced by the message types themselves so
/// the generic `Link` can emit without knowing its channel's payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MsgDesc {
    /// Opcode name (`"AcquireBlock"`, `"Grant"`, …).
    pub opcode: &'static str,
    /// Parameter rendering (grow/shrink/kind/flavor), `""` when none.
    pub param: &'static str,
    /// Line address the message concerns.
    pub addr: u64,
}

/// An event tagged with a global track index for deterministic merging:
/// streams are ordered by `(cycle, order, seq)` where `order` is a fixed
/// component enumeration chosen by the system. Equal streams (the
/// engine-invariance contract) compare equal as `Vec<StreamEvent>`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamEvent {
    /// Cycle the event occurred on.
    pub cycle: u64,
    /// Fixed component enumeration index (ties broken by `seq`).
    pub order: u32,
    /// Per-sink emission index.
    pub seq: u64,
    /// The event.
    pub event: TraceEvent,
}

/// Merges per-sink streams (each already cycle-ordered) into one
/// deterministic stream ordered by `(cycle, order, seq)`.
pub fn merge_streams(mut events: Vec<StreamEvent>) -> Vec<StreamEvent> {
    events.sort_by_key(|e| (e.cycle, e.order, e.seq));
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut s = TraceSink::new(2);
        for cycle in 0..5 {
            s.emit(cycle, TraceEvent::DramRead { addr: cycle });
        }
        assert_eq!(s.len(), 2);
        assert_eq!(s.dropped(), 3);
        let cycles: Vec<u64> = s.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![3, 4]);
    }

    #[test]
    fn filters_apply_to_attributed_events_only() {
        let mut s = TraceSink::with_filter(16, TraceFilter::cores(0b10));
        s.emit(1, TraceEvent::SkipBitSet { core: 0, addr: 0 });
        s.emit(2, TraceEvent::SkipBitSet { core: 1, addr: 0 });
        s.emit(3, TraceEvent::DramWrite { addr: 0 });
        assert_eq!(s.len(), 2, "core 0 filtered, core 1 + coreless admitted");

        let mut s = TraceSink::with_filter(16, TraceFilter::addr_range(0x100, 0x1ff));
        s.emit(1, TraceEvent::DramWrite { addr: 0x80 });
        s.emit(2, TraceEvent::DramWrite { addr: 0x180 });
        s.emit(3, TraceEvent::FenceStallBegin { core: 0, token: 1 });
        assert_eq!(s.len(), 2, "out-of-range filtered, addressless admitted");
    }

    #[test]
    fn merge_is_deterministic_and_cycle_ordered() {
        let ev = |cycle, order, seq| StreamEvent {
            cycle,
            order,
            seq,
            event: TraceEvent::DramRead { addr: 0 },
        };
        let merged = merge_streams(vec![ev(5, 1, 0), ev(3, 2, 0), ev(3, 1, 1), ev(3, 1, 0)]);
        let key: Vec<(u64, u32, u64)> = merged.iter().map(|e| (e.cycle, e.order, e.seq)).collect();
        assert_eq!(key, vec![(3, 1, 0), (3, 1, 1), (3, 2, 0), (5, 1, 0)]);
    }

    #[test]
    fn macro_skips_none_and_compiles_out() {
        let mut none: Option<TraceSink> = None;
        trace!(none, 0, TraceEvent::DramRead { addr: 0 });
        assert!(none.is_none());
        let mut some = Some(TraceSink::new(4));
        trace!(some, 7, TraceEvent::DramRead { addr: 1 });
        assert_eq!(some.as_ref().unwrap().len(), usize::from(TRACE_COMPILED));
    }
}
