//! Cache-line addressing and data.
//!
//! All agents in the simulated SoC move data at cache-line granularity
//! (64 bytes = eight 64-bit words), matching the SonicBOOM configuration the
//! paper evaluates (32 KiB 8-way L1 with 64 B lines, §3.3).

use std::fmt;

/// Size of a cache line in bytes.
pub const LINE_BYTES: usize = 64;

/// Number of 64-bit words in a cache line.
pub const WORDS_PER_LINE: usize = LINE_BYTES / 8;

/// The address of a cache line: a byte address with the low
/// `log2(LINE_BYTES)` bits forced to zero.
///
/// Using a newtype (rather than a bare `u64`) statically separates
/// line-granular addresses — which the coherence protocol, the flush unit and
/// the directory operate on — from word-granular addresses used by loads and
/// stores.
///
/// # Example
///
/// ```
/// use skipit_tilelink::LineAddr;
///
/// let a = LineAddr::containing(0x1238);
/// assert_eq!(a.base(), 0x1200);
/// assert_eq!(LineAddr::word_index(0x1238), 7);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Returns the line containing byte address `byte_addr`.
    pub fn containing(byte_addr: u64) -> Self {
        LineAddr(byte_addr & !(LINE_BYTES as u64 - 1))
    }

    /// Constructs a line address from an already-aligned base address.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not 64-byte aligned.
    pub fn new(base: u64) -> Self {
        assert_eq!(
            base % LINE_BYTES as u64,
            0,
            "line address {base:#x} is not {LINE_BYTES}-byte aligned"
        );
        LineAddr(base)
    }

    /// The byte address of the first byte of the line.
    pub fn base(self) -> u64 {
        self.0
    }

    /// Index of the 64-bit word within its line for byte address `byte_addr`.
    ///
    /// # Panics
    ///
    /// Panics if `byte_addr` is not 8-byte aligned (the simulator operates on
    /// whole words, like the paper's microbenchmarks).
    pub fn word_index(byte_addr: u64) -> usize {
        assert_eq!(byte_addr % 8, 0, "word address {byte_addr:#x} unaligned");
        ((byte_addr % LINE_BYTES as u64) / 8) as usize
    }

    /// The line `n` lines after this one.
    pub fn offset_lines(self, n: u64) -> Self {
        LineAddr(self.0 + n * LINE_BYTES as u64)
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Line({:#x})", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// The payload of one cache line: eight 64-bit words.
///
/// `LineData` is deliberately a small, copyable value — the simulator passes
/// lines through TileLink channels, FSHR data buffers (§5.2) and the L2
/// banked store by value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LineData(pub [u64; WORDS_PER_LINE]);

impl LineData {
    /// A line of all-zero words (the reset value of simulated DRAM).
    pub fn zeroed() -> Self {
        Self::default()
    }

    /// Reads the word at index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= WORDS_PER_LINE`.
    pub fn word(&self, idx: usize) -> u64 {
        self.0[idx]
    }

    /// Writes the word at index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= WORDS_PER_LINE`.
    pub fn set_word(&mut self, idx: usize, value: u64) {
        self.0[idx] = value;
    }
}

impl fmt::Debug for LineData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineData[")?;
        for (i, w) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{w:#x}")?;
        }
        write!(f, "]")
    }
}

impl From<[u64; WORDS_PER_LINE]> for LineData {
    fn from(words: [u64; WORDS_PER_LINE]) -> Self {
        LineData(words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containing_masks_low_bits() {
        assert_eq!(LineAddr::containing(0x0).base(), 0x0);
        assert_eq!(LineAddr::containing(0x3f).base(), 0x0);
        assert_eq!(LineAddr::containing(0x40).base(), 0x40);
        assert_eq!(LineAddr::containing(0xdead_beef).base(), 0xdead_bec0);
    }

    #[test]
    fn word_index_covers_line() {
        for w in 0..WORDS_PER_LINE {
            assert_eq!(LineAddr::word_index(0x1000 + 8 * w as u64), w);
        }
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn word_index_rejects_unaligned() {
        LineAddr::word_index(0x1001);
    }

    #[test]
    #[should_panic(expected = "not 64-byte aligned")]
    fn new_rejects_unaligned() {
        LineAddr::new(0x1010);
    }

    #[test]
    fn offset_lines_steps_by_line_size() {
        let a = LineAddr::new(0x1000);
        assert_eq!(a.offset_lines(3).base(), 0x10c0);
    }

    #[test]
    fn line_data_roundtrip() {
        let mut d = LineData::zeroed();
        d.set_word(3, 42);
        assert_eq!(d.word(3), 42);
        assert_eq!(d.word(0), 0);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", LineData::zeroed()).is_empty());
        assert!(!format!("{:?}", LineAddr::new(0)).is_empty());
    }
}
