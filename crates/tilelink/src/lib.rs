//! TileLink-style coherence message model with the Skip It extensions.
//!
//! This crate models the subset of TileLink-C (TL-C) that the paper *Skip It:
//! Take Control of Your Cache!* (ASPLOS 2024) relies on, plus the messages the
//! paper introduces:
//!
//! * [`ChannelC::RootRelease`] — the paper's `RootReleaseFlush` /
//!   `RootReleaseClean` requests (§5.1), encoded on silicon as a `ProbeAck`
//!   with the `FLUSH` / `CLEAN` parameter. Here they are a first-class message
//!   carrying a [`WritebackKind`].
//! * [`ChannelD::ReleaseAck`] with `root = true` — the paper's
//!   `RootReleaseAck`, encoded as `ReleaseAck` with parameter `ROOT`.
//! * [`ChannelD::Grant`] with a [`GrantFlavor`] — `GrantData` vs the paper's
//!   new `GrantDataDirty` (§6), which tells the L1 whether the granted line is
//!   persisted (clean in the L2) so the L1 can maintain its *skip bit*.
//!
//! A link between two agents consists of up to five unidirectional channels
//! `{A, B, C, D, E}` (§2.2). Each direction is modeled by a [`Link`], a
//! latency- and bandwidth-stamped FIFO: a 64 B cache line crosses a 16 B bus
//! in four beats, exactly as in the paper's Fig. 3 / §5.2 timing discussion.
//!
//! # Example
//!
//! ```
//! use skipit_tilelink::{Link, ChannelA, Grow, LineAddr};
//!
//! let mut a: Link<ChannelA> = Link::new(2, 1);
//! a.push(0, ChannelA::AcquireBlock {
//!     source: 0,
//!     addr: LineAddr::containing(0x80),
//!     grow: Grow::NtoB,
//! });
//! assert!(a.pop(1).is_none()); // still in flight
//! assert!(a.pop(2).is_some());
//! ```

pub mod line;
pub mod link;
pub mod msg;
pub mod perm;
pub mod perturb;
pub mod snap;
pub mod staged;

pub use line::{LineAddr, LineData, LINE_BYTES, WORDS_PER_LINE};
pub use link::Link;
pub use msg::{
    AgentId, ChannelA, ChannelB, ChannelC, ChannelD, ChannelE, GrantFlavor, WritebackKind,
};
pub use perm::{Cap, ClientState, Grow, Shrink};
pub use perturb::PerturbConfig;

/// Number of 16 B beats needed to move one full cache line over a TileLink
/// data bus (Fig. 3: the SonicBOOM system bus is 16 B wide, so a 64 B line
/// takes four cycles — §5.2, state `root_release_data`).
pub const LINE_BEATS: u64 = (LINE_BYTES / 16) as u64;
