//! Deterministic adversarial schedule perturbation (see DESIGN.md §10).
//!
//! The simulator's arbitration is fully fixed: link FIFOs, the flush queue
//! and the L2 MSHR file always pick the same winner, so one program explores
//! exactly one schedule. A [`PerturbConfig`] injects bounded, seeded jitter
//! at the three arbitration points — TileLink channel delivery, flush-queue
//! → FSHR dispatch, and L2 MSHR slot selection — so the *same* program
//! explores many *legal* schedules (every perturbation is a delay or a
//! priority rotation real hardware arbitration could produce).
//!
//! # Determinism contract
//!
//! Every draw is a pure function of `(seed, site, event_index)` where
//! `site` identifies the perturbation point ([`link_site`], [`flush_site`],
//! [`L2_MSHR_SITE`]) and `event_index` is a per-site counter advanced only
//! by *state-changing* events (a message pushed, a flush dispatched, an MSHR
//! allocated). Per-cycle call counts are never used: the fast engines step
//! components at different per-cycle rates than the naive engine, and a
//! call-count key would make the explored schedule engine-dependent. With
//! this keying the whole run is bit-reproducible from `(seed, config)` and
//! identical under `EngineKind::Naive`, `GlobalGate` and `ComponentWheel`.
//!
//! A default (all-zero) config draws nothing at all: the simulation is
//! bit-identical to an unperturbed one.

/// SplitMix64 — the statelesss mixing function behind every perturbation
/// draw (and the sweep runner's per-point seed derivation).
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Site key of TileLink channel `channel` (`'A'`–`'E'`) on core `core`'s
/// link pair.
///
/// # Panics
///
/// Panics on a channel letter outside `'A'`–`'E'`.
pub fn link_site(channel: char, core: usize) -> u64 {
    assert!(('A'..='E').contains(&channel), "channel {channel:?}");
    (1 << 32) | ((channel as u64 - 'A' as u64) << 8) | core as u64
}

/// Site key of core `core`'s flush-queue → FSHR dispatch point.
pub fn flush_site(core: usize) -> u64 {
    (2 << 32) | core as u64
}

/// Site key of the shared L2's MSHR slot selector.
pub const L2_MSHR_SITE: u64 = 3 << 32;

/// Seeded arbitration-jitter configuration, threaded through
/// `SystemBuilder::perturb`. The default is fully off (no draws, behavior
/// bit-identical to an unperturbed system).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PerturbConfig {
    /// Base seed every draw is derived from.
    pub seed: u64,
    /// Maximum extra wire delay (cycles) added per message on each TileLink
    /// channel. Delays messages (and thus reorders deliveries *across*
    /// channels — priority inversion between, say, a probe and a grant)
    /// while preserving per-channel FIFO order.
    pub link_jitter: u64,
    /// Maximum extra hold-off (cycles) before the flush unit dispatches the
    /// flush-queue head into a free FSHR.
    pub dispatch_jitter: u64,
    /// Rotate the L2's free-MSHR scan start per allocation instead of
    /// always picking the lowest free index. MSHR index is service priority
    /// in the L2 step loop, so rotation inverts MSHR arbitration order.
    pub mshr_rotation: bool,
}

impl PerturbConfig {
    /// A config with the given seed and all perturbations at their default
    /// exploration amplitudes.
    pub fn exploring(seed: u64) -> Self {
        PerturbConfig {
            seed,
            link_jitter: 7,
            dispatch_jitter: 11,
            mshr_rotation: true,
        }
    }

    /// Same config, different seed.
    pub fn with_seed(self, seed: u64) -> Self {
        PerturbConfig { seed, ..self }
    }

    /// Whether any perturbation can ever fire. An inactive config draws
    /// nothing and is bit-identical to no config at all.
    pub fn is_active(&self) -> bool {
        self.link_jitter > 0 || self.dispatch_jitter > 0 || self.mshr_rotation
    }

    /// Draws a value in `0..=bound` for event number `event` at `site`.
    /// Pure: same `(seed, site, event, bound)` → same value, regardless of
    /// engine, call count or host.
    #[inline]
    pub fn draw(&self, site: u64, event: u64, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        splitmix64(self.seed ^ splitmix64(site) ^ event.wrapping_mul(0xd134_2543_de82_ef95))
            % (bound + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_inactive() {
        assert!(!PerturbConfig::default().is_active());
        assert_eq!(PerturbConfig::default().draw(link_site('A', 0), 3, 0), 0);
    }

    #[test]
    fn draws_are_pure_and_bounded() {
        let p = PerturbConfig::exploring(42);
        for event in 0..256 {
            let d = p.draw(link_site('C', 1), event, 7);
            assert!(d <= 7);
            assert_eq!(d, p.draw(link_site('C', 1), event, 7), "draw not pure");
        }
    }

    #[test]
    fn sites_and_seeds_decorrelate() {
        let p = PerturbConfig::exploring(1);
        let a: Vec<u64> = (0..64).map(|e| p.draw(link_site('A', 0), e, 63)).collect();
        let b: Vec<u64> = (0..64).map(|e| p.draw(link_site('B', 0), e, 63)).collect();
        let a2: Vec<u64> = (0..64)
            .map(|e| p.with_seed(2).draw(link_site('A', 0), e, 63))
            .collect();
        assert_ne!(a, b, "different sites must draw different sequences");
        assert_ne!(a, a2, "different seeds must draw different sequences");
    }

    #[test]
    fn site_keys_are_distinct() {
        let mut keys = vec![L2_MSHR_SITE];
        for core in 0..4 {
            keys.push(flush_site(core));
            for ch in ['A', 'B', 'C', 'D', 'E'] {
                keys.push(link_site(ch, core));
            }
        }
        let n = keys.len();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), n, "site keys collide");
    }
}
