//! The TileLink permissions lattice and client-side coherence states.
//!
//! TileLink names client permissions *None* < *Branch* (read-only, possibly
//! shared) < *Trunk* (read/write, exclusive). Combined with the dirty bit the
//! client-visible states are exactly MESI (§2.2): `Invalid`, `Shared`
//! (Branch), `Exclusive` (clean Trunk) and `Modified` (dirty Trunk).

use std::fmt;

/// The coherence state of a line in an L1 cache — MESI (§2.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum ClientState {
    /// The line is not present.
    #[default]
    Invalid,
    /// Read permission; other caches may hold copies (TileLink *Branch*).
    Shared,
    /// Read/write permission, no other copies, data clean (*Trunk*, clean).
    Exclusive,
    /// Read/write permission, no other copies, data dirty (*Trunk*, dirty).
    Modified,
}

impl ClientState {
    /// Whether loads can be served locally from this state.
    pub fn can_read(self) -> bool {
        self != ClientState::Invalid
    }

    /// Whether stores can be performed locally from this state.
    pub fn can_write(self) -> bool {
        matches!(self, ClientState::Exclusive | ClientState::Modified)
    }

    /// Whether this state holds data the memory system does not (dirty).
    pub fn is_dirty(self) -> bool {
        self == ClientState::Modified
    }

    /// The state after being probed down to capability `cap`.
    ///
    /// Returns the new state; whether dirty data must travel with the
    /// `ProbeAck` is decided by [`ClientState::is_dirty`] on the *old* state.
    pub fn probed_to(self, cap: Cap) -> ClientState {
        match cap {
            Cap::ToN => ClientState::Invalid,
            Cap::ToB => match self {
                ClientState::Invalid => ClientState::Invalid,
                _ => ClientState::Shared,
            },
            Cap::ToT => self,
        }
    }
}

impl fmt::Display for ClientState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ClientState::Invalid => "I",
            ClientState::Shared => "S",
            ClientState::Exclusive => "E",
            ClientState::Modified => "M",
        };
        f.write_str(s)
    }
}

/// Permission growth requested by an `Acquire` on channel A.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Grow {
    /// None → Branch: acquire read permission (a load miss).
    NtoB,
    /// None → Trunk: acquire write permission with data (a store miss).
    NtoT,
    /// Branch → Trunk: upgrade to write permission.
    ///
    /// The paper notes (§3.3) the SonicBOOM D-cache does not support
    /// `AcquirePerm`; like the hardware, our L1 issues `BtoT` as a full
    /// `AcquireBlock`, re-fetching data.
    BtoT,
}

impl Grow {
    /// Whether the grant must carry write (Trunk) permission.
    pub fn wants_write(self) -> bool {
        matches!(self, Grow::NtoT | Grow::BtoT)
    }

    /// TileLink parameter name, for traces.
    pub fn name(self) -> &'static str {
        match self {
            Grow::NtoB => "NtoB",
            Grow::NtoT => "NtoT",
            Grow::BtoT => "BtoT",
        }
    }
}

/// Capability ceiling demanded by a `Probe` on channel B.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Cap {
    /// Downgrade to None (invalidate).
    ToN,
    /// Downgrade to Branch (keep a read-only copy).
    ToB,
    /// Keep Trunk (report-only probe).
    ToT,
}

impl Cap {
    /// TileLink parameter name, for traces.
    pub fn name(self) -> &'static str {
        match self {
            Cap::ToN => "toN",
            Cap::ToB => "toB",
            Cap::ToT => "toT",
        }
    }
}

/// Permission shrinkage reported by `ProbeAck` / `Release` on channel C.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Shrink {
    /// Trunk → Branch.
    TtoB,
    /// Trunk → None.
    TtoN,
    /// Branch → None.
    BtoN,
    /// Report: had Trunk, kept Trunk (no change).
    TtoT,
    /// Report: had Branch, kept Branch.
    BtoB,
    /// Report: had nothing.
    NtoN,
}

impl Shrink {
    /// Computes the shrink parameter for a transition `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if the transition grows permissions — a protocol violation.
    pub fn from_transition(from: ClientState, to: ClientState) -> Shrink {
        use ClientState::*;
        match (from, to) {
            (Exclusive | Modified, Shared) => Shrink::TtoB,
            (Exclusive | Modified, Invalid) => Shrink::TtoN,
            (Shared, Invalid) => Shrink::BtoN,
            (Exclusive | Modified, Exclusive | Modified) => Shrink::TtoT,
            (Shared, Shared) => Shrink::BtoB,
            (Invalid, Invalid) => Shrink::NtoN,
            (from, to) => panic!("illegal permission growth in shrink: {from:?} -> {to:?}"),
        }
    }

    /// Whether the sender retained any permission after this shrink.
    pub fn keeps_copy(self) -> bool {
        matches!(self, Shrink::TtoB | Shrink::TtoT | Shrink::BtoB)
    }

    /// Whether the sender retained write permission.
    pub fn keeps_trunk(self) -> bool {
        self == Shrink::TtoT
    }

    /// TileLink parameter name, for traces.
    pub fn name(self) -> &'static str {
        match self {
            Shrink::TtoB => "TtoB",
            Shrink::TtoN => "TtoN",
            Shrink::BtoN => "BtoN",
            Shrink::TtoT => "TtoT",
            Shrink::BtoB => "BtoB",
            Shrink::NtoN => "NtoN",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ClientState::*;

    #[test]
    fn mesi_read_write_dirty() {
        assert!(!Invalid.can_read());
        assert!(Shared.can_read() && !Shared.can_write());
        assert!(Exclusive.can_write() && !Exclusive.is_dirty());
        assert!(Modified.can_write() && Modified.is_dirty());
    }

    #[test]
    fn probe_to_n_invalidates_everything() {
        for s in [Invalid, Shared, Exclusive, Modified] {
            assert_eq!(s.probed_to(Cap::ToN), Invalid);
        }
    }

    #[test]
    fn probe_to_b_downgrades_trunk() {
        assert_eq!(Modified.probed_to(Cap::ToB), Shared);
        assert_eq!(Exclusive.probed_to(Cap::ToB), Shared);
        assert_eq!(Shared.probed_to(Cap::ToB), Shared);
        assert_eq!(Invalid.probed_to(Cap::ToB), Invalid);
    }

    #[test]
    fn probe_to_t_is_report_only() {
        for s in [Invalid, Shared, Exclusive, Modified] {
            assert_eq!(s.probed_to(Cap::ToT), s);
        }
    }

    #[test]
    fn shrink_transitions() {
        assert_eq!(Shrink::from_transition(Modified, Invalid), Shrink::TtoN);
        assert_eq!(Shrink::from_transition(Exclusive, Shared), Shrink::TtoB);
        assert_eq!(Shrink::from_transition(Shared, Invalid), Shrink::BtoN);
        assert_eq!(Shrink::from_transition(Invalid, Invalid), Shrink::NtoN);
        assert!(Shrink::TtoB.keeps_copy());
        assert!(!Shrink::TtoN.keeps_copy());
        assert!(Shrink::TtoT.keeps_trunk());
    }

    #[test]
    #[should_panic(expected = "illegal permission growth")]
    fn shrink_rejects_growth() {
        let _ = Shrink::from_transition(Shared, Modified);
    }

    #[test]
    fn grow_wants_write() {
        assert!(!Grow::NtoB.wants_write());
        assert!(Grow::NtoT.wants_write());
        assert!(Grow::BtoT.wants_write());
    }
}
