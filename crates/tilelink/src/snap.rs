//! [`Codec`] implementations for the TileLink vocabulary types and the
//! link FIFOs — the protocol layer of the full-system snapshot format
//! (DESIGN.md §11).
//!
//! Lines use a word-presence bitmask so the dominant all-zero payload
//! costs one byte; enums use one-byte discriminants; a [`Link`]'s
//! serialized state is exactly its simulated state (the arrival-stamped
//! queue, bandwidth cursor, and cumulative push/pop counters — the push
//! counter keys perturbation draws, so it must survive a round trip).
//! Host-side trace sinks and the perturbation installation are excluded:
//! both are re-created from the configuration on restore.

use crate::line::{LineAddr, LineData, WORDS_PER_LINE};
use crate::link::{Beats, Link};
use crate::msg::{ChannelA, ChannelB, ChannelC, ChannelD, ChannelE, GrantFlavor, WritebackKind};
use crate::perm::{Cap, ClientState, Grow, Shrink};
use skipit_snap::{Codec, SnapError, SnapReader, SnapWriter};
use std::fmt;

impl Codec for LineAddr {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u64(self.base());
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let base = r.get_u64()?;
        if base % crate::line::LINE_BYTES as u64 != 0 {
            return Err(SnapError::Corrupt("unaligned line address"));
        }
        Ok(LineAddr::new(base))
    }
}

/// Word-presence bitmask + varint words: an all-zero line is one byte, a
/// typical one-field node line is a few.
impl Codec for LineData {
    fn encode(&self, w: &mut SnapWriter) {
        let mut mask = 0u8;
        for (i, &word) in self.0.iter().enumerate() {
            if word != 0 {
                mask |= 1 << i;
            }
        }
        w.put_u8(mask);
        for &word in self.0.iter().filter(|&&word| word != 0) {
            w.put_u64(word);
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let mask = r.get_u8()?;
        let mut words = [0u64; WORDS_PER_LINE];
        for (i, word) in words.iter_mut().enumerate() {
            if mask & (1 << i) != 0 {
                *word = r.get_u64()?;
            }
        }
        Ok(LineData(words))
    }
}

/// One-byte discriminant enums, written/matched via a macro so encode and
/// decode cannot drift apart. Unit variants only: a path is usable as both
/// a pattern and a constructor expression.
macro_rules! codec_enum {
    ($ty:ty, $site:literal, { $($variant:path => $tag:literal),+ $(,)? }) => {
        impl Codec for $ty {
            fn encode(&self, w: &mut SnapWriter) {
                w.put_u8(match self {
                    $($variant => $tag),+
                });
            }
            fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                Ok(match r.get_u8()? {
                    $($tag => $variant),+,
                    _ => return Err(SnapError::Corrupt($site)),
                })
            }
        }
    };
}

codec_enum!(ClientState, "client state", {
    ClientState::Invalid => 0,
    ClientState::Shared => 1,
    ClientState::Exclusive => 2,
    ClientState::Modified => 3,
});

codec_enum!(Grow, "grow param", {
    Grow::NtoB => 0,
    Grow::NtoT => 1,
    Grow::BtoT => 2,
});

codec_enum!(Cap, "cap param", {
    Cap::ToN => 0,
    Cap::ToB => 1,
    Cap::ToT => 2,
});

codec_enum!(Shrink, "shrink param", {
    Shrink::TtoB => 0,
    Shrink::TtoN => 1,
    Shrink::BtoN => 2,
    Shrink::TtoT => 3,
    Shrink::BtoB => 4,
    Shrink::NtoN => 5,
});

codec_enum!(WritebackKind, "writeback kind", {
    WritebackKind::Clean => 0,
    WritebackKind::Flush => 1,
    WritebackKind::Inval => 2,
});

codec_enum!(GrantFlavor, "grant flavor", {
    GrantFlavor::Clean => 0,
    GrantFlavor::Dirty => 1,
});

impl Codec for ChannelA {
    fn encode(&self, w: &mut SnapWriter) {
        match *self {
            ChannelA::AcquireBlock { source, addr, grow } => {
                w.put_u8(0);
                source.encode(w);
                addr.encode(w);
                grow.encode(w);
            }
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(ChannelA::AcquireBlock {
                source: usize::decode(r)?,
                addr: LineAddr::decode(r)?,
                grow: Grow::decode(r)?,
            }),
            _ => Err(SnapError::Corrupt("channel A opcode")),
        }
    }
}

impl Codec for ChannelB {
    fn encode(&self, w: &mut SnapWriter) {
        match *self {
            ChannelB::Probe { target, addr, cap } => {
                w.put_u8(0);
                target.encode(w);
                addr.encode(w);
                cap.encode(w);
            }
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(ChannelB::Probe {
                target: usize::decode(r)?,
                addr: LineAddr::decode(r)?,
                cap: Cap::decode(r)?,
            }),
            _ => Err(SnapError::Corrupt("channel B opcode")),
        }
    }
}

impl Codec for ChannelC {
    fn encode(&self, w: &mut SnapWriter) {
        match *self {
            ChannelC::ProbeAck {
                source,
                addr,
                shrink,
                data,
            } => {
                w.put_u8(0);
                source.encode(w);
                addr.encode(w);
                shrink.encode(w);
                data.encode(w);
            }
            ChannelC::Release {
                source,
                addr,
                shrink,
                data,
            } => {
                w.put_u8(1);
                source.encode(w);
                addr.encode(w);
                shrink.encode(w);
                data.encode(w);
            }
            ChannelC::RootRelease {
                source,
                addr,
                kind,
                data,
            } => {
                w.put_u8(2);
                source.encode(w);
                addr.encode(w);
                kind.encode(w);
                data.encode(w);
            }
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(ChannelC::ProbeAck {
                source: usize::decode(r)?,
                addr: LineAddr::decode(r)?,
                shrink: Shrink::decode(r)?,
                data: Option::decode(r)?,
            }),
            1 => Ok(ChannelC::Release {
                source: usize::decode(r)?,
                addr: LineAddr::decode(r)?,
                shrink: Shrink::decode(r)?,
                data: Option::decode(r)?,
            }),
            2 => Ok(ChannelC::RootRelease {
                source: usize::decode(r)?,
                addr: LineAddr::decode(r)?,
                kind: WritebackKind::decode(r)?,
                data: Option::decode(r)?,
            }),
            _ => Err(SnapError::Corrupt("channel C opcode")),
        }
    }
}

impl Codec for ChannelD {
    fn encode(&self, w: &mut SnapWriter) {
        match *self {
            ChannelD::Grant {
                target,
                addr,
                is_trunk,
                data,
                flavor,
            } => {
                w.put_u8(0);
                target.encode(w);
                addr.encode(w);
                is_trunk.encode(w);
                data.encode(w);
                flavor.encode(w);
            }
            ChannelD::ReleaseAck { target, addr, root } => {
                w.put_u8(1);
                target.encode(w);
                addr.encode(w);
                root.encode(w);
            }
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(ChannelD::Grant {
                target: usize::decode(r)?,
                addr: LineAddr::decode(r)?,
                is_trunk: bool::decode(r)?,
                data: LineData::decode(r)?,
                flavor: GrantFlavor::decode(r)?,
            }),
            1 => Ok(ChannelD::ReleaseAck {
                target: usize::decode(r)?,
                addr: LineAddr::decode(r)?,
                root: bool::decode(r)?,
            }),
            _ => Err(SnapError::Corrupt("channel D opcode")),
        }
    }
}

impl Codec for ChannelE {
    fn encode(&self, w: &mut SnapWriter) {
        match *self {
            ChannelE::GrantAck { source, addr } => {
                w.put_u8(0);
                source.encode(w);
                addr.encode(w);
            }
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(ChannelE::GrantAck {
                source: usize::decode(r)?,
                addr: LineAddr::decode(r)?,
            }),
            _ => Err(SnapError::Corrupt("channel E opcode")),
        }
    }
}

impl<T: Beats + fmt::Debug + Codec> Link<T> {
    /// Encodes the link's simulated state: the arrival-stamped FIFO, the
    /// bandwidth cursor and the cumulative counters. Latency/capacity come
    /// from the configuration, trace sinks and perturbation installation
    /// are host-side — none of those are written.
    pub fn encode_state(&self, w: &mut SnapWriter) {
        w.tag(0x4c);
        let (queue, next_free, pushed, popped) = self.snap_parts();
        w.put_u64(queue.len() as u64);
        for (ready, msg) in queue {
            ready.encode(w);
            msg.encode(w);
        }
        next_free.encode(w);
        pushed.encode(w);
        popped.encode(w);
    }

    /// Overwrites the link's simulated state from `r` (the inverse of
    /// [`Link::encode_state`]); the queue must fit the configured capacity.
    pub fn decode_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.expect_tag(0x4c, "link section")?;
        let len = r.get_count(skipit_snap::MAX_ELEMS, "link queue length")?;
        let mut queue = std::collections::VecDeque::with_capacity(len.min(1 << 12));
        for _ in 0..len {
            queue.push_back((u64::decode(r)?, T::decode(r)?));
        }
        let next_free = u64::decode(r)?;
        let pushed = u64::decode(r)?;
        let popped = u64::decode(r)?;
        self.snap_restore(queue, next_free, pushed, popped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Codec + PartialEq + fmt::Debug>(v: T) {
        let mut w = SnapWriter::new();
        v.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(T::decode(&mut r).unwrap(), v);
        r.finish().unwrap();
    }

    #[test]
    fn line_data_is_sparse() {
        let mut w = SnapWriter::new();
        LineData::zeroed().encode(&mut w);
        assert_eq!(w.len(), 1, "an all-zero line must cost one byte");
        let mut dense = LineData::zeroed();
        dense.0[3] = 500;
        roundtrip(dense);
        roundtrip(LineData([u64::MAX; WORDS_PER_LINE]));
    }

    #[test]
    fn message_roundtrips() {
        roundtrip(ChannelA::AcquireBlock {
            source: 1,
            addr: LineAddr::new(0x1c0),
            grow: Grow::BtoT,
        });
        roundtrip(ChannelB::Probe {
            target: 0,
            addr: LineAddr::new(0x40),
            cap: Cap::ToB,
        });
        roundtrip(ChannelC::RootRelease {
            source: 3,
            addr: LineAddr::new(0x80),
            kind: WritebackKind::Flush,
            data: Some(LineData([1, 0, 0, 7, 0, 0, 0, 9])),
        });
        roundtrip(ChannelD::Grant {
            target: 2,
            addr: LineAddr::new(0xc0),
            is_trunk: true,
            data: LineData::zeroed(),
            flavor: GrantFlavor::Dirty,
        });
        roundtrip(ChannelD::ReleaseAck {
            target: 1,
            addr: LineAddr::new(0x100),
            root: true,
        });
        roundtrip(ChannelE::GrantAck {
            source: 0,
            addr: LineAddr::new(0x140),
        });
    }

    #[test]
    fn unaligned_line_addr_rejected() {
        let mut w = SnapWriter::new();
        w.put_u64(0x41);
        let bytes = w.into_bytes();
        assert_eq!(
            LineAddr::decode(&mut SnapReader::new(&bytes)),
            Err(SnapError::Corrupt("unaligned line address"))
        );
    }

    #[test]
    fn link_state_roundtrips_with_inflight_messages() {
        let mut l: Link<ChannelE> = Link::new(2, 8);
        for i in 0..3u64 {
            l.push(
                i,
                ChannelE::GrantAck {
                    source: 0,
                    addr: LineAddr::new(i * 64),
                },
            );
        }
        assert!(l.pop(10).is_some());
        let mut w = SnapWriter::new();
        l.encode_state(&mut w);
        let bytes = w.into_bytes();

        let mut fresh: Link<ChannelE> = Link::new(2, 8);
        let mut r = SnapReader::new(&bytes);
        fresh.decode_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(format!("{l:?}"), format!("{fresh:?}"));
        assert_eq!(fresh.pushed(), 3);
        assert_eq!(fresh.popped(), 1);
        assert_eq!(fresh.next_ready(), l.next_ready());
    }

    #[test]
    fn link_decode_rejects_overfull_queue() {
        let mut big: Link<ChannelE> = Link::new(1, 8);
        for i in 0..5u64 {
            big.push(
                0,
                ChannelE::GrantAck {
                    source: 0,
                    addr: LineAddr::new(i * 64),
                },
            );
        }
        let mut w = SnapWriter::new();
        big.encode_state(&mut w);
        let bytes = w.into_bytes();
        let mut small: Link<ChannelE> = Link::new(1, 2);
        assert_eq!(
            small.decode_state(&mut SnapReader::new(&bytes)),
            Err(SnapError::Corrupt("link queue exceeds capacity"))
        );
    }
}
