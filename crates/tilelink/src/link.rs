//! Latency- and bandwidth-modeled unidirectional channels.
//!
//! A [`Link`] is a FIFO whose entries become visible to the receiver only
//! after a configurable wire latency, and which serializes multi-beat
//! (data-bearing) messages: while one message's beats are on the wire, the
//! next message cannot complete earlier. This reproduces the paper's timing
//! observation that releasing a 64 B line over the 16 B system bus takes four
//! cycles (§5.2).

use skipit_trace::{MsgDesc, TraceEvent, TraceSink};
use std::collections::VecDeque;
use std::fmt;

/// Trait implemented by channel message types to report how many bus beats
/// they occupy and to describe themselves to the tracing layer. Headers-only
/// messages take one beat; a full line takes [`crate::LINE_BEATS`].
pub trait Beats {
    /// Number of cycles the message occupies the link.
    fn beats(&self) -> u64;

    /// Opcode/param/address description for trace events.
    fn describe(&self) -> MsgDesc;

    /// The channel this message type travels on (`'A'`–`'E'`), for trace
    /// track naming.
    fn channel() -> char;
}

impl Beats for crate::msg::ChannelA {
    fn beats(&self) -> u64 {
        1
    }

    fn describe(&self) -> MsgDesc {
        crate::msg::ChannelA::describe(self)
    }

    fn channel() -> char {
        'A'
    }
}

impl Beats for crate::msg::ChannelB {
    fn beats(&self) -> u64 {
        1
    }

    fn describe(&self) -> MsgDesc {
        crate::msg::ChannelB::describe(self)
    }

    fn channel() -> char {
        'B'
    }
}

impl Beats for crate::msg::ChannelC {
    fn beats(&self) -> u64 {
        if self.has_data() {
            crate::LINE_BEATS
        } else {
            1
        }
    }

    fn describe(&self) -> MsgDesc {
        crate::msg::ChannelC::describe(self)
    }

    fn channel() -> char {
        'C'
    }
}

impl Beats for crate::msg::ChannelD {
    fn beats(&self) -> u64 {
        if self.has_data() {
            crate::LINE_BEATS
        } else {
            1
        }
    }

    fn describe(&self) -> MsgDesc {
        crate::msg::ChannelD::describe(self)
    }

    fn channel() -> char {
        'D'
    }
}

impl Beats for crate::msg::ChannelE {
    fn beats(&self) -> u64 {
        1
    }

    fn describe(&self) -> MsgDesc {
        crate::msg::ChannelE::describe(self)
    }

    fn channel() -> char {
        'E'
    }
}

/// A unidirectional, latency-stamped, bandwidth-limited FIFO channel.
///
/// Messages pushed at cycle `t` become poppable at
/// `max(t + latency, previous message end + 1) + beats - 1`.
///
/// A link carries no interior synchronization: parallel engines rely on the
/// [single-owner contract](crate::staged) — each link is touched by at most
/// one host thread at a time, and the arrival-stamped queue itself stages
/// cross-slot traffic across the cycle barrier. The compile-time assertion
/// below keeps the links (with their thread-confined trace sinks and
/// perturbation state) `Send`, which that contract depends on.
///
/// # Example
///
/// ```
/// use skipit_tilelink::{Link, ChannelE, LineAddr};
///
/// let mut e: Link<ChannelE> = Link::new(1, 4);
/// e.push(10, ChannelE::GrantAck { source: 0, addr: LineAddr::new(0) });
/// assert!(e.pop(10).is_none());
/// assert!(e.pop(11).is_some());
/// ```
#[derive(Debug)]
pub struct Link<T> {
    queue: VecDeque<(u64, T)>,
    latency: u64,
    capacity: usize,
    next_free: u64,
    /// Cumulative messages pushed (metrics; engine-invariant by the PR 1
    /// guarantee, since pushes only happen from state-mutating steps).
    pushed: u64,
    /// Cumulative messages popped (metrics; with `pushed` this gives
    /// consumed traffic and, by difference, in-flight occupancy without
    /// walking the queue).
    popped: u64,
    /// Event sink + the core index this per-core link belongs to, installed
    /// by `System::set_trace`. `None` (the default) keeps push/pop
    /// at a single branch of overhead.
    trace: Option<(usize, TraceSink)>,
    /// Adversarial-exploration jitter: `(site key, config)` installed by
    /// `System::new` when perturbation is configured (see
    /// [`crate::perturb`]). `None` (the default) adds zero overhead and
    /// leaves timing bit-identical to an unperturbed link.
    perturb: Option<(u64, crate::perturb::PerturbConfig)>,
}

/// Parallel-stepping audit (see [`crate::staged`]): a link must be movable
/// to whichever host thread owns its slot this cycle.
#[allow(dead_code)]
fn _assert_links_send() {
    fn send<T: Send>() {}
    send::<Link<crate::msg::ChannelA>>();
    send::<Link<crate::msg::ChannelB>>();
    send::<Link<crate::msg::ChannelC>>();
    send::<Link<crate::msg::ChannelD>>();
    send::<Link<crate::msg::ChannelE>>();
}

impl<T: Beats + fmt::Debug> Link<T> {
    /// Creates a link with the given wire `latency` (cycles) and buffering
    /// `capacity` (messages).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(latency: u64, capacity: usize) -> Self {
        assert!(capacity > 0, "link capacity must be nonzero");
        Link {
            queue: VecDeque::with_capacity(capacity),
            latency,
            capacity,
            next_free: 0,
            pushed: 0,
            popped: 0,
            trace: None,
            perturb: None,
        }
    }

    /// Installs seeded delivery jitter: every subsequent push's wire delay
    /// is stretched by `cfg.draw(site, message index, cfg.link_jitter)`
    /// cycles. Keyed on the cumulative push counter — a state-changing event
    /// count — so the jitter sequence is identical under every simulation
    /// engine. Per-link FIFO order is preserved (the link stays a strict
    /// FIFO); reordering arises only *across* channels.
    pub fn set_perturb(&mut self, site: u64, cfg: crate::perturb::PerturbConfig) {
        self.perturb = (cfg.link_jitter > 0).then_some((site, cfg));
    }

    /// Installs an event sink; messages entering and leaving the link emit
    /// [`TraceEvent::TlBegin`] / [`TraceEvent::TlEnd`] tagged with `core`
    /// (the per-core link index) and the channel letter.
    pub fn set_trace(&mut self, core: usize, sink: TraceSink) {
        self.trace = Some((core, sink));
    }

    /// The installed event sink, if any.
    pub fn trace_sink(&self) -> Option<&TraceSink> {
        self.trace.as_ref().map(|(_, s)| s)
    }

    /// Mutable access to the installed event sink (for clearing).
    pub fn trace_sink_mut(&mut self) -> Option<&mut TraceSink> {
        self.trace.as_mut().map(|(_, s)| s)
    }

    /// Removes and returns the event sink.
    pub fn take_trace(&mut self) -> Option<TraceSink> {
        self.trace.take().map(|(_, s)| s)
    }

    /// Cumulative number of messages ever pushed (metrics counter).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Cumulative number of messages ever popped (metrics counter).
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Both cumulative counters at once, `(pushed, popped)` — the shape
    /// telemetry capture wants.
    pub fn counters(&self) -> (u64, u64) {
        (self.pushed, self.popped)
    }

    /// Whether a message can be pushed this cycle.
    pub fn can_push(&self) -> bool {
        self.queue.len() < self.capacity
    }

    /// Enqueues `msg` at cycle `now`.
    ///
    /// # Panics
    ///
    /// Panics if the link is full — callers must check [`Link::can_push`]
    /// first, mirroring hardware ready/valid handshakes.
    pub fn push(&mut self, now: u64, msg: T) {
        assert!(self.can_push(), "push on full link: {msg:?}");
        self.pushed += 1;
        if skipit_trace::TRACE_COMPILED {
            if let Some((core, sink)) = self.trace.as_mut() {
                let d = msg.describe();
                sink.emit(
                    now,
                    TraceEvent::TlBegin {
                        channel: T::channel(),
                        core: *core,
                        opcode: d.opcode,
                        param: d.param,
                        addr: d.addr,
                    },
                );
            }
        }
        let mut start = (now + self.latency).max(self.next_free);
        if let Some((site, cfg)) = self.perturb {
            start += cfg.draw(site, self.pushed, cfg.link_jitter);
        }
        let ready = start + msg.beats() - 1;
        self.next_free = ready + 1;
        self.queue.push_back((ready, msg));
    }

    /// Removes and returns the head message if it has fully arrived by `now`.
    pub fn pop(&mut self, now: u64) -> Option<T> {
        if self.queue.front().is_some_and(|&(ready, _)| ready <= now) {
            let msg = self.queue.pop_front().map(|(_, m)| m);
            self.popped += 1;
            if skipit_trace::TRACE_COMPILED {
                if let (Some(m), Some((core, sink))) = (msg.as_ref(), self.trace.as_mut()) {
                    let d = m.describe();
                    sink.emit(
                        now,
                        TraceEvent::TlEnd {
                            channel: T::channel(),
                            core: *core,
                            opcode: d.opcode,
                            param: d.param,
                            addr: d.addr,
                        },
                    );
                }
            }
            msg
        } else {
            None
        }
    }

    /// Peeks at the head message if it has fully arrived by `now`.
    pub fn peek(&self, now: u64) -> Option<&T> {
        match self.queue.front() {
            Some(&(ready, ref m)) if ready <= now => Some(m),
            _ => None,
        }
    }

    /// Number of messages buffered (arrived or in flight).
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no messages are buffered.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Iterates over all buffered messages (in flight included), front first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.queue.iter().map(|(_, m)| m)
    }

    /// The cycle at which the head message becomes poppable, if any message
    /// is buffered. Because the link is a strict FIFO, this is the earliest
    /// cycle at which the receiving side can observe any state change from
    /// this link — the link's contribution to the event-driven scheduler's
    /// next-event bound.
    pub fn next_ready(&self) -> Option<u64> {
        self.queue.front().map(|&(ready, _)| ready)
    }

    /// The link's simulated state, for snapshot encoding (see
    /// [`crate::snap`]): the arrival-stamped queue, the bandwidth cursor,
    /// and the cumulative push/pop counters.
    pub(crate) fn snap_parts(&self) -> (&VecDeque<(u64, T)>, u64, u64, u64) {
        (&self.queue, self.next_free, self.pushed, self.popped)
    }

    /// Overwrites the simulated state from decoded parts, keeping the
    /// host-side configuration (latency, capacity, trace, perturbation).
    pub(crate) fn snap_restore(
        &mut self,
        queue: VecDeque<(u64, T)>,
        next_free: u64,
        pushed: u64,
        popped: u64,
    ) -> Result<(), skipit_snap::SnapError> {
        if queue.len() > self.capacity {
            return Err(skipit_snap::SnapError::Corrupt(
                "link queue exceeds capacity",
            ));
        }
        self.queue = queue;
        self.next_free = next_free;
        self.pushed = pushed;
        self.popped = popped;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{ChannelC, ChannelE, WritebackKind};
    use crate::{LineAddr, LineData, LINE_BEATS};

    fn ack(n: u64) -> ChannelE {
        ChannelE::GrantAck {
            source: 0,
            addr: LineAddr::new(n * 64),
        }
    }

    #[test]
    fn respects_latency() {
        let mut l: Link<ChannelE> = Link::new(3, 8);
        l.push(5, ack(0));
        assert!(l.pop(7).is_none());
        assert!(l.peek(8).is_some());
        assert!(l.pop(8).is_some());
        assert!(l.pop(9).is_none());
    }

    #[test]
    fn preserves_fifo_order() {
        let mut l: Link<ChannelE> = Link::new(1, 8);
        l.push(0, ack(1));
        l.push(0, ack(2));
        assert_eq!(l.pop(100), Some(ack(1)));
        assert_eq!(l.pop(100), Some(ack(2)));
        assert!(l.pop(100).is_none());
    }

    #[test]
    fn serializes_back_to_back_messages() {
        let mut l: Link<ChannelE> = Link::new(1, 8);
        l.push(0, ack(1)); // ready at 1
        l.push(0, ack(2)); // cannot also be ready at 1; ready at 2
        assert!(l.pop(1).is_some());
        assert!(l.pop(1).is_none());
        assert!(l.pop(2).is_some());
    }

    #[test]
    fn data_messages_take_line_beats() {
        let mut l: Link<ChannelC> = Link::new(0, 8);
        let msg = ChannelC::RootRelease {
            source: 0,
            addr: LineAddr::new(0),
            kind: WritebackKind::Flush,
            data: Some(LineData::zeroed()),
        };
        l.push(0, msg);
        // 4 beats starting at cycle 0 => ready at cycle 3.
        assert!(l.pop(LINE_BEATS - 2).is_none());
        assert!(l.pop(LINE_BEATS - 1).is_some());
    }

    #[test]
    fn headerless_root_release_single_beat() {
        let mut l: Link<ChannelC> = Link::new(0, 8);
        let msg = ChannelC::RootRelease {
            source: 0,
            addr: LineAddr::new(0),
            kind: WritebackKind::Clean,
            data: None,
        };
        l.push(0, msg);
        assert!(l.pop(0).is_some());
    }

    #[test]
    fn capacity_enforced() {
        let mut l: Link<ChannelE> = Link::new(1, 2);
        l.push(0, ack(0));
        l.push(0, ack(1));
        assert!(!l.can_push());
    }

    #[test]
    #[should_panic(expected = "push on full link")]
    fn push_on_full_panics() {
        let mut l: Link<ChannelE> = Link::new(1, 1);
        l.push(0, ack(0));
        l.push(0, ack(1));
    }

    #[test]
    fn next_ready_tracks_head_arrival() {
        let mut l: Link<ChannelE> = Link::new(3, 8);
        assert_eq!(l.next_ready(), None);
        l.push(5, ack(0));
        assert_eq!(l.next_ready(), Some(8));
        l.push(5, ack(1)); // serialized behind the first
        assert_eq!(l.next_ready(), Some(8), "head governs the bound");
        assert!(l.pop(8).is_some());
        assert_eq!(l.next_ready(), Some(9));
    }

    #[test]
    fn iter_sees_in_flight() {
        let mut l: Link<ChannelE> = Link::new(10, 4);
        l.push(0, ack(0));
        assert_eq!(l.iter().count(), 1);
        assert_eq!(l.len(), 1);
        assert!(!l.is_empty());
    }

    #[test]
    fn perturbed_link_is_deterministic_and_fifo() {
        use crate::perturb::{link_site, PerturbConfig};
        let cfg = PerturbConfig {
            seed: 7,
            link_jitter: 5,
            ..PerturbConfig::default()
        };
        let run = || {
            let mut l: Link<ChannelE> = Link::new(1, 32);
            l.set_perturb(link_site('E', 0), cfg);
            for i in 0..16 {
                l.push(i, ack(i));
            }
            let mut readies = Vec::new();
            while let Some(t) = l.next_ready() {
                readies.push(t);
                assert!(l.pop(t).is_some());
            }
            readies
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same (seed, site) must reproduce identical timing");
        assert!(a.windows(2).all(|w| w[0] < w[1]), "FIFO order violated");
        // Some message must actually have been delayed beyond base timing.
        let mut base: Link<ChannelE> = Link::new(1, 32);
        for i in 0..16 {
            base.push(i, ack(i));
        }
        let mut base_readies = Vec::new();
        while let Some(t) = base.next_ready() {
            base_readies.push(t);
            assert!(base.pop(t).is_some());
        }
        assert_ne!(a, base_readies, "jitter amplitude 5 never fired");
    }

    #[test]
    fn zero_amplitude_perturbation_is_inert() {
        use crate::perturb::{link_site, PerturbConfig};
        let mut l: Link<ChannelE> = Link::new(2, 8);
        l.set_perturb(
            link_site('E', 1),
            PerturbConfig {
                seed: 99,
                ..PerturbConfig::default()
            },
        );
        l.push(0, ack(0));
        assert_eq!(l.next_ready(), Some(2), "zero amplitude must not delay");
    }
}
