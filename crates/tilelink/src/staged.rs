//! Per-slot staging for deterministic parallel stepping.
//!
//! # The single-owner contract
//!
//! The parallel wheel engine steps component slots of one simulated cycle on
//! several host threads. [`Link`](crate::Link)s need no locking for this
//! because the wheel's slot boundaries already make every link
//! **single-owner per phase**: each per-core link connects exactly one core
//! slot to the L2 slot, the L2 phase runs serially *before* the core phase,
//! and within the core phase each core slot is stepped by exactly one
//! thread. A link is therefore touched by at most one thread at a time, and
//! the link's own arrival-stamped FIFO (`push` computes the ready cycle from
//! `now + latency`; the L2 steps first and so cannot observe a same-cycle
//! core push) *is* the staging queue for cross-slot channel traffic — no
//! copy into a side buffer is needed, and per-link trace sinks and
//! perturbation counters stay thread-confined.
//!
//! What genuinely crosses slot boundaries inside the parallel phase are the
//! **wake edges**: a core slot that observes an A/C/E empty→non-empty or
//! B/D full→non-full transition must re-arm the L2 slot. Those edges are
//! buffered here, one lane per slot, and merged at the cycle barrier in
//! fixed slot order, so the merged value — and every engine decision made
//! from it — is bit-identical to serial stepping at any thread count.
//! (Merging a `min` is order-independent; the fixed order keeps the commit
//! auditable and covers future lane payloads that are not.)

/// Due-cycle sentinel for an empty lane: no wake posted.
pub const NEVER: u64 = u64::MAX;

/// Per-slot wake-edge staging lanes, merged in fixed slot order at the
/// cycle barrier.
///
/// During a parallel phase each slot owns exactly one lane and posts the
/// earliest cycle its neighbor must be re-armed for; [`WakeStage::commit`]
/// folds the lanes in ascending slot order into the single wake value the
/// serial engine would have accumulated in its step loop.
///
/// ```
/// use skipit_tilelink::staged::{WakeStage, NEVER};
///
/// let mut stage = WakeStage::new();
/// stage.reset(3);
/// stage.post(2, 40);
/// stage.post(0, 17);
/// stage.post(0, 25); // keeps the earlier wake
/// assert_eq!(stage.commit(), 17);
/// stage.reset(3);
/// assert_eq!(stage.commit(), NEVER);
/// ```
#[derive(Debug, Default)]
pub struct WakeStage {
    lanes: Vec<u64>,
}

impl WakeStage {
    /// An empty stage; call [`WakeStage::reset`] before each parallel phase.
    pub fn new() -> Self {
        WakeStage::default()
    }

    /// Clears every lane to [`NEVER`] and (re)sizes the stage to `slots`
    /// lanes. Reuses the allocation in steady state.
    pub fn reset(&mut self, slots: usize) {
        self.lanes.clear();
        self.lanes.resize(slots, NEVER);
    }

    /// Number of lanes.
    pub fn slots(&self) -> usize {
        self.lanes.len()
    }

    /// Posts a wake edge at `cycle` from `slot` (keeps the earliest posted
    /// cycle per lane).
    pub fn post(&mut self, slot: usize, cycle: u64) {
        let lane = &mut self.lanes[slot];
        *lane = (*lane).min(cycle);
    }

    /// The lanes as a mutable slice, for engines that give each worker
    /// thread exclusive access to its own slots' lanes (the single-owner
    /// contract above makes disjoint-index access sound).
    pub fn lanes_mut(&mut self) -> &mut [u64] {
        &mut self.lanes
    }

    /// Merges the lanes in fixed slot order: the earliest posted wake
    /// cycle, or [`NEVER`] when no slot posted one.
    pub fn commit(&self) -> u64 {
        self.lanes.iter().fold(NEVER, |acc, &w| acc.min(w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stage_commits_never() {
        let mut s = WakeStage::new();
        s.reset(4);
        assert_eq!(s.slots(), 4);
        assert_eq!(s.commit(), NEVER);
    }

    #[test]
    fn commit_is_min_across_lanes() {
        let mut s = WakeStage::new();
        s.reset(4);
        s.post(3, 90);
        s.post(1, 12);
        s.post(2, 30);
        assert_eq!(s.commit(), 12);
    }

    #[test]
    fn post_keeps_earliest_per_lane() {
        let mut s = WakeStage::new();
        s.reset(2);
        s.post(0, 50);
        s.post(0, 20);
        s.post(0, 60);
        assert_eq!(s.commit(), 20);
    }

    #[test]
    fn reset_clears_and_resizes() {
        let mut s = WakeStage::new();
        s.reset(2);
        s.post(0, 5);
        s.reset(8);
        assert_eq!(s.slots(), 8);
        assert_eq!(s.commit(), NEVER);
    }

    #[test]
    fn lanes_mut_exposes_every_lane() {
        let mut s = WakeStage::new();
        s.reset(3);
        s.lanes_mut()[1] = 7;
        assert_eq!(s.commit(), 7);
    }
}
