//! The five TileLink channel message types, including the paper's extensions.
//!
//! Channels and their roles (§2.2, Fig. 1):
//!
//! * **A** (client → manager): `Acquire` — ask for a copy / more permission.
//! * **B** (manager → client): `Probe` — modify or revoke a client's
//!   permission.
//! * **C** (client → manager): `ProbeAck[Data]`, `Release[Data]`, and the
//!   paper's `RootRelease{Flush,Clean}[Data]` (§5.1).
//! * **D** (manager → client): `Grant[Data]` (with the Skip It
//!   `GrantDataDirty` flavour, §6), `ReleaseAck` (with the `ROOT` parameter
//!   for `RootReleaseAck`).
//! * **E** (client → manager): `GrantAck`.

use crate::line::{LineAddr, LineData};
use crate::perm::{Cap, Grow, Shrink};
use std::fmt;

/// Identifies a client agent (an L1 cache / core index) on a link.
pub type AgentId = usize;

/// The cache-block operations of the RISC-V CMO extension (§2.6). The
/// paper implements `CBO.CLEAN` and `CBO.FLUSH`; this reproduction also
/// carries the extension's third operation, `CBO.INVAL`, through the same
/// machinery.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WritebackKind {
    /// `CBO.CLEAN`: non-invalidating writeback — dirty data reaches memory,
    /// copies stay valid.
    Clean,
    /// `CBO.FLUSH`: invalidating writeback — dirty data reaches memory and
    /// every cached copy is invalidated.
    Flush,
    /// `CBO.INVAL`: invalidate every cached copy *without* writing dirty
    /// data back — memory may be left stale (the CMO spec's discard
    /// semantics).
    Inval,
}

impl WritebackKind {
    /// Whether this operation invalidates cached copies.
    pub fn invalidates(self) -> bool {
        matches!(self, WritebackKind::Flush | WritebackKind::Inval)
    }

    /// Whether dirty data travels to memory (false for the discarding
    /// `CBO.INVAL`).
    pub fn writes_back(self) -> bool {
        !matches!(self, WritebackKind::Inval)
    }
}

impl WritebackKind {
    /// The §5.1 encoding parameter name (`ProbeAck` param on silicon),
    /// used as the opcode parameter in traces.
    pub fn param(self) -> &'static str {
        match self {
            WritebackKind::Clean => ".CLEAN",
            WritebackKind::Flush => ".FLUSH",
            WritebackKind::Inval => ".INVAL",
        }
    }
}

impl fmt::Display for WritebackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            WritebackKind::Clean => "CBO.CLEAN",
            WritebackKind::Flush => "CBO.FLUSH",
            WritebackKind::Inval => "CBO.INVAL",
        })
    }
}

/// The flavour of a data-bearing grant (channel D).
///
/// `GrantDataDirty` is the paper's new TL-D message (§6): functionally
/// identical to `GrantData`, but it tells the receiving L1 that the line is
/// *not persisted* (dirty somewhere above), so the L1 must leave its skip bit
/// unset. `GrantData` signals the line is persisted, so the skip bit is set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GrantFlavor {
    /// The line is persisted in main memory (L2 holds it clean).
    Clean,
    /// The line is dirty in the L2 — it is not persisted (`GrantDataDirty`).
    Dirty,
}

/// Channel A: client requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChannelA {
    /// Obtain a copy of (or more permission to) a cache line.
    AcquireBlock {
        /// Requesting client.
        source: AgentId,
        /// The line being acquired.
        addr: LineAddr,
        /// Requested permission growth.
        grow: Grow,
    },
}

impl ChannelA {
    /// The line this message concerns.
    pub fn addr(&self) -> LineAddr {
        match *self {
            ChannelA::AcquireBlock { addr, .. } => addr,
        }
    }

    /// Opcode/param description for traces.
    pub fn describe(&self) -> skipit_trace::MsgDesc {
        match *self {
            ChannelA::AcquireBlock { addr, grow, .. } => skipit_trace::MsgDesc {
                opcode: "AcquireBlock",
                param: grow.name(),
                addr: addr.base(),
            },
        }
    }
}

/// Channel B: manager-initiated probes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChannelB {
    /// Downgrade the client's permission on `addr` to at most `cap`.
    Probe {
        /// Probed client.
        target: AgentId,
        /// The probed line.
        addr: LineAddr,
        /// New permission ceiling.
        cap: Cap,
    },
}

impl ChannelB {
    /// The line this message concerns.
    pub fn addr(&self) -> LineAddr {
        match *self {
            ChannelB::Probe { addr, .. } => addr,
        }
    }

    /// Opcode/param description for traces.
    pub fn describe(&self) -> skipit_trace::MsgDesc {
        match *self {
            ChannelB::Probe { addr, cap, .. } => skipit_trace::MsgDesc {
                opcode: "Probe",
                param: cap.name(),
                addr: addr.base(),
            },
        }
    }
}

/// Channel C: client responses and voluntary releases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChannelC {
    /// Response to a `Probe`; carries dirty data when the client held the
    /// line modified.
    ProbeAck {
        /// Responding client.
        source: AgentId,
        /// The probed line.
        addr: LineAddr,
        /// Permission transition performed.
        shrink: Shrink,
        /// Dirty data being written upward, if any.
        data: Option<LineData>,
    },
    /// Voluntary downgrade (e.g. an L1 eviction through the writeback unit).
    Release {
        /// Releasing client.
        source: AgentId,
        /// The released line.
        addr: LineAddr,
        /// Permission transition performed.
        shrink: Shrink,
        /// Dirty data being written upward, if any.
        data: Option<LineData>,
    },
    /// The paper's `RootReleaseFlush` / `RootReleaseClean` (§5.1): a request
    /// from an L1 flush unit that `addr` be written back all the way to main
    /// memory. On silicon this is encoded as `ProbeAck` with parameter
    /// `FLUSH` / `CLEAN`.
    ///
    /// Sent even on an L1 miss — the line may still be dirty in other cores
    /// or in higher cache levels (§5.2).
    RootRelease {
        /// Requesting client.
        source: AgentId,
        /// The line to write back to memory.
        addr: LineAddr,
        /// Flush (invalidating) or clean (non-invalidating).
        kind: WritebackKind,
        /// Dirty data from the requesting L1, if it held the line modified.
        data: Option<LineData>,
    },
}

impl ChannelC {
    /// The line this message concerns.
    pub fn addr(&self) -> LineAddr {
        match *self {
            ChannelC::ProbeAck { addr, .. }
            | ChannelC::Release { addr, .. }
            | ChannelC::RootRelease { addr, .. } => addr,
        }
    }

    /// The sending client.
    pub fn source(&self) -> AgentId {
        match *self {
            ChannelC::ProbeAck { source, .. }
            | ChannelC::Release { source, .. }
            | ChannelC::RootRelease { source, .. } => source,
        }
    }

    /// Whether the message carries a data payload (affects beat count).
    pub fn has_data(&self) -> bool {
        match *self {
            ChannelC::ProbeAck { data, .. }
            | ChannelC::Release { data, .. }
            | ChannelC::RootRelease { data, .. } => data.is_some(),
        }
    }

    /// Opcode/param description for traces.
    pub fn describe(&self) -> skipit_trace::MsgDesc {
        let (opcode, param) = match *self {
            ChannelC::ProbeAck {
                shrink,
                data: Some(_),
                ..
            } => ("ProbeAckData", shrink.name()),
            ChannelC::ProbeAck { shrink, .. } => ("ProbeAck", shrink.name()),
            ChannelC::Release {
                shrink,
                data: Some(_),
                ..
            } => ("ReleaseData", shrink.name()),
            ChannelC::Release { shrink, .. } => ("Release", shrink.name()),
            ChannelC::RootRelease {
                kind,
                data: Some(_),
                ..
            } => ("RootReleaseData", kind.param()),
            ChannelC::RootRelease { kind, .. } => ("RootRelease", kind.param()),
        };
        skipit_trace::MsgDesc {
            opcode,
            param,
            addr: self.addr().base(),
        }
    }
}

/// Channel D: manager responses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChannelD {
    /// Grant of permission (and usually data) in response to an `Acquire`.
    Grant {
        /// Receiving client.
        target: AgentId,
        /// The granted line.
        addr: LineAddr,
        /// `true` grants Trunk (write) permission, `false` grants Branch.
        is_trunk: bool,
        /// The line contents.
        data: LineData,
        /// `GrantData` vs `GrantDataDirty` (§6): persistence status of the
        /// line as known by the L2, used to maintain the L1 skip bit.
        flavor: GrantFlavor,
    },
    /// Acknowledges a `Release` — or, with `root == true`, a `RootRelease`
    /// (the paper's `RootReleaseAck`, encoded as `ReleaseAck` with parameter
    /// `ROOT`, §5.1).
    ReleaseAck {
        /// Receiving client.
        target: AgentId,
        /// The released line.
        addr: LineAddr,
        /// Whether this acknowledges a `RootRelease` (writeback reached main
        /// memory) rather than an ordinary `Release`.
        root: bool,
    },
}

impl ChannelD {
    /// The line this message concerns.
    pub fn addr(&self) -> LineAddr {
        match *self {
            ChannelD::Grant { addr, .. } | ChannelD::ReleaseAck { addr, .. } => addr,
        }
    }

    /// The receiving client.
    pub fn target(&self) -> AgentId {
        match *self {
            ChannelD::Grant { target, .. } | ChannelD::ReleaseAck { target, .. } => target,
        }
    }

    /// Whether the message carries a data payload (affects beat count).
    pub fn has_data(&self) -> bool {
        matches!(self, ChannelD::Grant { .. })
    }

    /// Opcode/param description for traces.
    pub fn describe(&self) -> skipit_trace::MsgDesc {
        let (opcode, param) = match *self {
            ChannelD::Grant {
                flavor: GrantFlavor::Dirty,
                is_trunk,
                ..
            } => ("GrantDataDirty", if is_trunk { "toT" } else { "toB" }),
            ChannelD::Grant { is_trunk, .. } => ("GrantData", if is_trunk { "toT" } else { "toB" }),
            ChannelD::ReleaseAck { root: true, .. } => ("ReleaseAck", ".ROOT"),
            ChannelD::ReleaseAck { .. } => ("ReleaseAck", ""),
        };
        skipit_trace::MsgDesc {
            opcode,
            param,
            addr: self.addr().base(),
        }
    }
}

/// Channel E: final acknowledgement of a grant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChannelE {
    /// Client acknowledges reception of a `Grant`, completing the Acquire
    /// transaction (Fig. 1).
    GrantAck {
        /// Acknowledging client.
        source: AgentId,
        /// The granted line.
        addr: LineAddr,
    },
}

impl ChannelE {
    /// Opcode/param description for traces.
    pub fn describe(&self) -> skipit_trace::MsgDesc {
        match *self {
            ChannelE::GrantAck { addr, .. } => skipit_trace::MsgDesc {
                opcode: "GrantAck",
                param: "",
                addr: addr.base(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writeback_kind_invalidates() {
        assert!(WritebackKind::Flush.invalidates());
        assert!(!WritebackKind::Clean.invalidates());
        assert_eq!(WritebackKind::Clean.to_string(), "CBO.CLEAN");
    }

    #[test]
    fn channel_c_accessors() {
        let a = LineAddr::new(0x1000);
        let m = ChannelC::RootRelease {
            source: 3,
            addr: a,
            kind: WritebackKind::Flush,
            data: Some(LineData::zeroed()),
        };
        assert_eq!(m.addr(), a);
        assert_eq!(m.source(), 3);
        assert!(m.has_data());

        let r = ChannelC::Release {
            source: 1,
            addr: a,
            shrink: Shrink::TtoN,
            data: None,
        };
        assert!(!r.has_data());
    }

    #[test]
    fn channel_d_accessors() {
        let a = LineAddr::new(0x40);
        let g = ChannelD::Grant {
            target: 2,
            addr: a,
            is_trunk: true,
            data: LineData::zeroed(),
            flavor: GrantFlavor::Dirty,
        };
        assert_eq!(g.target(), 2);
        assert!(g.has_data());
        let ack = ChannelD::ReleaseAck {
            target: 2,
            addr: a,
            root: true,
        };
        assert!(!ack.has_data());
        assert_eq!(ack.addr(), a);
    }
}
