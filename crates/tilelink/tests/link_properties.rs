//! Property-based tests of the [`Link`] timing model: FIFO order, latency
//! lower bounds, and beat-accurate serialization hold for arbitrary
//! push/pop schedules.

use proptest::prelude::*;
use skipit_tilelink::{ChannelC, LineAddr, LineData, Link, WritebackKind, LINE_BEATS};

fn msg(n: u64, with_data: bool) -> ChannelC {
    ChannelC::RootRelease {
        source: 0,
        addr: LineAddr::new(n * 64),
        kind: WritebackKind::Clean,
        data: with_data.then(LineData::zeroed),
    }
}

proptest! {
    /// Messages always pop in push order, never earlier than
    /// `push_time + latency + beats - 1`, and no two messages complete in
    /// the same cycle (the bus carries one beat per cycle).
    #[test]
    fn fifo_latency_and_serialization(
        latency in 0u64..5,
        gaps in prop::collection::vec(0u64..6, 1..20),
        data_flags in prop::collection::vec(any::<bool>(), 20),
    ) {
        let mut link: Link<ChannelC> = Link::new(latency, 64);
        let mut now = 0;
        let mut pushes = Vec::new();
        for (i, gap) in gaps.iter().enumerate() {
            now += gap;
            let with_data = data_flags[i % data_flags.len()];
            link.push(now, msg(i as u64, with_data));
            pushes.push((now, i as u64, with_data));
        }
        // Drain cycle by cycle; at most one arrival per cycle.
        let mut t = 0;
        let mut popped = Vec::new();
        let mut last_arrival = None;
        while popped.len() < pushes.len() {
            prop_assert!(t < 10_000, "drain did not terminate");
            if let Some(m) = link.pop(t) {
                let ChannelC::RootRelease { addr, .. } = m else { unreachable!() };
                popped.push((t, addr.base() / 64));
                prop_assert_ne!(Some(t), last_arrival, "two arrivals in one cycle");
                last_arrival = Some(t);
            }
            t += 1;
        }
        // FIFO order and latency bounds.
        for (k, &(arrived, id)) in popped.iter().enumerate() {
            let (pushed, pid, with_data) = pushes[k];
            prop_assert_eq!(id, pid, "out of order");
            let beats = if with_data { LINE_BEATS } else { 1 };
            prop_assert!(
                arrived >= pushed + latency + beats - 1,
                "msg {pid} arrived at {arrived}, pushed {pushed}, latency \
                 {latency}, beats {beats}"
            );
        }
    }

    /// `len`/`is_empty`/`can_push` agree with the number of buffered
    /// messages under any schedule.
    #[test]
    fn occupancy_accounting(ops in prop::collection::vec(any::<bool>(), 1..60)) {
        let cap = 8;
        let mut link: Link<ChannelC> = Link::new(1, cap);
        let mut expected = 0usize;
        let mut now = 0;
        let mut pushed = 0u64;
        for push in ops {
            now += 1;
            if push && link.can_push() {
                link.push(now, msg(pushed, false));
                pushed += 1;
                expected += 1;
            } else if !push && link.pop(now + 100).is_some() {
                // (popping far in the future makes anything buffered ready —
                // but pop uses the given clock only for readiness, so use a
                // fresh query below instead.)
                expected -= 1;
            }
            prop_assert_eq!(link.len(), expected);
            prop_assert_eq!(link.is_empty(), expected == 0);
            prop_assert_eq!(link.can_push(), expected < cap);
        }
    }
}
