//! The cycle-stepped multicore system: N BOOM-style cores with private L1
//! data caches, a shared inclusive L2, and DRAM (the §7.1 platform).

use crate::handle::{Cmd, CoreHandle, Resp};
use crate::lsu::{Lsu, LsuConfig};
use crate::op::{Op, OpToken};
use crate::workload::{CapturedOp, RunReport, TimedOp, Workload};
use crossbeam::channel::{unbounded, Receiver, Sender};
use skipit_dcache::{DataCache, L1Config, L1Stats};
use skipit_llc::{InclusiveCache, L2Config, L2Ports, L2Stats};
use skipit_mem::{Dram, DramConfig, MemStats};
use skipit_tilelink::perturb::link_site;
use skipit_tilelink::{ChannelA, ChannelB, ChannelC, ChannelD, ChannelE, Link, PerturbConfig};
use skipit_trace::{
    CoreCounters, StreamEvent, Telemetry, TelemetryCounters, TraceConfig, TraceEvent, TraceFilter,
    TraceSink,
};

/// Which simulation engine advances the clock. All engines produce
/// bit-identical elapsed cycles, statistics, durable memory images and
/// trace-event streams (modulo [`TraceEvent::is_engine_event`] jump
/// markers); they differ only in host time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EngineKind {
    /// One full component sweep per simulated cycle — the reference engine.
    Naive,
    /// PR 1's global gate: plan every cycle, jump over globally idle
    /// windows, and step only the components whose gate fired inside busy
    /// cycles. Still walks every gate predicate each busy cycle.
    GlobalGate,
    /// Per-component delta-stepping: every subsystem registers its own
    /// due-cycle in an event wheel and is stepped only when due, even while
    /// other components are busy. Cross-component handoffs (TileLink
    /// pushes/pops, probe interlocks, frontend issue) re-arm the receiver's
    /// slot as they happen, so no planning pass walks idle components. See
    /// DESIGN.md §5 "Clocking".
    #[default]
    ComponentWheel,
    /// The component wheel with its per-cycle core phase partitioned
    /// across a persistent host-thread pool ([`crate::pool::WheelPool`]):
    /// the L2+DRAM slot steps serially first (its same-cycle effects are
    /// observable by the cores, exactly as in serial order), then the due
    /// core slots step in parallel — each slot owns its L1+LSU and its
    /// five per-core links outright, and wake edges toward the L2 are
    /// buffered in per-slot staging lanes
    /// ([`skipit_tilelink::staged::WakeStage`]) merged in fixed slot order
    /// at the cycle barrier — then frontends step serially. Observable
    /// behavior is bit-identical to [`EngineKind::ComponentWheel`] at any
    /// thread count; cycles with fewer due core slots than
    /// [`PARALLEL_MIN_DUE`] fall back to serial stepping so quiescent
    /// workloads keep the full fast-forward win. Thread count comes from
    /// [`SystemConfig::engine_threads`].
    ParallelWheel,
}

/// Configuration of the whole simulated SoC.
#[derive(Clone, Copy, Debug)]
pub struct SystemConfig {
    /// Number of cores (each with a private L1 D-cache).
    pub cores: usize,
    /// Per-core L1 configuration (including the Skip It switch).
    pub l1: L1Config,
    /// Shared L2 configuration.
    pub l2: L2Config,
    /// DRAM timing.
    pub dram: DramConfig,
    /// Wire latency of every TileLink channel hop (cycles).
    pub link_latency: u64,
    /// Buffering per channel (messages).
    pub link_capacity: usize,
    /// Frontend issue width (ops entering the LSU per cycle).
    pub issue_width: usize,
    /// LSU sizing.
    pub lsu: LsuConfig,
    /// Simulation engine. Elapsed cycles and statistics are bit-identical
    /// across all variants; [`EngineKind::Naive`] reproduces the reference
    /// one-cycle-at-a-time stepping.
    pub engine: EngineKind,
    /// Debug aid for the fast engines: re-verify every claimed-idle window
    /// with the naive engine (panicking on the first cycle whose state
    /// differs from the window start), and — under the component wheel —
    /// recheck every skipped component's due-bound each executed cycle (a
    /// missed wake edge panics). Expensive — intended for tests.
    pub lockstep_oracle: bool,
    /// Seeded adversarial perturbation (arbitration jitter on the TileLink
    /// channels, flush-dispatch hold-off, L2 MSHR rotation). The default is
    /// inert: every delay amplitude zero, rotation off — the system is then
    /// bit-identical to an unperturbed one. See
    /// [`skipit_tilelink::PerturbConfig`].
    pub perturb: PerturbConfig,
    /// Host threads for [`EngineKind::ParallelWheel`]'s intra-cycle core
    /// phase. `0` (the default) resolves lazily at the first parallel
    /// cycle: `SKIPIT_ENGINE_THREADS` if set — panicking on unparseable or
    /// zero values, like `SKIPIT_SWEEP_THREADS` — else the host's available
    /// parallelism. The resolved count is clamped to the core count (one
    /// thread per core slot is the maximum useful parallelism). Ignored by
    /// the serial engines.
    pub engine_threads: usize,
}

impl Default for SystemConfig {
    /// The paper's evaluation platform (§7.1): dual-core, 32 KiB L1s,
    /// 512 KiB shared L2.
    fn default() -> Self {
        SystemConfig {
            cores: 2,
            l1: L1Config::default(),
            l2: L2Config::default(),
            dram: DramConfig::default(),
            link_latency: 1,
            link_capacity: 8,
            issue_width: 2,
            lsu: LsuConfig::default(),
            engine: EngineKind::default(),
            lockstep_oracle: false,
            perturb: PerturbConfig::default(),
            engine_threads: 0,
        }
    }
}

/// Counters of the event-driven engine itself (host-side bookkeeping, not
/// part of the simulated machine's statistics — [`SystemStats`] is identical
/// whether or not fast-forwarding is enabled).
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// Simulated cycles the engine never executed (jumped over).
    pub skipped_cycles: u64,
    /// Number of fast-forward jumps taken.
    pub jumps: u64,
    /// Component steps a gated engine actually executed (the L2+DRAM pair
    /// counts as one component, each core's L1+LSU pair as one; frontends
    /// are excluded — they run every executed cycle).
    pub component_steps: u64,
    /// Component-step opportunities the naive engine would have burned:
    /// `1 + cores` per simulated cycle, jumped-over cycles included.
    pub component_slots: u64,
    /// Host wall-time attribution of the wheel engines' per-cycle phases
    /// (all zero unless the `profile` feature is compiled in).
    pub phase: PhaseProfile,
}

/// Equality deliberately ignores [`EngineStats::phase`]: wall-time
/// attribution is a property of the *host run*, not of the simulated
/// machine, and the cross-engine / cross-thread-count bit-identity
/// contracts compare `EngineStats` values.
impl PartialEq for EngineStats {
    fn eq(&self, other: &Self) -> bool {
        (
            self.skipped_cycles,
            self.jumps,
            self.component_steps,
            self.component_slots,
        ) == (
            other.skipped_cycles,
            other.jumps,
            other.component_steps,
            other.component_slots,
        )
    }
}

impl Eq for EngineStats {}

/// Per-phase host wall-time attribution of the wheel engines (the
/// `profile` feature; see [`crate::prof`]). An executed wheel cycle has
/// three phases in fixed order — the serial L2+DRAM step, the (possibly
/// parallel) core phase, and the serial frontend sweep — so the measured
/// serial share of the busy-cycle loop is exactly the Amdahl term bounding
/// [`EngineKind::ParallelWheel`]'s possible speedup.
///
/// All fields are zero when the `profile` feature is compiled out (the
/// default), when a non-wheel engine ran, or before any cycle executed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Wall nanoseconds in the serial L2 + DRAM phase (includes the wake-edge
    /// scan and the L2 slot re-arm).
    pub serial_ns: u64,
    /// Wall nanoseconds in the core phase (parallel dispatch, stepping and
    /// the cycle barrier under [`EngineKind::ParallelWheel`]; the serial
    /// core-slot loop otherwise).
    pub core_ns: u64,
    /// Wall nanoseconds in the frontend sweep + slot re-arms.
    pub frontend_ns: u64,
    /// Wall nanoseconds the dispatching thread spent spinning on the
    /// cycle barrier waiting for workers to finish (a subset of
    /// [`PhaseProfile::core_ns`]; zero when the pool never dispatched).
    pub barrier_ns: u64,
    /// Wall nanoseconds worker threads spent waiting for the next epoch
    /// dispatch, summed across workers (idle-worker time, not part of
    /// the caller-observed phase times above).
    pub worker_wait_ns: u64,
}

impl PhaseProfile {
    /// Total attributed busy-cycle wall time.
    pub fn total_ns(&self) -> u64 {
        self.serial_ns + self.core_ns + self.frontend_ns
    }

    /// Measured serial fraction of the busy-cycle loop — the Amdahl bound:
    /// `(serial_ns + frontend_ns) / total_ns`. The core phase is counted
    /// as the parallelizable part even when it ran serially (the point of
    /// the measurement is to predict what parallelizing it can buy).
    /// `None` until any phase time was recorded.
    pub fn serial_fraction(&self) -> Option<f64> {
        let total = self.total_ns();
        (total > 0).then(|| (self.serial_ns + self.frontend_ns) as f64 / total as f64)
    }

    /// Speedup of the busy-cycle loop Amdahl's law predicts at `threads`
    /// threads, from the measured serial fraction. `None` until any phase
    /// time was recorded.
    pub fn predicted_speedup(&self, threads: usize) -> Option<f64> {
        let s = self.serial_fraction()?;
        Some(1.0 / (s + (1.0 - s) / threads.max(1) as f64))
    }
}

impl EngineStats {
    /// Percentage of component-step work skipped — the per-component
    /// generalization of whole-cycle `skipped_cycles`: a cycle where only
    /// the L2 steps on an 8-core system skips 8 of 9 slots even though the
    /// cycle itself executed. `None` until an engine that tracks slots
    /// (global gate or component wheel) has run.
    pub fn component_skipped_pct(&self) -> Option<f64> {
        (self.component_slots > 0)
            .then(|| 100.0 * (1.0 - self.component_steps as f64 / self.component_slots as f64))
    }
}

/// Per-cycle execution plan of the fast engine: which components have a
/// gate firing at the current cycle (see [`System::plan_tick`]). A cleared
/// gate means the component's step is provably a no-op this cycle.
#[derive(Default)]
struct TickPlan {
    /// Step the shared L2 (and with it the DRAM controller).
    l2: bool,
    /// Bitmask of cores (L1 + LSU pairs) to step.
    cores: u64,
    /// Some frontend has an issue/rendezvous event due now.
    frontend: bool,
    /// Minimum future event time across all components — the fast engine's
    /// jump target. Only meaningful when no gate fired; `None` means only
    /// an external worker command can create work.
    bound: Option<u64>,
    /// Gates of the sources whose event time equals `bound`. Because no
    /// state changes during a jump, these are exactly the gates that fire
    /// at the jump target, so the post-jump cycle needs no second planning
    /// pass.
    bound_l2: bool,
    bound_cores: u64,
    bound_frontend: bool,
}

impl TickPlan {
    fn any(&self) -> bool {
        self.l2 || self.cores != 0 || self.frontend
    }

    /// Folds a future event at `t` into the bound, remembering which
    /// component gates to run if `t` ends up being the jump target.
    fn merge_future(&mut self, t: u64, l2: bool, cores: u64, frontend: bool) {
        match self.bound {
            Some(b) if b < t => {}
            Some(b) if b == t => {
                self.bound_l2 |= l2;
                self.bound_cores |= cores;
                self.bound_frontend |= frontend;
            }
            _ => {
                self.bound = Some(t);
                self.bound_l2 = l2;
                self.bound_cores = cores;
                self.bound_frontend = frontend;
            }
        }
    }
}

/// Due-cycle sentinel: no self-driven event; only a wake edge (or an
/// external worker command) can re-arm the slot.
const NEVER: u64 = u64::MAX;

/// A busy-streaking slot recomputes its real `next_event` bound on each of
/// its first `WHEEL_EAGER_PROBES` consecutive steps (so a slot that wakes,
/// acts once and has nothing further to do goes straight back to sleep) …
const WHEEL_EAGER_PROBES: u32 = 2;

/// … and every `WHEEL_PROBE_PERIOD` steps thereafter. Between probes the
/// slot is simply re-armed for the next cycle, which is always safe —
/// stepping a component with nothing to do is exactly what the naive
/// engine does everywhere, every cycle — and skips the expensive bound
/// walk that would otherwise be paid per step while the component is
/// genuinely busy. The cost is at most `WHEEL_PROBE_PERIOD - 1` redundant
/// steps when a streaking component goes idle.
const WHEEL_PROBE_PERIOD: u32 = 4;

/// Minimum due core slots in a cycle before [`EngineKind::ParallelWheel`]
/// dispatches the core phase to the thread pool; below this, the
/// pool-barrier overhead (an unpark plus two fence round trips, single-digit
/// microseconds) exceeds the stepping work and the cycle runs serially.
/// Serialized workloads — where at most one or two slots are ever due —
/// therefore never pay for the pool and keep their fast-forward win.
pub const PARALLEL_MIN_DUE: usize = 3;

/// The component-wheel scheduler's state (host-side bookkeeping only — never
/// part of the simulated machine's state or the oracle digest). One due
/// cycle per component slot; a slot is stepped only on cycles where its due
/// value has been reached, and re-armed from its own `next_event` bound
/// after stepping plus explicit wake edges from its neighbors (see
/// [`System::tick_wheel`]).
#[derive(Default)]
struct Wheel {
    /// Whether the due values below describe the current state. Cleared by
    /// every code path that mutates simulated state outside the wheel's
    /// view (naive/gated ticks, direct DRAM pokes, frontend installs).
    valid: bool,
    /// Due cycle of the L2 + DRAM slot.
    due_l2: u64,
    /// Due cycle of each core's L1 + LSU slot.
    due_comp: Vec<u64>,
    /// Due cycle of each core's frontend (tracked separately so a
    /// rendezvous-paced frontend does not force its whole core slot — and
    /// the L1 `next_event` walk that re-arms it — every executed cycle).
    due_fe: Vec<u64>,
    /// Reusable per-core scratch for the L2 phase's link-condition
    /// snapshots (`[b_empty, d_empty, a_can_push, c_can_push,
    /// e_can_push]`).
    scratch: Vec<[bool; 5]>,
    /// Consecutive executed steps of each core slot since it last slept or
    /// was woken; drives the [`WHEEL_PROBE_PERIOD`] bound-walk hysteresis.
    streak_comp: Vec<u32>,
    /// Same, for the L2 + DRAM slot.
    streak_l2: u32,
    /// Reusable scratch listing the core slots due this cycle, in core
    /// order (the parallel engine's work list; built before dispatch so the
    /// partition is fixed regardless of thread count).
    par_due: Vec<u32>,
    /// Per-slot staging lanes for core→L2 wake edges during the parallel
    /// core phase, merged in fixed slot order at the cycle barrier.
    wake_stage: skipit_tilelink::staged::WakeStage,
}

impl Wheel {
    /// Earliest due cycle across every slot ([`NEVER`] when all slots are
    /// blocked on external input).
    fn next_due(&self) -> u64 {
        let mut t = self.due_l2;
        for &d in &self.due_comp {
            t = t.min(d);
        }
        for &d in &self.due_fe {
            t = t.min(d);
        }
        t
    }
}

/// The state partition one core slot owns while it steps: its L1 + LSU,
/// its five per-core link endpoints, and its wheel bookkeeping. In serial
/// engines this is just a borrow split of [`System`]; in the parallel
/// engine each worker thread holds exactly one lane per due slot
/// (disjoint by construction), which is what makes lock-free intra-cycle
/// parallelism sound — see [`skipit_tilelink::staged`] for the contract.
struct CoreLane<'a> {
    a: &'a mut Link<ChannelA>,
    b: &'a mut Link<ChannelB>,
    c: &'a mut Link<ChannelC>,
    d: &'a mut Link<ChannelD>,
    e: &'a mut Link<ChannelE>,
    l1: &'a mut DataCache,
    lsu: &'a mut Lsu,
    due: &'a mut u64,
    streak: &'a mut u32,
}

/// Steps one due core slot and re-arms its due bound from lane-local state
/// only; returns the slot's wake edge toward the L2 ([`NEVER`] when none).
/// Single body shared by the serial core loop and the parallel workers, so
/// the two cannot drift apart.
fn step_core_lane(now: u64, l2_sleeping: bool, lane: CoreLane<'_>) -> u64 {
    let CoreLane {
        a,
        b,
        c,
        d,
        e,
        l1,
        lsu,
        due,
        streak,
    } = lane;
    let a_empty = l2_sleeping && a.is_empty();
    let c_empty = l2_sleeping && c.is_empty();
    let e_empty = l2_sleeping && e.is_empty();
    let b_can = !l2_sleeping || b.can_push();
    let d_can = !l2_sleeping || d.can_push();
    {
        let mut ports = skipit_dcache::L1Ports {
            a: &mut *a,
            b: &mut *b,
            c: &mut *c,
            d: &mut *d,
            e: &mut *e,
        };
        l1.step(now, &mut ports);
    }
    lsu.step(now, l1);
    // Mirror image of the L2 phase's edges; the L2 cannot act on either
    // before the next cycle (it steps first).
    let mut wake = NEVER;
    if a_empty {
        if let Some(t) = a.next_ready() {
            wake = wake.min(t);
        }
    }
    if c_empty {
        if let Some(t) = c.next_ready() {
            wake = wake.min(t);
        }
    }
    if e_empty {
        if let Some(t) = e.next_ready() {
            wake = wake.min(t);
        }
    }
    if (!b_can && b.can_push()) || (!d_can && d.can_push()) {
        wake = wake.min(now + 1);
    }
    *streak += 1;
    *due = if *streak <= WHEEL_EAGER_PROBES || streak.is_multiple_of(WHEEL_PROBE_PERIOD) {
        let next = core_lane_due(now, a, b, c, d, e, l1, lsu).max(now + 1);
        if next > now + 1 {
            *streak = 0;
        }
        next
    } else {
        now + 1
    };
    wake
}

/// Lane-form of [`System::core_comp_due`]: the slot's self-contained due
/// bound from lane-local state only.
#[allow(clippy::too_many_arguments)]
fn core_lane_due(
    now: u64,
    a: &Link<ChannelA>,
    b: &Link<ChannelB>,
    c: &Link<ChannelC>,
    d: &Link<ChannelD>,
    e: &Link<ChannelE>,
    l1: &DataCache,
    lsu: &Lsu,
) -> u64 {
    let mut due = NEVER;
    // An inbound Grant wakes the core at head arrival.
    if let Some(t) = d.next_ready() {
        due = due.min(t);
    }
    // An inbound Probe only while the probe unit can sink it; the
    // L1 transition freeing the unit re-raises the head on re-arm.
    // Not collapsible into the arm guard: an arrived-but-unsinkable head
    // must arm *nothing* (the L1 transition freeing the probe unit
    // re-raises it), while the guard's fallthrough would arm `t`.
    #[allow(clippy::collapsible_match)]
    match b.next_ready() {
        Some(t) if t <= now => {
            if l1.probe_rdy() {
                due = due.min(t);
            }
        }
        Some(t) => due = due.min(t),
        None => {}
    }
    // Unlike `plan_tick`, outbound readiness is plain `can_push`: a
    // head the L2 pops this cycle frees a slot usable the same cycle,
    // but that arrives as an explicit pop wake edge from the L2 phase
    // (the wheel never speculates about a neighbor's step).
    if let Some(t) = l1.next_event(now, a.can_push(), c.can_push(), e.can_push()) {
        due = due.min(t);
    }
    if let Some(t) = lsu.next_event(now, l1) {
        due = due.min(t);
    }
    due
}

/// Raw-pointer view of the per-core state the parallel core phase steps,
/// shared read-only across worker threads; every dereference lands in a
/// distinct core's lane (see [`ParCoreCtx::step`]).
struct ParCoreCtx {
    a: *mut Link<ChannelA>,
    b: *mut Link<ChannelB>,
    c: *mut Link<ChannelC>,
    d: *mut Link<ChannelD>,
    e: *mut Link<ChannelE>,
    l1s: *mut DataCache,
    lsus: *mut Lsu,
    due_comp: *mut u64,
    streak_comp: *mut u32,
    /// Wake-stage lanes, indexed by core (not by work-list position).
    wake: *mut u64,
    due_list: *const u32,
    n: usize,
    threads: usize,
    now: u64,
    l2_sleeping: bool,
}

// SAFETY: the pointers target `System`-owned buffers that outlive the
// dispatch (the caller blocks on the pool barrier), and the dispatch
// protocol guarantees disjoint access: each work-list index is processed by
// exactly one thread, and distinct indices name distinct cores, so no two
// threads ever form references to the same element. All per-core payloads
// are `Send` (asserted in their crates).
unsafe impl Sync for ParCoreCtx {}

impl ParCoreCtx {
    /// Steps the `k`-th due core slot and stages its wake edge.
    ///
    /// # Safety
    ///
    /// `k < self.n`, and no other thread may process the same `k` during
    /// this dispatch (disjointness of the lanes relies on it).
    unsafe fn step(&self, k: usize) {
        // SAFETY: per the contract above, `i` is a valid core index owned
        // exclusively by this thread for the duration of the call, so the
        // references below are unique.
        unsafe {
            let i = *self.due_list.add(k) as usize;
            let wake = step_core_lane(
                self.now,
                self.l2_sleeping,
                CoreLane {
                    a: &mut *self.a.add(i),
                    b: &mut *self.b.add(i),
                    c: &mut *self.c.add(i),
                    d: &mut *self.d.add(i),
                    e: &mut *self.e.add(i),
                    l1: &mut *self.l1s.add(i),
                    lsu: &mut *self.lsus.add(i),
                    due: &mut *self.due_comp.add(i),
                    streak: &mut *self.streak_comp.add(i),
                },
            );
            *self.wake.add(i) = wake;
        }
    }
}

/// Parallel-stepping audit: a [`System`] (pool included) must stay
/// movable across host threads — the sweep runner depends on it.
#[allow(dead_code)]
fn _assert_system_send() {
    fn send<T: Send>() {}
    send::<System>();
    send::<crate::pool::WheelPool>();
}

/// Aggregated counters of a system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SystemStats {
    /// Current cycle.
    pub cycles: u64,
    /// Per-core L1 counters.
    pub l1: Vec<L1Stats>,
    /// L2 counters.
    pub l2: L2Stats,
    /// Memory counters.
    pub mem: MemStats,
}

impl SystemStats {
    /// Renders the counters as a human-readable report (used by examples
    /// and benchmark summaries).
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "cycles: {}", self.cycles);
        for (i, l1) in self.l1.iter().enumerate() {
            let _ = writeln!(
                out,
                "core {i}: loads {} (hits {}), stores {} (hits {}), amos {}, nacks {}",
                l1.loads, l1.load_hits, l1.stores, l1.store_hits, l1.amos, l1.nacks
            );
            let _ = writeln!(
                out,
                "  writebacks: enqueued {}, skipped(SkipIt) {}, coalesced {}, \
                 RootReleases {} ({} with data)",
                l1.writebacks_enqueued,
                l1.writebacks_skipped,
                l1.writebacks_coalesced,
                l1.root_releases_sent,
                l1.root_releases_with_data
            );
            let _ = writeln!(
                out,
                "  probes {} ({} with data), evictions {} ({} dirty), \
                 flush-entry fixups: probe {} / evict {}",
                l1.probes_handled,
                l1.probes_with_data,
                l1.evictions,
                l1.dirty_evictions,
                l1.flush_entries_probe_invalidated,
                l1.flush_entries_evict_invalidated
            );
        }
        let _ = writeln!(
            out,
            "L2: acquires {} (clean {}, dirty {}), RootRelease flush {} / clean {}, \
             DRAM writes {} (trivially skipped {}), probes {}, releases {}, \
             evictions {} ({} dirty), list-buffered {}",
            self.l2.acquires,
            self.l2.grants_clean,
            self.l2.grants_dirty,
            self.l2.root_release_flush,
            self.l2.root_release_clean,
            self.l2.root_release_dram_writes,
            self.l2.root_release_dram_skipped,
            self.l2.probes_sent,
            self.l2.releases,
            self.l2.evictions,
            self.l2.dirty_evictions,
            self.l2.list_buffered
        );
        let _ = writeln!(
            out,
            "DRAM: reads {}, writes {}",
            self.mem.reads, self.mem.writes
        );
        out
    }
}

enum Frontend {
    Idle,
    Program {
        ops: Vec<Op>,
        next: usize,
        nop_until: u64,
    },
    Thread {
        rx: Receiver<Cmd>,
        tx: Sender<Resp>,
        busy: Option<OpToken>,
        nop_until: Option<u64>,
        finished: bool,
    },
    /// Trace replay (see [`crate::workload::ReplaySchedule`]): like
    /// `Program`, but each op additionally waits for its recorded cycle
    /// (`base + ops[next].at`) before issuing.
    Replay {
        ops: Vec<TimedOp>,
        next: usize,
        nop_until: u64,
        /// Absolute cycle the run started at; stamps are relative to it.
        base: u64,
    },
}

/// The simulated SoC. See the [crate docs](crate) for the two drive modes.
pub struct System {
    cfg: SystemConfig,
    now: u64,
    lsus: Vec<Lsu>,
    l1s: Vec<DataCache>,
    l2: InclusiveCache,
    dram: Dram,
    frontends: Vec<Frontend>,
    next_token: OpToken,
    // Per-core channel links (L1 side index == core index).
    a: Vec<Link<ChannelA>>,
    b: Vec<Link<ChannelB>>,
    c: Vec<Link<ChannelC>>,
    d: Vec<Link<ChannelD>>,
    e: Vec<Link<ChannelE>>,
    /// Absolute cycle after which thread-mode responses carry `halted`.
    deadline: u64,
    /// Fast-forward engine bookkeeping.
    engine: EngineStats,
    /// Component-wheel scheduler state (see [`Wheel`]).
    wheel: Wheel,
    /// Persistent worker threads for [`EngineKind::ParallelWheel`], created
    /// lazily at the first parallel-eligible cycle (so serial engines and
    /// serialized workloads never spawn threads). Host-side only.
    pool: Option<crate::pool::WheelPool>,
    /// Event sink of the fast-forward engine itself
    /// ([`TraceEvent::FastForwardJump`] markers). Installed by
    /// [`System::set_trace`]; host-side, never part of simulated
    /// state.
    engine_sink: Option<TraceSink>,
    /// Interval telemetry sampler ([`TraceConfig::telemetry`]); host-side
    /// observation only, never part of simulated state or digests.
    telemetry: Option<Telemetry>,
    /// The tracing setup currently installed (see [`System::set_trace`]).
    trace_cfg: TraceConfig,
    /// Capture-mode buffer ([`System::start_capture`]): the committed
    /// memory-op stream of every frontend, in issue order. Host-side
    /// observation only — never part of simulated state, digests or
    /// snapshots, and recording changes nothing the simulation can see.
    capture: Option<Vec<CapturedOp>>,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("cores", &self.cfg.cores)
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

impl System {
    /// Builds a quiesced system.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.cores` is 0 or exceeds 32, or a sub-config is invalid.
    pub fn new(cfg: SystemConfig) -> Self {
        assert!((1..=32).contains(&cfg.cores), "1..=32 cores supported");
        macro_rules! links {
            () => {
                (0..cfg.cores)
                    .map(|_| Link::new(cfg.link_latency, cfg.link_capacity))
                    .collect()
            };
        }
        let mut sys = System {
            now: 0,
            lsus: (0..cfg.cores).map(|i| Lsu::new(i, cfg.lsu)).collect(),
            l1s: (0..cfg.cores).map(|i| DataCache::new(i, cfg.l1)).collect(),
            l2: InclusiveCache::new(cfg.cores, cfg.l2),
            dram: Dram::new(cfg.dram),
            frontends: (0..cfg.cores).map(|_| Frontend::Idle).collect(),
            next_token: 0,
            a: links!(),
            b: links!(),
            c: links!(),
            d: links!(),
            e: links!(),
            deadline: u64::MAX,
            engine: EngineStats::default(),
            wheel: Wheel::default(),
            pool: None,
            engine_sink: None,
            telemetry: None,
            trace_cfg: TraceConfig::off(),
            capture: None,
            cfg,
        };
        if cfg.perturb.is_active() {
            for i in 0..cfg.cores {
                sys.a[i].set_perturb(link_site('A', i), cfg.perturb);
                sys.b[i].set_perturb(link_site('B', i), cfg.perturb);
                sys.c[i].set_perturb(link_site('C', i), cfg.perturb);
                sys.d[i].set_perturb(link_site('D', i), cfg.perturb);
                sys.e[i].set_perturb(link_site('E', i), cfg.perturb);
                sys.l1s[i].set_perturb(cfg.perturb);
            }
            sys.l2.set_perturb(cfg.perturb);
        }
        sys
    }

    /// The current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Aggregated counters.
    pub fn stats(&self) -> SystemStats {
        SystemStats {
            cycles: self.now,
            l1: self.l1s.iter().map(|c| c.stats()).collect(),
            l2: self.l2.stats(),
            mem: self.dram.stats(),
        }
    }

    /// Counters of the fast-forward engine (cycles skipped, jumps taken,
    /// component steps/slots). All zero under [`EngineKind::Naive`].
    /// With the `profile` feature compiled in, [`EngineStats::phase`]
    /// carries the wheel engines' wall-time phase attribution, with the
    /// pool's barrier/worker wait counters folded in here (they accumulate
    /// in shared atomics while worker threads run).
    pub fn engine_stats(&self) -> EngineStats {
        let mut stats = self.engine;
        if let Some(pool) = &self.pool {
            let (caller, worker) = pool.wait_ns();
            stats.phase.barrier_ns = caller;
            stats.phase.worker_wait_ns = worker;
        }
        stats
    }

    /// The persisted memory image (what a crash-recovery procedure sees).
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// Direct (test/bench setup) access to memory. Invalidates the
    /// component wheel: a direct poke mutates state behind the scheduler's
    /// back, so its due bounds must be recomputed.
    pub fn dram_mut(&mut self) -> &mut Dram {
        self.wheel.valid = false;
        &mut self.dram
    }

    /// Per-core L1 peek helpers for tests and examples.
    pub fn l1(&self, core: usize) -> &DataCache {
        &self.l1s[core]
    }

    /// L2 peek helpers for tests and examples.
    pub fn l2(&self) -> &InclusiveCache {
        &self.l2
    }

    /// The persisted memory image a power failure *right now* would leave
    /// behind: every cache's contents are lost; only writes that DRAM has
    /// completed survive (§2.5). Non-consuming — the live system is
    /// untouched, so a crash-point explorer can snapshot many candidate
    /// failure instants from one simulation.
    pub fn durable_image(&self) -> Dram {
        self.dram.durable_image()
    }

    /// Starts capture mode: from now on every committed memory operation —
    /// from any frontend (program, thread or replay mode), on any engine —
    /// is recorded as a [`CapturedOp`] with its issuing core and the exact
    /// cycle it entered the LSU ([`Op::Nop`] think time included, so a
    /// replay reproduces trailing idle cycles too). This is the capture
    /// hook the trace-replay subsystem builds on: feed the buffer to
    /// `skipit_replay::MemTrace::from_capture` to obtain a portable trace.
    ///
    /// Capture is host-side observation only — it changes nothing the
    /// simulation can see, is excluded from digests and snapshots, and
    /// restarting it discards any previous buffer. Stop and harvest with
    /// [`System::take_capture`].
    pub fn start_capture(&mut self) {
        self.capture = Some(Vec::new());
    }

    /// Whether capture mode is active.
    pub fn capture_active(&self) -> bool {
        self.capture.is_some()
    }

    /// Stops capture mode and returns the recorded op stream, in issue
    /// order (empty if capture was never started).
    pub fn take_capture(&mut self) -> Vec<CapturedOp> {
        self.capture.take().unwrap_or_default()
    }

    /// Installs the tracing setup described by `cfg` — the single entry
    /// point for both tracing facilities:
    ///
    /// * [`TraceConfig::events`] installs cycle-stamped event-ring sinks on
    ///   every component (each LSU, L1 front end + flush unit, per-core
    ///   TileLink links, L2, DRAM, and the fast-forward engine), optionally
    ///   narrowed by [`TraceConfig::filter`]. Harvest with
    ///   [`System::trace_events`] or the exporters in [`crate::export`].
    /// * [`TraceConfig::latency`] starts per-op completion-latency
    ///   recording on every core (see [`crate::trace`],
    ///   [`System::trace_records`], [`System::latency_histograms`]).
    /// * [`TraceConfig::telemetry`] installs the interval counter-series
    ///   sampler (see [`Telemetry`], [`System::telemetry`],
    ///   [`System::telemetry_snapshot`]).
    ///
    /// Facilities absent from `cfg` are uninstalled, so
    /// `set_trace(TraceConfig::off())` returns the system to the
    /// zero-overhead untraced state. The call is idempotent: re-applying
    /// the currently installed setup leaves buffered events and records in
    /// place (use [`System::clear_event_trace`] / [`System::clear_traces`]
    /// to discard those).
    ///
    /// # Example
    ///
    /// ```
    /// use skipit_boom::{System, SystemConfig};
    /// use skipit_trace::TraceConfig;
    ///
    /// let mut sys = System::new(SystemConfig::default());
    /// sys.set_trace(TraceConfig::new().events(1 << 14).latency(1024));
    /// ```
    pub fn set_trace(&mut self, cfg: TraceConfig) {
        let cur = self.trace_cfg;
        if (cfg.event_capacity(), cfg.event_filter()) != (cur.event_capacity(), cur.event_filter())
        {
            match cfg.event_capacity() {
                Some(capacity) => self.install_event_sinks(capacity, cfg.event_filter()),
                None => self.uninstall_event_sinks(),
            }
        }
        if cfg.latency_capacity() != cur.latency_capacity() {
            match cfg.latency_capacity() {
                Some(capacity) => {
                    for lsu in &mut self.lsus {
                        lsu.enable_tracing(capacity);
                    }
                }
                None => {
                    for lsu in &mut self.lsus {
                        lsu.disable_tracing();
                    }
                }
            }
        }
        if (cfg.telemetry_interval(), cfg.telemetry_capacity())
            != (cur.telemetry_interval(), cur.telemetry_capacity())
        {
            self.telemetry = cfg.telemetry_interval().map(|interval| {
                Telemetry::new(
                    interval,
                    cfg.telemetry_capacity(),
                    self.now,
                    self.telemetry_counters(),
                )
            });
        }
        self.trace_cfg = cfg;
    }

    /// The tracing setup currently installed.
    pub fn trace_config(&self) -> TraceConfig {
        self.trace_cfg
    }

    /// Cumulative counters + gauges in the shape the telemetry sampler
    /// consumes. Pure observation of existing counters.
    fn telemetry_counters(&self) -> TelemetryCounters {
        TelemetryCounters {
            cores: (0..self.cfg.cores)
                .map(|i| {
                    let l1 = &self.l1s[i];
                    let s = l1.stats();
                    CoreCounters {
                        ops: s.loads + s.stores + s.amos,
                        mshr_occupancy: l1.mshr_occupancy() as u64,
                        fshr_occupancy: l1.fshr_occupancy() as u64,
                        flush_queue_depth: l1.flush_queue_depth() as u64,
                        skips: s.writebacks_skipped,
                        enqueued: s.writebacks_enqueued,
                        link_pushed: [
                            self.a[i].pushed(),
                            self.b[i].pushed(),
                            self.c[i].pushed(),
                            self.d[i].pushed(),
                            self.e[i].pushed(),
                        ],
                    }
                })
                .collect(),
            l2_mshr_occupancy: self.l2.mshr_occupancy() as u64,
            dram_reads: self.dram.stats().reads,
            dram_writes: self.dram.stats().writes,
        }
    }

    /// Samples every telemetry boundary the clock has reached. Called at
    /// the top of each tick variant and right after fast-forward landings,
    /// so boundary `B` always captures the machine state at the start of
    /// cycle `B` — for jumped-over boundaries that state is provably the
    /// window-start state, which is exactly what the call passes (no
    /// counter changes inside a skipped window), keeping the sample series
    /// engine-independent. Idempotent; one branch when nothing is due.
    #[inline]
    fn poll_telemetry(&mut self) {
        if self.telemetry.as_ref().is_some_and(|t| t.due(self.now)) {
            let counters = self.telemetry_counters();
            if let Some(t) = self.telemetry.as_mut() {
                t.record_up_to(self.now, &counters);
            }
        }
    }

    /// The installed telemetry sampler, synced to every boundary the clock
    /// has reached. `None` unless [`TraceConfig::telemetry`] is installed.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref()
    }

    /// A copy of the sampler with a final partial sample appended covering
    /// the tail `(last boundary, now]` — so the samples' deltas sum
    /// exactly to the end-of-run cumulative totals. The live sampler is
    /// left untouched (still boundary-aligned). `None` unless telemetry is
    /// installed.
    pub fn telemetry_snapshot(&self) -> Option<Telemetry> {
        let t = self.telemetry.as_ref()?;
        let counters = self.telemetry_counters();
        let mut snap = t.clone();
        snap.record_up_to(self.now, &counters);
        snap.finish(self.now, &counters);
        Some(snap)
    }

    /// All trace records across cores, merged into one stream ordered by
    /// completion cycle (ties broken by core, then token, so the merge is
    /// deterministic regardless of per-core log layout).
    pub fn trace_records(&self) -> Vec<crate::trace::TraceRecord> {
        let mut records: Vec<crate::trace::TraceRecord> = self
            .lsus
            .iter()
            .filter_map(|l| l.trace())
            .flat_map(|t| t.records().iter().copied())
            .collect();
        records.sort_by_key(|r| (r.completed_at, r.core, r.token));
        records
    }

    /// Per-op-kind completion-latency histograms merged across all cores
    /// (empty unless op-latency tracing is installed via
    /// [`System::set_trace`]). Histograms keep
    /// counting after the bounded record logs fill, so the percentiles
    /// cover every completion of the run.
    pub fn latency_histograms(
        &self,
    ) -> std::collections::BTreeMap<&'static str, crate::trace::LatencyHistogram> {
        let mut out = std::collections::BTreeMap::new();
        for lsu in &self.lsus {
            if let Some(t) = lsu.trace() {
                for (kind, h) in t.histograms() {
                    out.entry(*kind)
                        .or_insert_with(crate::trace::LatencyHistogram::new)
                        .merge(h);
                }
            }
        }
        out
    }

    /// Clears every core's trace log.
    pub fn clear_traces(&mut self) {
        for lsu in &mut self.lsus {
            lsu.clear_trace();
        }
    }

    /// Builds and installs one fresh sink per component (the
    /// [`System::set_trace`] event-side install path).
    fn install_event_sinks(&mut self, capacity: usize, filter: TraceFilter) {
        let sink = || TraceSink::with_filter(capacity, filter);
        self.engine_sink = Some(sink());
        for i in 0..self.cfg.cores {
            self.lsus[i].set_event_trace(sink());
            self.l1s[i].set_trace(sink());
            self.l1s[i].set_flush_trace(sink());
            self.a[i].set_trace(i, sink());
            self.b[i].set_trace(i, sink());
            self.c[i].set_trace(i, sink());
            self.d[i].set_trace(i, sink());
            self.e[i].set_trace(i, sink());
        }
        self.l2.set_trace(sink());
        self.dram.set_trace(sink());
    }

    /// Uninstalls every event sink (event tracing returns to its
    /// zero-overhead disabled state; buffered events are discarded). Any
    /// op-latency tracing stays installed — equivalent to
    /// `set_trace(sys.trace_config().without_events())`.
    pub fn disable_event_trace(&mut self) {
        self.trace_cfg = self.trace_cfg.without_events();
        self.uninstall_event_sinks();
    }

    /// Drops every component's event sink (the [`System::set_trace`]
    /// event-side uninstall path).
    fn uninstall_event_sinks(&mut self) {
        self.engine_sink = None;
        for i in 0..self.cfg.cores {
            self.lsus[i].take_event_trace();
            self.l1s[i].take_trace();
            self.l1s[i].take_flush_trace();
            self.a[i].take_trace();
            self.b[i].take_trace();
            self.c[i].take_trace();
            self.d[i].take_trace();
            self.e[i].take_trace();
        }
        self.l2.take_trace();
        self.dram.take_trace();
    }

    /// Discards all buffered events, keeping the sinks installed. Sequence
    /// counters keep running, so orderings stay stable across clears.
    pub fn clear_event_trace(&mut self) {
        if let Some(s) = self.engine_sink.as_mut() {
            s.clear();
        }
        for i in 0..self.cfg.cores {
            if let Some(s) = self.lsus[i].event_sink_mut() {
                s.clear();
            }
            if let Some(s) = self.l1s[i].trace_sink_mut() {
                s.clear();
            }
            if let Some(s) = self.l1s[i].flush_trace_sink_mut() {
                s.clear();
            }
            if let Some(s) = self.a[i].trace_sink_mut() {
                s.clear();
            }
            if let Some(s) = self.b[i].trace_sink_mut() {
                s.clear();
            }
            if let Some(s) = self.c[i].trace_sink_mut() {
                s.clear();
            }
            if let Some(s) = self.d[i].trace_sink_mut() {
                s.clear();
            }
            if let Some(s) = self.e[i].trace_sink_mut() {
                s.clear();
            }
        }
        if let Some(s) = self.l2.trace_sink_mut() {
            s.clear();
        }
        if let Some(s) = self.dram.trace_sink_mut() {
            s.clear();
        }
    }

    /// Number of event-stream tracks: the engine, eight per core (LSU, L1
    /// front end, flush unit, links A–E), the L2, and DRAM. `order` values
    /// in [`System::trace_events`] index this fixed enumeration.
    fn track_count(&self) -> u32 {
        1 + 8 * self.cfg.cores as u32 + 2
    }

    /// Harvests every sink into one deterministic stream ordered by
    /// `(cycle, track, seq)` where `track` follows a fixed component
    /// enumeration (engine; per core LSU, L1, flush unit, links A–E; L2;
    /// DRAM). Under the engine-invariance contract the stream — with
    /// [`TraceEvent::is_engine_event`] markers filtered out — is identical
    /// between the naive and fast-forward engines.
    pub fn trace_events(&self) -> Vec<StreamEvent> {
        fn harvest(out: &mut Vec<StreamEvent>, order: u32, sink: Option<&TraceSink>) {
            if let Some(s) = sink {
                out.extend(s.events().map(|e| StreamEvent {
                    cycle: e.cycle,
                    order,
                    seq: e.seq,
                    event: e.event,
                }));
            }
        }
        let mut out = Vec::new();
        harvest(&mut out, 0, self.engine_sink.as_ref());
        for i in 0..self.cfg.cores {
            let base = 1 + 8 * i as u32;
            harvest(&mut out, base, self.lsus[i].event_sink());
            harvest(&mut out, base + 1, self.l1s[i].trace_sink());
            harvest(&mut out, base + 2, self.l1s[i].flush_trace_sink());
            harvest(&mut out, base + 3, self.a[i].trace_sink());
            harvest(&mut out, base + 4, self.b[i].trace_sink());
            harvest(&mut out, base + 5, self.c[i].trace_sink());
            harvest(&mut out, base + 6, self.d[i].trace_sink());
            harvest(&mut out, base + 7, self.e[i].trace_sink());
        }
        harvest(&mut out, self.track_count() - 2, self.l2.trace_sink());
        harvest(&mut out, self.track_count() - 1, self.dram.trace_sink());
        skipit_trace::merge_streams(out)
    }

    /// Total events dropped by ring-buffer bounds across all sinks (a
    /// nonzero value means the exported timeline has holes; enlarge the
    /// capacity passed to [`System::set_trace`]).
    pub fn trace_events_dropped(&self) -> u64 {
        let mut dropped = self.engine_sink.as_ref().map_or(0, |s| s.dropped());
        for i in 0..self.cfg.cores {
            for s in [
                self.lsus[i].event_sink(),
                self.l1s[i].trace_sink(),
                self.l1s[i].flush_trace_sink(),
                self.a[i].trace_sink(),
                self.b[i].trace_sink(),
                self.c[i].trace_sink(),
                self.d[i].trace_sink(),
                self.e[i].trace_sink(),
            ]
            .into_iter()
            .flatten()
            {
                dropped += s.dropped();
            }
        }
        dropped += self.l2.trace_sink().map_or(0, |s| s.dropped());
        dropped += self.dram.trace_sink().map_or(0, |s| s.dropped());
        dropped
    }

    /// Cumulative messages pushed per channel (`'A'`–`'E'`) and core, for
    /// the metrics registry.
    ///
    /// # Panics
    ///
    /// Panics on a channel letter outside `'A'`–`'E'`.
    pub fn link_pushed(&self, channel: char, core: usize) -> u64 {
        match channel {
            'A' => self.a[core].pushed(),
            'B' => self.b[core].pushed(),
            'C' => self.c[core].pushed(),
            'D' => self.d[core].pushed(),
            'E' => self.e[core].pushed(),
            _ => panic!("unknown TileLink channel {channel:?}"),
        }
    }

    /// Cumulative messages popped per channel (`'A'`–`'E'`) and core, for
    /// the metrics registry.
    ///
    /// # Panics
    ///
    /// Panics on a channel letter outside `'A'`–`'E'`.
    pub fn link_popped(&self, channel: char, core: usize) -> u64 {
        match channel {
            'A' => self.a[core].popped(),
            'B' => self.b[core].popped(),
            'C' => self.c[core].popped(),
            'D' => self.d[core].popped(),
            'E' => self.e[core].popped(),
            _ => panic!("unknown TileLink channel {channel:?}"),
        }
    }

    /// Advances the system by one cycle.
    pub fn tick(&mut self) {
        self.poll_telemetry();
        // A full sweep may step components the wheel believed idle, so its
        // due bounds are stale afterwards.
        self.wheel.valid = false;
        let now = self.now;
        {
            let mut ports = L2Ports {
                a: &mut self.a,
                b: &mut self.b,
                c: &mut self.c,
                d: &mut self.d,
                e: &mut self.e,
                mem: &mut self.dram,
            };
            self.l2.step(now, &mut ports);
        }
        for i in 0..self.cfg.cores {
            let mut ports = skipit_dcache::L1Ports {
                a: &mut self.a[i],
                b: &mut self.b[i],
                c: &mut self.c[i],
                d: &mut self.d[i],
                e: &mut self.e[i],
            };
            self.l1s[i].step(now, &mut ports);
            self.lsus[i].step(now, &mut self.l1s[i]);
        }
        self.step_frontends();
        self.now += 1;
    }

    /// Which components have work at the current cycle. Computed before the
    /// tick, from the same conservative per-component predicates as
    /// [`System::next_event`], so a cleared gate proves the component's step
    /// would be a no-op and can be skipped outright.
    fn plan_tick(&self) -> TickPlan {
        let now = self.now;
        let mut plan = TickPlan::default();
        let arrived = |t: Option<u64>| t.is_some_and(|t| t <= now);
        for i in 0..self.cfg.cores {
            // A future C/E/A head arrival gates the L2 (the consumer) *and*
            // the sending core: the pop frees a slot that a blocked L1
            // sender can use the same cycle (L2 steps first in tick order).
            match self.c[i].next_ready() {
                Some(t) if t <= now => plan.l2 = true,
                Some(t) => plan.merge_future(t, true, 1 << i, false),
                None => {}
            }
            match self.e[i].next_ready() {
                Some(t) if t <= now => plan.l2 = true,
                Some(t) => plan.merge_future(t, true, 1 << i, false),
                None => {}
            }
            match self.a[i].next_ready() {
                // An arrived Acquire is only an event while the L2 can sink
                // it; the L2 transition clearing the backpressure is evented
                // on its own and re-raises the head.
                Some(t) if t <= now => {
                    if let Some(&ChannelA::AcquireBlock { addr, .. }) = self.a[i].peek(now) {
                        if self.l2.can_accept_acquire(addr) {
                            plan.l2 = true;
                        }
                    }
                }
                Some(t) => plan.merge_future(t, true, 1 << i, false),
                None => {}
            }
        }
        match self.l2.next_event(now, &self.dram, &self.b, &self.d) {
            Some(t) if t <= now => plan.l2 = true,
            Some(t) => plan.merge_future(t, true, 0, false),
            None => {}
        }
        match self.dram.next_event(now) {
            Some(t) if t <= now => plan.l2 = true,
            Some(t) => plan.merge_future(t, true, 0, false),
            None => {}
        }
        // With zero-latency links an L2 push can arrive the same cycle the
        // receiving L1 steps (L2 runs first in tick order), so the pre-tick
        // gates cannot see it; wake every core whenever the L2 runs.
        let l2_wakes_cores = plan.l2 && self.cfg.link_latency == 0;
        for i in 0..self.cfg.cores {
            let mut gate = l2_wakes_cores;
            match self.d[i].next_ready() {
                Some(t) if t <= now => gate = true,
                Some(t) => plan.merge_future(t, false, 1 << i, false),
                None => {}
            }
            match self.b[i].next_ready() {
                // The L1 pops a probe only while its probe unit is idle; a
                // busy probe unit reports its own progress below.
                Some(t) if t <= now => gate |= self.l1s[i].probe_rdy(),
                Some(t) => plan.merge_future(t, false, 1 << i, false),
                None => {}
            }
            // Link heads the L2 will pop this cycle (it steps before the
            // L1s) free a slot a blocked L1 sender can use the same cycle.
            let a_rdy = self.a[i].can_push() || arrived(self.a[i].next_ready());
            let c_rdy = self.c[i].can_push() || arrived(self.c[i].next_ready());
            let e_rdy = self.e[i].can_push() || arrived(self.e[i].next_ready());
            match self.l1s[i].next_event(now, a_rdy, c_rdy, e_rdy) {
                Some(t) if t <= now => gate = true,
                Some(t) => plan.merge_future(t, false, 1 << i, false),
                None => {}
            }
            match self.lsus[i].next_event(now, &self.l1s[i]) {
                Some(t) if t <= now => gate = true,
                Some(t) => plan.merge_future(t, false, 1 << i, false),
                None => {}
            }
            if gate {
                plan.cores |= 1 << i;
            }
            match self.frontend_next_event(i) {
                Some(t) if t <= now => plan.frontend = true,
                Some(t) => plan.merge_future(t, false, 0, true),
                None => {}
            }
        }
        plan
    }

    /// Executes one cycle stepping only the components whose
    /// [`System::plan_tick`] gate fired. Frontends always run: they are
    /// cheap, and a worker rendezvous must not be deferred. Produces exactly
    /// the state the full [`System::tick`] sweep would — skipped components
    /// have no due event, no consumable link head, and no freed output slot,
    /// so their step functions could only fall through.
    fn tick_gated(&mut self, plan: &TickPlan) {
        self.poll_telemetry();
        self.wheel.valid = false;
        self.engine.component_slots += 1 + self.cfg.cores as u64;
        self.engine.component_steps += plan.l2 as u64 + u64::from(plan.cores.count_ones());
        let now = self.now;
        if plan.l2 {
            let mut ports = L2Ports {
                a: &mut self.a,
                b: &mut self.b,
                c: &mut self.c,
                d: &mut self.d,
                e: &mut self.e,
                mem: &mut self.dram,
            };
            self.l2.step(now, &mut ports);
        }
        for i in 0..self.cfg.cores {
            if plan.cores & (1 << i) != 0 {
                let mut ports = skipit_dcache::L1Ports {
                    a: &mut self.a[i],
                    b: &mut self.b[i],
                    c: &mut self.c[i],
                    d: &mut self.d[i],
                    e: &mut self.e[i],
                };
                self.l1s[i].step(now, &mut ports);
                self.lsus[i].step(now, &mut self.l1s[i]);
            }
        }
        self.step_frontends();
        self.now += 1;
    }

    /// One step of the configured engine toward `done`, which run loops
    /// re-check after every clock movement. Returns `true` when `done`
    /// holds — crucially also right after a fast-forward jump, *before* the
    /// tick at the jump target, because termination predicates such as a
    /// trailing Nop's expiry are conditions on `now` (the naive engine
    /// observes every cycle; the fast engines must observe the jump target
    /// before executing it).
    fn step_engine<F: Fn(&Self) -> bool>(&mut self, done: F) -> bool {
        if done(self) {
            return true;
        }
        match self.cfg.engine {
            EngineKind::Naive => {
                self.tick();
                false
            }
            EngineKind::GlobalGate => self.step_gated(done),
            // The parallel wheel shares the serial wheel's scheduling (jump
            // planning, due bookkeeping, oracle); only the intra-cycle core
            // phase inside `tick_wheel` differs.
            EngineKind::ComponentWheel | EngineKind::ParallelWheel => self.step_wheel(done),
        }
    }

    /// Accounts a full-sweep [`System::tick`] executed by a fast engine's
    /// fallback path (every slot burned, nothing skipped), then runs it.
    fn tick_full_accounted(&mut self) {
        let slots = 1 + self.cfg.cores as u64;
        self.engine.component_slots += slots;
        self.engine.component_steps += slots;
        self.tick();
    }

    /// One step of the [`EngineKind::GlobalGate`] engine (PR 1): plan the
    /// cycle, jump over a globally idle window, and execute busy cycles
    /// through [`System::tick_gated`] — only the components whose gate fires
    /// are stepped, everything else is provably a no-op this cycle (same
    /// argument as the idle-window jump, applied per component).
    ///
    /// The saturation backoff that used to live here is retired: the
    /// component wheel makes planned-but-busy cycles cheap instead of
    /// wasted, and keeping this engine deterministic in its per-cycle work
    /// makes the three-way equivalence suite sharper.
    fn step_gated<F: Fn(&Self) -> bool>(&mut self, done: F) -> bool {
        let plan = self.plan_tick();
        if plan.any() {
            self.tick_gated(&plan);
            return false;
        }
        match plan.bound {
            Some(t) if t > self.now => {
                let window = t - self.now;
                self.engine.skipped_cycles += window;
                self.engine.jumps += 1;
                self.engine.component_slots += (1 + self.cfg.cores as u64) * window;
                skipit_trace::trace!(
                    self.engine_sink,
                    self.now,
                    TraceEvent::FastForwardJump {
                        from: self.now,
                        to: t,
                        l2: plan.bound_l2,
                        cores: plan.bound_cores,
                        frontend: plan.bound_frontend,
                    }
                );
                if self.cfg.lockstep_oracle {
                    self.verify_window(t);
                } else {
                    self.now = t;
                }
                // Sample boundaries the jump crossed before `done` can end
                // the run (no state changed inside the window, so the
                // current counters are each boundary's counters).
                self.poll_telemetry();
                if done(self) {
                    return true;
                }
                // No state changed during the jump, so the sources recorded
                // at the bound are exactly the gates due at the target.
                let mut jump = TickPlan {
                    l2: plan.bound_l2,
                    cores: plan.bound_cores,
                    frontend: plan.bound_frontend,
                    ..TickPlan::default()
                };
                if jump.l2 && self.cfg.link_latency == 0 {
                    jump.cores = (1u64 << self.cfg.cores) - 1;
                }
                self.tick_gated(&jump);
            }
            // Every component is blocked on an external command (worker
            // rendezvous): keep the full sweep so the rendezvous and
            // watchdogs still run.
            _ => self.tick_full_accounted(),
        }
        false
    }

    /// (Re)computes every wheel slot's due cycle from scratch. Needed on
    /// entry to a run loop and after any state mutation outside the wheel's
    /// view; steady-state operation re-arms slots incrementally instead.
    fn wheel_rebuild(&mut self) {
        let cores = self.cfg.cores;
        self.wheel.due_comp.resize(cores, NEVER);
        self.wheel.due_fe.resize(cores, NEVER);
        self.wheel.streak_comp.clear();
        self.wheel.streak_comp.resize(cores, 0);
        self.wheel.streak_l2 = 0;
        self.wheel.due_l2 = self.l2_due();
        for i in 0..cores {
            self.wheel.due_comp[i] = self.core_comp_due(i);
            self.wheel.due_fe[i] = self.fe_due(i);
        }
        self.wheel.valid = true;
    }

    /// Self-contained due bound of core `i`'s L1 + LSU slot: the earliest
    /// cycle the pair can change state given only its own timers and the
    /// *current* link endpoints. State changes caused by neighbors acting
    /// later (an L2 push/pop, a frontend enqueue) are injected as wake
    /// edges when they happen, so this bound deliberately ignores them.
    fn core_comp_due(&self, i: usize) -> u64 {
        core_lane_due(
            self.now,
            &self.a[i],
            &self.b[i],
            &self.c[i],
            &self.d[i],
            &self.e[i],
            &self.l1s[i],
            &self.lsus[i],
        )
    }

    /// Self-contained due bound of the L2 + DRAM slot (same wake-edge
    /// caveat as [`System::core_comp_due`]).
    fn l2_due(&self) -> u64 {
        let now = self.now;
        let mut due = NEVER;
        for i in 0..self.cfg.cores {
            if let Some(t) = self.c[i].next_ready() {
                due = due.min(t);
            }
            if let Some(t) = self.e[i].next_ready() {
                due = due.min(t);
            }
            // An arrived Acquire is only an event while the L2 can sink
            // it; the L2 transition clearing the backpressure re-raises
            // the head on re-arm.
            match self.a[i].next_ready() {
                Some(t) if t <= now => {
                    if let Some(&ChannelA::AcquireBlock { addr, .. }) = self.a[i].peek(now) {
                        if self.l2.can_accept_acquire(addr) {
                            due = due.min(t);
                        }
                    }
                }
                Some(t) => due = due.min(t),
                None => {}
            }
        }
        if let Some(t) = self.l2.next_event(now, &self.dram, &self.b, &self.d) {
            due = due.min(t);
        }
        if let Some(t) = self.dram.next_event(now) {
            due = due.min(t);
        }
        due
    }

    /// The frontend's due bound as a wheel slot value.
    fn fe_due(&self, i: usize) -> u64 {
        self.frontend_next_event(i).unwrap_or(NEVER)
    }

    /// Executes one cycle stepping only the wheel slots that are due,
    /// re-arming each stepped slot from its own bound and propagating wake
    /// edges to neighbors (the explicit cross-component handoffs of
    /// DESIGN.md §5): an L2 B/D push arms the receiving core at head
    /// arrival (possibly this very cycle — the L2 steps before the L1s,
    /// matching naive tick order); an L2 A/C/E pop frees a sender slot
    /// usable the same cycle; a core's A/C/E push arms the L2 at head
    /// arrival and its B/D pop at the next cycle (the L2 steps first, so it
    /// cannot observe either before then); a frontend enqueue arms its core
    /// for the next cycle. Frontends run every executed cycle: they are
    /// cheap, and a worker rendezvous must not be deferred.
    fn tick_wheel(&mut self) {
        self.poll_telemetry();
        let mut lap = crate::prof::Timer::start();
        let now = self.now;
        let cores = self.cfg.cores;
        self.engine.component_slots += 1 + cores as u64;
        if self.wheel.due_l2 <= now {
            // Snapshot the receiver-facing link conditions whose *edge
            // transitions* are wake edges: an empty→non-empty B/D means a
            // new head the core's bound has never seen; a full→non-full
            // A/C/E re-opens a slot a blocked sender's bound ignored.
            // (A push behind an existing head leaves the head — and thus
            // the receiver's bound — unchanged; a pop from a non-full link
            // leaves `can_push` true, which the sender's bound already
            // assumed.) A core already due this cycle needs no wake edge —
            // it steps regardless and re-arms from full current state — so
            // its links are not snapshotted at all.
            self.wheel.scratch.clear();
            for i in 0..cores {
                self.wheel.scratch.push(if self.wheel.due_comp[i] > now {
                    [
                        self.b[i].is_empty(),
                        self.d[i].is_empty(),
                        self.a[i].can_push(),
                        self.c[i].can_push(),
                        self.e[i].can_push(),
                    ]
                } else {
                    [false; 5]
                });
            }
            {
                let mut ports = L2Ports {
                    a: &mut self.a,
                    b: &mut self.b,
                    c: &mut self.c,
                    d: &mut self.d,
                    e: &mut self.e,
                    mem: &mut self.dram,
                };
                self.l2.step(now, &mut ports);
            }
            self.engine.component_steps += 1;
            for i in 0..cores {
                if self.wheel.due_comp[i] <= now {
                    continue;
                }
                let [b_empty, d_empty, a_can, c_can, e_can] = self.wheel.scratch[i];
                let mut wake = NEVER;
                if b_empty {
                    if let Some(t) = self.b[i].next_ready() {
                        wake = wake.min(t);
                    }
                }
                if d_empty {
                    if let Some(t) = self.d[i].next_ready() {
                        wake = wake.min(t);
                    }
                }
                if (!a_can && self.a[i].can_push())
                    || (!c_can && self.c[i].can_push())
                    || (!e_can && self.e[i].can_push())
                {
                    // The freed slot is usable this very cycle: the L2
                    // steps before the L1s, matching naive tick order.
                    wake = now;
                }
                if wake != NEVER {
                    let wake = wake.max(now);
                    if wake < self.wheel.due_comp[i] {
                        // A genuinely sleeping slot is being rescued: its
                        // first post-wake steps should probe their real
                        // bound eagerly. (A busy slot already due next
                        // cycle keeps its streak — B/D heads churn every
                        // cycle in a burst, and resetting here would defeat
                        // the probe hysteresis.)
                        self.wheel.due_comp[i] = wake;
                        self.wheel.streak_comp[i] = 0;
                    }
                }
            }
            self.wheel.streak_l2 += 1;
            let streak = self.wheel.streak_l2;
            self.wheel.due_l2 =
                if streak <= WHEEL_EAGER_PROBES || streak.is_multiple_of(WHEEL_PROBE_PERIOD) {
                    let due = self.l2_due().max(now + 1);
                    if due > now + 1 {
                        self.wheel.streak_l2 = 0;
                    }
                    due
                } else {
                    now + 1
                };
        }
        lap.lap(&mut self.engine.phase.serial_ns);
        // Mirror guard: wake edges toward the L2 can never arrive before
        // `now + 1` (the L2 steps first), so when the L2 is already due by
        // then the edge scan below is skipped entirely.
        let l2_sleeping = self.wheel.due_l2 > now + 1;
        let l2_wake = if self.cfg.engine == EngineKind::ParallelWheel {
            self.core_phase_parallel(now, l2_sleeping)
        } else {
            let mut wake = NEVER;
            for i in 0..cores {
                if self.wheel.due_comp[i] <= now {
                    wake = wake.min(self.step_core_slot(i, now, l2_sleeping));
                    self.engine.component_steps += 1;
                    self.wheel.due_fe[i] = self.fe_due(i).max(now + 1);
                }
            }
            wake
        };
        if l2_wake != NEVER {
            let l2_wake = l2_wake.max(now + 1);
            if l2_wake < self.wheel.due_l2 {
                self.wheel.due_l2 = l2_wake;
                self.wheel.streak_l2 = 0;
            }
        }
        lap.lap(&mut self.engine.phase.core_ns);
        let (enqueued, active) = self.step_frontends();
        let mut m = active;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            self.wheel.due_fe[i] = self.fe_due(i).max(now + 1);
        }
        let mut m = enqueued;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            if now + 1 < self.wheel.due_comp[i] {
                self.wheel.due_comp[i] = now + 1;
                self.wheel.streak_comp[i] = 0;
            }
        }
        lap.lap(&mut self.engine.phase.frontend_ns);
        self.now += 1;
    }

    /// Steps one due core slot (L1 + LSU + the five per-core link
    /// endpoints) and re-arms its due bound; returns the slot's wake edge
    /// toward the L2 ([`NEVER`] when none). The borrow split into a
    /// [`CoreLane`] is exactly the state partition the parallel engine
    /// hands each worker thread, so serial and parallel stepping share one
    /// body by construction.
    fn step_core_slot(&mut self, i: usize, now: u64, l2_sleeping: bool) -> u64 {
        step_core_lane(
            now,
            l2_sleeping,
            CoreLane {
                a: &mut self.a[i],
                b: &mut self.b[i],
                c: &mut self.c[i],
                d: &mut self.d[i],
                e: &mut self.e[i],
                l1: &mut self.l1s[i],
                lsu: &mut self.lsus[i],
                due: &mut self.wheel.due_comp[i],
                streak: &mut self.wheel.streak_comp[i],
            },
        )
    }

    /// The parallel engine's core phase: lists the due core slots, steps
    /// them on the thread pool (strided partition, one exclusive
    /// [`CoreLane`] per slot), and commits the staged wake edges at the
    /// barrier. Falls back to serial stepping below [`PARALLEL_MIN_DUE`]
    /// due slots or when only one thread resolved. Returns the merged
    /// core→L2 wake edge.
    ///
    /// Bit-identity with the serial core loop holds because the loop's
    /// only cross-slot dataflow is commutative: per-slot state (L1, LSU,
    /// links, due/streak bookkeeping, trace sinks, perturbation counters)
    /// is touched by exactly one thread, the wake edges merge by `min`,
    /// and the step counter by sum. The frontend due re-arms move after
    /// the barrier — value-identical, since stepping core `j` never
    /// touches core `i`'s frontend or LSU.
    fn core_phase_parallel(&mut self, now: u64, l2_sleeping: bool) -> u64 {
        let cores = self.cfg.cores;
        let mut due_list = std::mem::take(&mut self.wheel.par_due);
        due_list.clear();
        for i in 0..cores {
            if self.wheel.due_comp[i] <= now {
                due_list.push(i as u32);
            }
        }
        let n = due_list.len();
        let threads = if n >= PARALLEL_MIN_DUE {
            self.ensure_pool().min(n)
        } else {
            1
        };
        let wake = if threads <= 1 {
            let mut wake = NEVER;
            for &i in &due_list {
                wake = wake.min(self.step_core_slot(i as usize, now, l2_sleeping));
            }
            wake
        } else {
            self.wheel.wake_stage.reset(cores);
            let ctx = ParCoreCtx {
                a: self.a.as_mut_ptr(),
                b: self.b.as_mut_ptr(),
                c: self.c.as_mut_ptr(),
                d: self.d.as_mut_ptr(),
                e: self.e.as_mut_ptr(),
                l1s: self.l1s.as_mut_ptr(),
                lsus: self.lsus.as_mut_ptr(),
                due_comp: self.wheel.due_comp.as_mut_ptr(),
                streak_comp: self.wheel.streak_comp.as_mut_ptr(),
                wake: self.wheel.wake_stage.lanes_mut().as_mut_ptr(),
                due_list: due_list.as_ptr(),
                n,
                threads,
                now,
                l2_sleeping,
            };
            // Taking the pool out keeps the dispatch free of any live
            // borrow of `self` while worker threads mutate core slots
            // through `ctx`'s raw pointers.
            let pool = self.pool.take().expect("ensure_pool installed the pool");
            pool.run(&|slot| {
                let mut k = slot;
                while k < ctx.n {
                    // SAFETY: the strided partition visits each index of
                    // `due_list` exactly once across all slots, and
                    // `due_list` holds distinct core indices — every lane
                    // is touched by exactly one thread.
                    unsafe { ctx.step(k) };
                    k += ctx.threads;
                }
            });
            self.pool = Some(pool);
            self.wheel.wake_stage.commit()
        };
        // Post-barrier bookkeeping in fixed slot order.
        self.engine.component_steps += n as u64;
        for &i in &due_list {
            let i = i as usize;
            self.wheel.due_fe[i] = self.fe_due(i).max(now + 1);
        }
        self.wheel.par_due = due_list;
        wake
    }

    /// Creates the thread pool on first use and returns its thread count.
    /// Resolution order: [`SystemConfig::engine_threads`] if nonzero, else
    /// `SKIPIT_ENGINE_THREADS` (panicking on unparseable or zero values),
    /// else the host's available parallelism; always clamped to the core
    /// count. The environment is read once per [`System`].
    fn ensure_pool(&mut self) -> usize {
        if self.pool.is_none() {
            let requested = if self.cfg.engine_threads > 0 {
                self.cfg.engine_threads
            } else {
                match std::env::var("SKIPIT_ENGINE_THREADS") {
                    Ok(v) => crate::pool::parse_threads_env("SKIPIT_ENGINE_THREADS", &v),
                    Err(_) => std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1),
                }
            };
            self.pool = Some(crate::pool::WheelPool::new(requested.min(self.cfg.cores)));
        }
        self.pool.as_ref().unwrap().threads()
    }

    /// One step of the [`EngineKind::ComponentWheel`] engine: jump the
    /// clock to the earliest due slot, then execute that cycle stepping
    /// only the due slots. Under [`SystemConfig::lockstep_oracle`], every
    /// jumped window is naively re-verified *and* every skipped slot's due
    /// bound is recomputed from scratch each executed cycle — a component
    /// that would have acted while its slot claimed idle panics.
    fn step_wheel<F: Fn(&Self) -> bool>(&mut self, done: F) -> bool {
        if !self.wheel.valid {
            self.wheel_rebuild();
        }
        let target = self.wheel.next_due();
        if target == NEVER {
            // Every slot is blocked on an external command (worker
            // rendezvous): full sweep so rendezvous and watchdogs still
            // run. `tick` invalidates the wheel; the next step rebuilds.
            self.tick_full_accounted();
            return false;
        }
        if target > self.now {
            let window = target - self.now;
            self.engine.skipped_cycles += window;
            self.engine.jumps += 1;
            self.engine.component_slots += (1 + self.cfg.cores as u64) * window;
            if skipit_trace::TRACE_COMPILED && self.engine_sink.is_some() {
                let mut cores_mask = 0u64;
                let mut frontend = false;
                for i in 0..self.cfg.cores {
                    if self.wheel.due_comp[i] == target {
                        cores_mask |= 1 << i;
                    }
                    frontend |= self.wheel.due_fe[i] == target;
                }
                skipit_trace::trace!(
                    self.engine_sink,
                    self.now,
                    TraceEvent::FastForwardJump {
                        from: self.now,
                        to: target,
                        l2: self.wheel.due_l2 == target,
                        cores: cores_mask,
                        frontend,
                    }
                );
            }
            if self.cfg.lockstep_oracle {
                self.verify_window(target);
                // `verify_window` ticks naively, invalidating the wheel —
                // but it also proved no state changed, so a rebuild
                // reproduces (at worst tightens) the due values.
                self.wheel_rebuild();
            } else {
                self.now = target;
            }
            // Sample boundaries the jump crossed before `done` can end the
            // run (window is state-change-free, so current counters are
            // each boundary's counters).
            self.poll_telemetry();
            if done(self) {
                return true;
            }
        }
        if self.cfg.lockstep_oracle {
            self.oracle_check_wheel();
        }
        self.tick_wheel();
        false
    }

    /// Component-granular half of the lockstep oracle: on an executed
    /// cycle, any slot the wheel is about to skip must also be not-due per
    /// a from-scratch recomputation of its bound. Catches missed wake
    /// edges (a neighbor handed the component work without re-arming it)
    /// at the cycle they would first diverge from the naive engine.
    fn oracle_check_wheel(&self) {
        let now = self.now;
        if self.wheel.due_l2 > now {
            assert!(
                self.l2_due() > now,
                "lockstep oracle: L2 slot skipped at cycle {now} but its \
                 recomputed bound is due (missed wake edge)"
            );
        }
        for i in 0..self.cfg.cores {
            if self.wheel.due_comp[i] > now {
                assert!(
                    self.core_comp_due(i) > now,
                    "lockstep oracle: core {i} slot skipped at cycle {now} \
                     but its recomputed bound is due (missed wake edge)"
                );
            }
            if self.wheel.due_fe[i] > now {
                assert!(
                    self.fe_due(i) > now,
                    "lockstep oracle: frontend {i} slot skipped at cycle \
                     {now} but its recomputed bound is due (missed wake edge)"
                );
            }
        }
    }

    /// One step of the event-driven engine (see DESIGN.md §5 "Clocking"):
    /// if no component reports work at the current cycle, jump the clock
    /// straight to the minimum [`System::next_event`] bound, then execute a
    /// normal [`System::tick`] there. When nothing bounds the future (every
    /// component is blocked on an external command), falls back to a plain
    /// tick so watchdogs and rendezvous still run.
    pub fn tick_fast(&mut self) {
        self.fast_forward_clock();
        self.tick();
    }

    /// Advances the clock (without ticking) to the next-event bound if it
    /// lies in the future; returns whether the clock moved. Skipped cycles
    /// are provably idle: no component state can change within the window,
    /// which [`SystemConfig::lockstep_oracle`] re-verifies cycle by cycle.
    pub fn fast_forward_clock(&mut self) -> bool {
        match self.next_event() {
            Some(t) if t > self.now => {
                self.engine.skipped_cycles += t - self.now;
                self.engine.jumps += 1;
                self.engine.component_slots += (1 + self.cfg.cores as u64) * (t - self.now);
                // This path plans no per-component gates, so the jump
                // carries no attribution.
                skipit_trace::trace!(
                    self.engine_sink,
                    self.now,
                    TraceEvent::FastForwardJump {
                        from: self.now,
                        to: t,
                        l2: false,
                        cores: 0,
                        frontend: false,
                    }
                );
                if self.cfg.lockstep_oracle {
                    self.verify_window(t);
                } else {
                    self.now = t;
                }
                self.poll_telemetry();
                true
            }
            _ => false,
        }
    }

    /// Lockstep oracle: instead of trusting a claimed idle window
    /// `[self.now, target)`, run it with the naive engine and panic on the
    /// first cycle whose state — components, links, statistics, frontends,
    /// everything but the clock — differs from the window start.
    fn verify_window(&mut self, target: u64) {
        let reference = self.state_digest();
        while self.now < target {
            self.tick();
            assert_eq!(
                self.state_digest(),
                reference,
                "lockstep oracle: state changed at cycle {} inside a window \
                 the fast engine claimed idle (next event {})",
                self.now - 1,
                target
            );
        }
    }

    /// Hash of every piece of simulated state except the clock, used by the
    /// lockstep oracle to detect work inside a claimed-idle window and by
    /// engine-equivalence tests to compare whole machines. Debug
    /// formatting covers the deep state (queues, arrays, MSHRs, stats);
    /// frontends are summarized by hand (channel endpoints carry no
    /// simulated state).
    pub fn state_digest(&self) -> u64 {
        use std::fmt::Write as _;
        use std::hash::{Hash, Hasher};
        let mut s = String::new();
        for (i, fe) in self.frontends.iter().enumerate() {
            match fe {
                Frontend::Idle => {
                    let _ = write!(s, "[{i} idle]");
                }
                Frontend::Program {
                    next, nop_until, ..
                } => {
                    let _ = write!(s, "[{i} prog {next} {nop_until}]");
                }
                Frontend::Thread {
                    busy,
                    nop_until,
                    finished,
                    ..
                } => {
                    let _ = write!(s, "[{i} thr {busy:?} {nop_until:?} {finished}]");
                }
                Frontend::Replay {
                    next,
                    nop_until,
                    base,
                    ..
                } => {
                    let _ = write!(s, "[{i} rpl {next} {nop_until} {base}]");
                }
            }
        }
        let _ = write!(
            s,
            "{:?}{:?}{:?}{:?}{}",
            self.lsus, self.l1s, self.l2, self.dram, self.next_token
        );
        let _ = write!(
            s,
            "{:?}{:?}{:?}{:?}{:?}",
            self.a, self.b, self.c, self.d, self.e
        );
        let mut h = std::collections::hash_map::DefaultHasher::new();
        s.hash(&mut h);
        h.finish()
    }

    /// Conservative lower bound on the earliest cycle at which any component
    /// can change state on its own — the fast engine's jump target. Each
    /// subsystem answers for itself (`Link::next_ready`, `Dram::next_event`,
    /// the cache/LSU/L2 `next_event` methods, the frontend summary below);
    /// `None` means only an external worker command can create work.
    ///
    /// Channel A gets special treatment: an *arrived* Acquire is only an
    /// event while the L2 can sink it. While it is back-pressured (per-line
    /// MSHR conflict or MSHR exhaustion), the L2 transition that clears the
    /// conflict is itself evented, and re-evaluation after that tick
    /// re-raises the Acquire. Channel B is gated symmetrically: the L1 pops
    /// a probe only while its probe unit is idle, and a busy probe unit
    /// reports its own progress (or its blockers are evented elsewhere).
    ///
    /// Any event due *now* is the global minimum, so the scan returns
    /// immediately — on the common busy cycle this skips most of the walk.
    pub fn next_event(&self) -> Option<u64> {
        let now = self.now;
        let mut next: Option<u64> = None;
        let merge = |next: &mut Option<u64>, t: u64| {
            *next = Some(next.map_or(t, |n| n.min(t)));
        };
        for i in 0..self.cfg.cores {
            if let Some(t) = self.a[i].next_ready() {
                if t > now {
                    merge(&mut next, t);
                } else if let Some(&ChannelA::AcquireBlock { addr, .. }) = self.a[i].peek(now) {
                    if self.l2.can_accept_acquire(addr) {
                        return Some(now);
                    }
                }
            }
            if let Some(t) = self.b[i].next_ready() {
                if t > now {
                    merge(&mut next, t);
                } else if self.l1s[i].probe_rdy() {
                    return Some(now);
                }
            }
            for t in [
                self.c[i].next_ready(),
                self.d[i].next_ready(),
                self.e[i].next_ready(),
            ]
            .into_iter()
            .flatten()
            {
                if t <= now {
                    return Some(now);
                }
                merge(&mut next, t);
            }
            if let Some(t) = self.l1s[i].next_event(
                now,
                self.a[i].can_push(),
                self.c[i].can_push(),
                self.e[i].can_push(),
            ) {
                if t <= now {
                    return Some(now);
                }
                merge(&mut next, t);
            }
            if let Some(t) = self.lsus[i].next_event(now, &self.l1s[i]) {
                if t <= now {
                    return Some(now);
                }
                merge(&mut next, t);
            }
            if let Some(t) = self.frontend_next_event(i) {
                if t <= now {
                    return Some(now);
                }
                merge(&mut next, t);
            }
        }
        if let Some(t) = self.l2.next_event(now, &self.dram, &self.b, &self.d) {
            if t <= now {
                return Some(now);
            }
            merge(&mut next, t);
        }
        if let Some(t) = self.dram.next_event(now) {
            if t <= now {
                return Some(now);
            }
            merge(&mut next, t);
        }
        next
    }

    /// The frontend's contribution to the next-event bound. `None` means
    /// only an LSU completion (evented through the cache) can wake it.
    fn frontend_next_event(&self, i: usize) -> Option<u64> {
        let now = self.now;
        match &self.frontends[i] {
            Frontend::Idle => None,
            Frontend::Program {
                ops,
                next,
                nop_until,
            } => {
                if *next >= ops.len() {
                    // Nothing left to issue, but a trailing Nop delay still
                    // has to elapse before `program_done` holds.
                    return (now < *nop_until).then_some(*nop_until);
                }
                if now < *nop_until {
                    return Some(*nop_until);
                }
                match ops[*next] {
                    Op::Nop { .. } => Some(now),
                    op => self.lsus[i].has_room(op).then_some(now),
                }
            }
            Frontend::Thread {
                busy,
                nop_until,
                finished,
                ..
            } => {
                if *finished {
                    return None;
                }
                if let Some(tok) = *busy {
                    return self.lsus[i].has_finished(tok).then_some(now);
                }
                if let Some(until) = *nop_until {
                    return Some(until.max(now));
                }
                // About to rendezvous: the blocking `recv` takes zero
                // simulated time and must run this cycle.
                Some(now)
            }
            Frontend::Replay {
                ops,
                next,
                nop_until,
                base,
            } => {
                if *next >= ops.len() {
                    return (now < *nop_until).then_some(*nop_until);
                }
                // The head op can only issue once both its recorded cycle
                // and any pending think time have elapsed — the exact gate
                // is the max, so that is the next self-driven event.
                let gate = (*nop_until).max(base + ops[*next].at);
                if now < gate {
                    return Some(gate);
                }
                match ops[*next].op {
                    Op::Nop { .. } => Some(now),
                    op => self.lsus[i].has_room(op).then_some(now),
                }
            }
        }
    }

    /// Steps every frontend (they run each executed cycle regardless of
    /// wheel slots). Returns two per-core bitmasks for the wheel's wake
    /// edges: `enqueued` — cores whose LSU received an op this cycle (the
    /// core slot must run next cycle); `active` — cores whose frontend
    /// changed state at all (its due bound must be recomputed). The naive
    /// and global-gate engines ignore both.
    fn step_frontends(&mut self) -> (u64, u64) {
        let now = self.now;
        let issue_width = self.cfg.issue_width;
        let deadline = self.deadline;
        let mut enqueued = 0u64;
        let mut active = 0u64;
        // Disjoint field borrows: each frontend is stepped in place instead
        // of being moved out and back every tick.
        let System {
            frontends,
            lsus,
            next_token,
            capture,
            ..
        } = self;
        // Capture mode records every committed op with its issue cycle;
        // recording is observation only and must not influence issue.
        let mut record = |core: usize, op: Op| {
            if let Some(cap) = capture.as_mut() {
                cap.push(CapturedOp {
                    cycle: now,
                    core: core as u32,
                    op,
                });
            }
        };
        for (i, fe) in frontends.iter_mut().enumerate() {
            let bit = 1u64 << i;
            match fe {
                Frontend::Idle => {}
                Frontend::Program {
                    ops,
                    next,
                    nop_until,
                } => {
                    lsus[i].drain_finished();
                    let mut issued = 0;
                    while issued < issue_width && *next < ops.len() && now >= *nop_until {
                        match ops[*next] {
                            Op::Nop { cycles } => {
                                *nop_until = now + cycles;
                                *next += 1;
                                issued += 1;
                                record(i, Op::Nop { cycles });
                            }
                            op => {
                                if !lsus[i].has_room(op) {
                                    break;
                                }
                                let tok = *next_token + 1;
                                *next_token = tok;
                                lsus[i].enqueue(tok, op, now);
                                *next += 1;
                                issued += 1;
                                enqueued |= bit;
                                record(i, op);
                            }
                        }
                    }
                    if issued > 0 {
                        active |= bit;
                    }
                }
                Frontend::Replay {
                    ops,
                    next,
                    nop_until,
                    base,
                } => {
                    lsus[i].drain_finished();
                    let mut issued = 0;
                    while issued < issue_width
                        && *next < ops.len()
                        && now >= *nop_until
                        && now >= *base + ops[*next].at
                    {
                        match ops[*next].op {
                            Op::Nop { cycles } => {
                                *nop_until = now + cycles;
                                *next += 1;
                                issued += 1;
                                record(i, Op::Nop { cycles });
                            }
                            op => {
                                if !lsus[i].has_room(op) {
                                    break;
                                }
                                let tok = *next_token + 1;
                                *next_token = tok;
                                lsus[i].enqueue(tok, op, now);
                                *next += 1;
                                issued += 1;
                                enqueued |= bit;
                                record(i, op);
                            }
                        }
                    }
                    if issued > 0 {
                        active |= bit;
                    }
                }
                Frontend::Thread {
                    rx,
                    tx,
                    busy,
                    nop_until,
                    finished,
                } => {
                    if *finished {
                        continue;
                    }
                    // Deliver a completed op's result. A failed send means
                    // the worker is gone (panicked or leaked its handle):
                    // mark the frontend finished so the tick loop can drain
                    // and the thread-mode run loop surfaces the panic on
                    // join instead
                    // of wedging.
                    if let Some(tok) = *busy {
                        match lsus[i].take_finished(tok) {
                            Some(value) => {
                                *busy = None;
                                active |= bit;
                                if tx
                                    .send(Resp {
                                        value,
                                        halted: now >= deadline,
                                    })
                                    .is_err()
                                {
                                    *finished = true;
                                    record(i, Op::Nop { cycles: 0 });
                                    continue;
                                }
                            }
                            None => continue,
                        }
                    }
                    if let Some(until) = *nop_until {
                        if now < until {
                            continue;
                        }
                        *nop_until = None;
                        active |= bit;
                        if tx
                            .send(Resp {
                                value: 0,
                                halted: now >= deadline,
                            })
                            .is_err()
                        {
                            *finished = true;
                            record(i, Op::Nop { cycles: 0 });
                            continue;
                        }
                    }
                    // Rendezvous: block until the workload's next command
                    // (its host-side computation takes zero simulated
                    // time). A disconnected channel is treated exactly like
                    // `Cmd::Done`.
                    loop {
                        active |= bit;
                        match rx.recv() {
                            Ok(Cmd::RdCycle) => {
                                if tx
                                    .send(Resp {
                                        value: now,
                                        halted: now >= deadline,
                                    })
                                    .is_err()
                                {
                                    *finished = true;
                                    record(i, Op::Nop { cycles: 0 });
                                    break;
                                }
                            }
                            Ok(Cmd::Op(Op::Nop { cycles })) => {
                                *nop_until = Some(now + cycles);
                                record(i, Op::Nop { cycles });
                                break;
                            }
                            Ok(Cmd::Op(op)) => {
                                let tok = *next_token + 1;
                                *next_token = tok;
                                // Thread mode has at most one op in
                                // flight; room is guaranteed.
                                lsus[i].enqueue(tok, op, now);
                                *busy = Some(tok);
                                enqueued |= bit;
                                record(i, op);
                                break;
                            }
                            Ok(Cmd::Done) | Err(_) => {
                                // Capture the end-of-run handshake as a
                                // zero-cycle think time: the thread run
                                // executes this cycle to retire the worker,
                                // so a replay must execute it too for the
                                // final cycle count to match (a trailing
                                // Nop's expiry alone is a pure time bound a
                                // fast-forward engine can satisfy without
                                // executing the cycle).
                                *finished = true;
                                record(i, Op::Nop { cycles: 0 });
                                break;
                            }
                        }
                    }
                }
            }
        }
        (enqueued, active)
    }

    #[cfg(test)]
    pub(crate) fn debug_event_blame(&self) -> Vec<&'static str> {
        let now = self.now;
        let mut blames = Vec::new();
        for i in 0..self.cfg.cores {
            if self.a[i].next_ready().is_some_and(|t| t <= now) {
                if let Some(&ChannelA::AcquireBlock { addr, .. }) = self.a[i].peek(now) {
                    if self.l2.can_accept_acquire(addr) {
                        blames.push("A");
                    }
                }
            }
            if self.b[i].next_ready().is_some_and(|t| t <= now) && self.l1s[i].probe_rdy() {
                blames.push("B");
            }
            if self.c[i].next_ready().is_some_and(|t| t <= now) {
                blames.push("C");
            }
            if self.d[i].next_ready().is_some_and(|t| t <= now) {
                blames.push("D");
            }
            if self.e[i].next_ready().is_some_and(|t| t <= now) {
                blames.push("E");
            }
            if self.l1s[i]
                .next_event(
                    now,
                    self.a[i].can_push(),
                    self.c[i].can_push(),
                    self.e[i].can_push(),
                )
                .is_some_and(|t| t <= now)
            {
                blames.push("L1");
            }
            if self.lsus[i]
                .next_event(now, &self.l1s[i])
                .is_some_and(|t| t <= now)
            {
                blames.push("LSU");
            }
            if self.frontend_next_event(i).is_some_and(|t| t <= now) {
                blames.push("FE");
            }
        }
        if self
            .l2
            .next_event(now, &self.dram, &self.b, &self.d)
            .is_some_and(|t| t <= now)
        {
            blames.push("L2");
        }
        if self.dram.next_event(now).is_some_and(|t| t <= now) {
            blames.push("DRAM");
        }
        blames
    }

    fn program_done(&self, core: usize) -> bool {
        match &self.frontends[core] {
            Frontend::Idle => true,
            Frontend::Program {
                ops,
                next,
                nop_until,
            } => *next >= ops.len() && self.now >= *nop_until && self.lsus[core].is_empty(),
            Frontend::Thread { finished, .. } => *finished && self.lsus[core].is_empty(),
            Frontend::Replay {
                ops,
                next,
                nop_until,
                ..
            } => *next >= ops.len() && self.now >= *nop_until && self.lsus[core].is_empty(),
        }
    }

    /// Runs any [`Workload`] to completion — the single entry point for
    /// every drive mode. See [`crate::workload`] for the first-party
    /// workloads ([`crate::workload::Programs`],
    /// [`crate::workload::Threads`], [`crate::workload::ReplaySchedule`])
    /// and the [`RunReport`] contract. Callable repeatedly — cache and
    /// memory state persists between runs, which is how benchmarks separate
    /// warm-up from the measured phase.
    ///
    /// ```
    /// use skipit_boom::{Op, Programs, System, SystemConfig};
    ///
    /// let mut sys = System::new(SystemConfig::default());
    /// let cycles = sys
    ///     .run(Programs(vec![vec![
    ///         Op::Store { addr: 0x1000, value: 42 },
    ///         Op::Flush { addr: 0x1000 },
    ///         Op::Fence,
    ///     ]]))
    ///     .cycles;
    /// assert!(cycles > 0);
    /// ```
    ///
    /// # Panics
    ///
    /// As the workload: see its type-level docs.
    pub fn run<W: Workload>(&mut self, workload: W) -> RunReport<W::Output> {
        workload.run(self)
    }

    /// Program mode's engine loop ([`crate::workload::Programs`]).
    ///
    /// # Panics
    ///
    /// Panics if more programs than cores are supplied, or if the programs
    /// fail to finish within a watchdog budget (an interlock bug).
    pub(crate) fn run_programs_inner(&mut self, programs: Vec<Vec<Op>>) -> u64 {
        match self.run_programs_observed(programs, |_| Ok::<(), std::convert::Infallible>(())) {
            Ok(cycles) => cycles,
            Err((_, e)) => match e {},
        }
    }

    /// Replay mode's engine loop ([`crate::workload::ReplaySchedule`]):
    /// installs one replay frontend per lane with the current cycle as the
    /// stamp base and steps the engine until every lane has drained.
    ///
    /// # Panics
    ///
    /// Panics if more lanes than cores are supplied, or if the replay fails
    /// to finish within a watchdog budget.
    pub(crate) fn run_replay_inner(&mut self, lanes: Vec<Vec<TimedOp>>) -> u64 {
        assert!(
            lanes.len() <= self.cfg.cores,
            "{} replay lanes for {} cores",
            lanes.len(),
            self.cfg.cores
        );
        let start = self.now;
        self.wheel.valid = false;
        for (i, ops) in lanes.into_iter().enumerate() {
            self.frontends[i] = Frontend::Replay {
                ops,
                next: 0,
                nop_until: 0,
                base: start,
            };
        }
        let watchdog = self.now + 2_000_000_000;
        loop {
            if self.step_engine(|s| (0..s.cfg.cores).all(|i| s.program_done(i))) {
                break;
            }
            assert!(self.now < watchdog, "replay run exceeded watchdog budget");
        }
        for fe in &mut self.frontends {
            *fe = Frontend::Idle;
        }
        self.wheel.valid = false;
        self.now - start
    }

    /// Program mode ([`run(Programs(…))`](Self::run)) with a continuous
    /// observer: `observe` is called
    /// at every executed cycle boundary (before the cycle runs, and once more
    /// at completion). Cycles the fast-forward engines skip are provably free
    /// of state changes, so observing only executed boundaries sees every
    /// distinct machine state the run passes through — this is the hook the
    /// exploration harness uses for its always-on invariant oracle and
    /// crash-point snapshots.
    ///
    /// The first `Err(e)` aborts the run (frontends reset to idle) and
    /// returns `Err((cycle, e))` with the cycle at which the observer
    /// rejected the state; otherwise returns `Ok(elapsed_cycles)`.
    ///
    /// # Panics
    ///
    /// Panics if more programs than cores are supplied, or if the programs
    /// fail to finish within a watchdog budget (an interlock bug).
    pub fn run_programs_observed<E>(
        &mut self,
        programs: Vec<Vec<Op>>,
        mut observe: impl FnMut(&System) -> Result<(), E>,
    ) -> Result<u64, (u64, E)> {
        assert!(
            programs.len() <= self.cfg.cores,
            "{} programs for {} cores",
            programs.len(),
            self.cfg.cores
        );
        let start = self.now;
        // Installing frontends mutates state outside the wheel's view.
        self.wheel.valid = false;
        for (i, ops) in programs.into_iter().enumerate() {
            self.frontends[i] = Frontend::Program {
                ops,
                next: 0,
                nop_until: 0,
            };
        }
        let watchdog = self.now + 2_000_000_000;
        let result = loop {
            if let Err(e) = observe(self) {
                break Err((self.now, e));
            }
            if self.step_engine(|s| (0..s.cfg.cores).all(|i| s.program_done(i))) {
                break Ok(self.now - start);
            }
            assert!(self.now < watchdog, "program run exceeded watchdog budget");
        };
        for fe in &mut self.frontends {
            *fe = Frontend::Idle;
        }
        self.wheel.valid = false;
        result
    }

    /// Runs the system until every cache and the L2 are quiescent (drains
    /// asynchronous writebacks that no fence waited for).
    pub fn quiesce(&mut self) {
        match self.quiesce_observed(|_| Ok::<(), std::convert::Infallible>(())) {
            Ok(()) => {}
            Err((_, e)) => match e {},
        }
    }

    /// [`Self::quiesce`] with a continuous observer, under the same contract
    /// as [`Self::run_programs_observed`].
    pub fn quiesce_observed<E>(
        &mut self,
        mut observe: impl FnMut(&System) -> Result<(), E>,
    ) -> Result<(), (u64, E)> {
        self.wheel.valid = false;
        let watchdog = self.now + 1_000_000;
        loop {
            if let Err(e) = observe(self) {
                return Err((self.now, e));
            }
            if self.step_engine(|s| s.l1s.iter().all(|c| c.is_quiescent()) && s.l2.is_quiescent()) {
                return Ok(());
            }
            assert!(self.now < watchdog, "quiesce exceeded watchdog budget");
        }
    }

    /// Thread mode's engine loop ([`crate::workload::Threads`]): runs one
    /// closure per core (missing cores idle), each driving its core through
    /// a [`CoreHandle`]; returns `(elapsed_cycles, results, budget_expired)`.
    ///
    /// **Budget semantics** (preserved by [`RunReport`]): `budget` is a
    /// *soft* stop measured from the call. Once `budget` cycles have
    /// elapsed, every [`CoreHandle`] response carries `halted = true` and
    /// well-behaved workers wind down — but the run continues until every
    /// worker actually returns, so the elapsed cycles *include* the
    /// post-deadline drain and every worker's result is present in the
    /// returned `Vec` (in worker order). Expiry never truncates results.
    ///
    /// # Panics
    ///
    /// Panics if more workers than cores are supplied or a worker panics.
    pub(crate) fn run_threads_inner<R, F>(
        &mut self,
        workers: Vec<F>,
        budget: Option<u64>,
    ) -> (u64, Vec<R>, bool)
    where
        R: Send,
        F: FnOnce(CoreHandle) -> R + Send,
    {
        assert!(
            workers.len() <= self.cfg.cores,
            "{} workers for {} cores",
            workers.len(),
            self.cfg.cores
        );
        let start = self.now;
        self.wheel.valid = false;
        self.deadline = budget.map_or(u64::MAX, |b| start + b);
        let n = workers.len();
        let mut handles = Vec::with_capacity(n);
        for (i, fe) in self.frontends.iter_mut().enumerate().take(n) {
            let (cmd_tx, cmd_rx) = unbounded();
            let (res_tx, res_rx) = unbounded();
            *fe = Frontend::Thread {
                rx: cmd_rx,
                tx: res_tx,
                busy: None,
                nop_until: None,
                finished: false,
            };
            handles.push(CoreHandle::new(cmd_tx, res_rx, i));
        }
        let results = std::thread::scope(|scope| {
            let joins: Vec<_> = workers
                .into_iter()
                .zip(handles)
                .map(|(w, h)| scope.spawn(move || w(h)))
                .collect();
            while !self.step_engine(|s| (0..s.cfg.cores).all(|i| s.program_done(i))) {}
            joins
                .into_iter()
                .map(|j| j.join().expect("workload thread panicked"))
                .collect()
        });
        let expired = self.deadline != u64::MAX && self.now >= self.deadline;
        for fe in &mut self.frontends {
            *fe = Frontend::Idle;
        }
        self.wheel.valid = false;
        self.deadline = u64::MAX;
        (self.now - start, results, expired)
    }
}

// --- snapshot & restore (DESIGN.md §11) ---

use crate::snapshot::Snapshot;
use skipit_snap::{Codec, SnapError, SnapReader, SnapWriter};

impl Frontend {
    /// Thread-mode frontends hold host channel endpoints that no byte
    /// encoding can capture; snapshotting them is a typed error.
    fn encode(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        match self {
            Frontend::Idle => w.put_u8(0),
            Frontend::Program {
                ops,
                next,
                nop_until,
            } => {
                w.put_u8(1);
                ops.encode(w);
                next.encode(w);
                nop_until.encode(w);
            }
            Frontend::Thread { .. } => return Err(SnapError::LiveThreads),
            Frontend::Replay {
                ops,
                next,
                nop_until,
                base,
            } => {
                w.put_u8(2);
                ops.encode(w);
                next.encode(w);
                nop_until.encode(w);
                base.encode(w);
            }
        }
        Ok(())
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(Frontend::Idle),
            1 => {
                let ops = Vec::<Op>::decode(r)?;
                let next = usize::decode(r)?;
                if next > ops.len() {
                    return Err(SnapError::Corrupt("frontend program cursor"));
                }
                Ok(Frontend::Program {
                    ops,
                    next,
                    nop_until: u64::decode(r)?,
                })
            }
            2 => {
                let ops = Vec::<TimedOp>::decode(r)?;
                let next = usize::decode(r)?;
                if next > ops.len() {
                    return Err(SnapError::Corrupt("frontend replay cursor"));
                }
                Ok(Frontend::Replay {
                    ops,
                    next,
                    nop_until: u64::decode(r)?,
                    base: u64::decode(r)?,
                })
            }
            _ => Err(SnapError::Corrupt("frontend tag")),
        }
    }
}

/// Fingerprint of the configuration fields that shape simulated state:
/// geometry, latencies, queue depths and the perturbation setup. The
/// engine choice, thread count and the lockstep oracle are deliberately
/// *excluded* — they are host-side scheduling decisions whose observable
/// behaviour is bit-identical by contract, so a snapshot taken under one
/// engine restores under any other.
fn config_fingerprint(cfg: &SystemConfig) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    format!(
        "{}|{:?}|{:?}|{:?}|{}|{}|{}|{:?}|{:?}",
        cfg.cores,
        cfg.l1,
        cfg.l2,
        cfg.dram,
        cfg.link_latency,
        cfg.link_capacity,
        cfg.issue_width,
        cfg.lsu,
        cfg.perturb
    )
    .hash(&mut h);
    h.finish()
}

impl System {
    /// Captures every piece of simulated state into a versioned,
    /// self-describing [`Snapshot`]: per-core frontends and LSUs, L1
    /// arrays + flush units + MSHRs, all five TileLink links per core, the
    /// L2, DRAM, the clock, token allocator, deadline and engine counters
    /// (including the perturbation draw positions, so a perturbed run
    /// resumes on the exact jitter sequence it would have seen).
    ///
    /// Host-side observation machinery — trace sinks, telemetry, the wheel
    /// scheduler and thread pool — is not captured; [`System::restore`]
    /// rebuilds it from the offered configuration.
    ///
    /// # Errors
    ///
    /// [`SnapError::LiveThreads`] if any core is in thread mode (inside a
    /// [`crate::workload::Threads`] run): host channel endpoints cannot be
    /// encoded. Snapshot between runs, or from program mode's observer hook.
    pub fn snapshot(&self) -> Result<Snapshot, SnapError> {
        let mut w = SnapWriter::new();
        Snapshot::write_header(&mut w, config_fingerprint(&self.cfg));
        w.put_u64(self.cfg.cores as u64);
        self.now.encode(&mut w);
        self.next_token.encode(&mut w);
        self.deadline.encode(&mut w);
        self.engine.encode(&mut w);
        for fe in &self.frontends {
            fe.encode(&mut w)?;
        }
        for lsu in &self.lsus {
            lsu.encode_state(&mut w);
        }
        for l1 in &self.l1s {
            l1.encode_state(&mut w);
        }
        self.l2.encode_state(&mut w);
        self.dram.encode_state(&mut w);
        for i in 0..self.cfg.cores {
            self.a[i].encode_state(&mut w);
            self.b[i].encode_state(&mut w);
            self.c[i].encode_state(&mut w);
            self.d[i].encode_state(&mut w);
            self.e[i].encode_state(&mut w);
        }
        Ok(Snapshot::from_writer(w))
    }

    /// Rebuilds a live system from `snap` under `cfg`. The restored system
    /// is bit-identical to the snapshotted one going forward — same cycle
    /// count, statistics, durable image, state digests and trace streams —
    /// on any engine at any thread count: `cfg` may differ from the
    /// snapshotting configuration in [`SystemConfig::engine`],
    /// [`SystemConfig::engine_threads`] and
    /// [`SystemConfig::lockstep_oracle`] (host-side scheduling choices),
    /// but in nothing that shapes simulated state.
    ///
    /// Tracing and telemetry come up uninstalled (the snapshot carries no
    /// host-side observers); call [`System::set_trace`] afterwards.
    ///
    /// # Errors
    ///
    /// [`SnapError::ConfigMismatch`] if `cfg` disagrees with the
    /// snapshot's fingerprint; any other [`SnapError`] for corrupt,
    /// truncated, foreign or wrong-version bytes. Never panics on bad
    /// input.
    pub fn restore(snap: &Snapshot, cfg: &SystemConfig) -> Result<System, SnapError> {
        let mut r = snap.payload_reader()?;
        if r.get_u64()? != config_fingerprint(cfg) {
            return Err(SnapError::ConfigMismatch);
        }
        if r.get_u64()? != cfg.cores as u64 {
            return Err(SnapError::ConfigMismatch);
        }
        let mut sys = System::new(*cfg);
        sys.now = u64::decode(&mut r)?;
        sys.next_token = OpToken::decode(&mut r)?;
        sys.deadline = u64::decode(&mut r)?;
        sys.engine = EngineStats::decode(&mut r)?;
        for fe in &mut sys.frontends {
            *fe = Frontend::decode(&mut r)?;
        }
        for lsu in &mut sys.lsus {
            lsu.decode_state(&mut r)?;
        }
        for l1 in &mut sys.l1s {
            l1.decode_state(&mut r)?;
        }
        sys.l2.decode_state(&mut r)?;
        sys.dram.decode_state(&mut r)?;
        for i in 0..cfg.cores {
            sys.a[i].decode_state(&mut r)?;
            sys.b[i].decode_state(&mut r)?;
            sys.c[i].decode_state(&mut r)?;
            sys.d[i].decode_state(&mut r)?;
            sys.e[i].decode_state(&mut r)?;
        }
        r.finish()?;
        // The fresh wheel has never seen this state; force a replan.
        sys.wheel.valid = false;
        Ok(sys)
    }

    /// Continues a run restored mid-flight: steps the system until every
    /// program frontend has drained (immediately returning `0` if all
    /// cores are idle), then resets frontends to idle — exactly the tail
    /// of the [`crate::workload::Programs`] run the snapshot interrupted,
    /// so a restore-then-resume reaches the same final state, cycle count
    /// and statistics as the uninterrupted run.
    ///
    /// # Panics
    ///
    /// As a program-mode run (watchdog budget).
    pub fn resume_programs(&mut self) -> u64 {
        let start = self.now;
        self.wheel.valid = false;
        let watchdog = self.now + 2_000_000_000;
        let elapsed = loop {
            if self.step_engine(|s| (0..s.cfg.cores).all(|i| s.program_done(i))) {
                break self.now - start;
            }
            assert!(self.now < watchdog, "program run exceeded watchdog budget");
        };
        for fe in &mut self.frontends {
            *fe = Frontend::Idle;
        }
        self.wheel.valid = false;
        elapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Programs, Threads};

    fn sys(cores: usize, skip_it: bool) -> System {
        System::new(SystemConfig {
            cores,
            l1: L1Config {
                skip_it,
                ..L1Config::default()
            },
            ..SystemConfig::default()
        })
    }

    #[test]
    #[ignore = "diagnostic: per-cycle event-source histogram for fig09-shaped runs"]
    fn blame_fig09_event_sources() {
        for cores in [1usize, 8] {
            let mut s = sys(cores, false);
            let lines: Vec<Vec<u64>> = (0..cores as u64)
                .map(|t| {
                    (0..512 / cores as u64)
                        .map(|i| 0x100_0000 + t * 0x10_0000 + i * 64)
                        .collect()
                })
                .collect();
            let phases: [(&str, Vec<Vec<Op>>); 2] = [
                (
                    "dirty",
                    lines
                        .iter()
                        .map(|ls| {
                            ls.iter()
                                .map(|&a| Op::Store { addr: a, value: a })
                                .collect()
                        })
                        .collect(),
                ),
                (
                    "writeback",
                    lines
                        .iter()
                        .map(|ls| {
                            let mut p: Vec<Op> =
                                ls.iter().map(|&a| Op::Clean { addr: a }).collect();
                            p.push(Op::Fence);
                            p
                        })
                        .collect(),
                ),
            ];
            for (name, progs) in phases {
                for (i, ops) in progs.into_iter().enumerate() {
                    s.frontends[i] = Frontend::Program {
                        ops,
                        next: 0,
                        nop_until: 0,
                    };
                }
                let mut hist: std::collections::HashMap<&'static str, u64> = Default::default();
                let mut busy = 0u64;
                let mut total = 0u64;
                while !(0..s.cfg.cores).all(|i| s.program_done(i)) {
                    let blames = s.debug_event_blame();
                    if blames.is_empty() {
                        *hist.entry("idle").or_default() += 1;
                    } else {
                        busy += 1;
                        for b in blames {
                            *hist.entry(b).or_default() += 1;
                        }
                    }
                    total += 1;
                    s.tick();
                }
                for fe in &mut s.frontends {
                    *fe = Frontend::Idle;
                }
                let mut v: Vec<_> = hist.into_iter().collect();
                v.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
                eprintln!("cores={cores} phase={name}: {total} cycles, {busy} busy, {v:?}");
            }
        }
    }

    #[test]
    #[ignore = "diagnostic: host-side cost breakdown of an idle tick"]
    fn time_idle_tick_components() {
        use std::time::Instant;
        for cores in [1usize, 8] {
            let mut s = sys(cores, false);
            // Warm the system up with one store per core, then quiesce so
            // every component is idle but internally non-trivial.
            let progs = (0..cores as u64)
                .map(|t| {
                    vec![Op::Store {
                        addr: 0x100_0000 + t * 0x10_0000,
                        value: t,
                    }]
                })
                .collect();
            s.run(Programs(progs));
            const N: u64 = 1_000_000;
            let t0 = Instant::now();
            for _ in 0..N {
                s.tick();
            }
            let tick_ns = t0.elapsed().as_nanos() as f64 / N as f64;
            let t0 = Instant::now();
            let mut acc = 0u64;
            for _ in 0..N {
                acc = acc.wrapping_add(s.next_event().unwrap_or(0));
            }
            let ne_ns = t0.elapsed().as_nanos() as f64 / N as f64;
            let t0 = Instant::now();
            for _ in 0..N {
                let p = s.plan_tick();
                acc = acc.wrapping_add(p.cores);
            }
            let plan_ns = t0.elapsed().as_nanos() as f64 / N as f64;
            let now = s.now;
            let t0 = Instant::now();
            for _ in 0..N {
                let mut ports = skipit_dcache::L1Ports {
                    a: &mut s.a[0],
                    b: &mut s.b[0],
                    c: &mut s.c[0],
                    d: &mut s.d[0],
                    e: &mut s.e[0],
                };
                s.l1s[0].step(now, &mut ports);
            }
            let l1_ns = t0.elapsed().as_nanos() as f64 / N as f64;
            let t0 = Instant::now();
            for _ in 0..N {
                s.lsus[0].step(now, &mut s.l1s[0]);
            }
            let lsu_ns = t0.elapsed().as_nanos() as f64 / N as f64;
            let t0 = Instant::now();
            for _ in 0..N {
                let mut ports = L2Ports {
                    a: &mut s.a,
                    b: &mut s.b,
                    c: &mut s.c,
                    d: &mut s.d,
                    e: &mut s.e,
                    mem: &mut s.dram,
                };
                s.l2.step(now, &mut ports);
            }
            let l2_ns = t0.elapsed().as_nanos() as f64 / N as f64;
            let t0 = Instant::now();
            for _ in 0..N {
                s.step_frontends();
            }
            let fe_ns = t0.elapsed().as_nanos() as f64 / N as f64;
            eprintln!(
                "cores={cores}: tick {tick_ns:.0}ns, next_event {ne_ns:.0}ns, \
                 plan_tick {plan_ns:.0}ns, l1.step {l1_ns:.0}ns, lsu.step \
                 {lsu_ns:.0}ns, l2.step {l2_ns:.0}ns, frontends {fe_ns:.0}ns \
                 (acc {acc})"
            );
        }
    }

    #[test]
    fn single_core_store_flush_fence_persists() {
        let mut s = sys(1, false);
        let cycles = s
            .run(Programs(vec![vec![
                Op::Store {
                    addr: 0x1000,
                    value: 0xdead,
                },
                Op::Flush { addr: 0x1000 },
                Op::Fence,
            ]]))
            .cycles;
        assert!(cycles > 0);
        assert_eq!(s.dram().read_word_direct(0x1000), 0xdead);
    }

    #[test]
    fn store_without_writeback_is_not_persisted() {
        let mut s = sys(1, false);
        s.run(Programs(vec![vec![Op::Store {
            addr: 0x1000,
            value: 7,
        }]]));
        s.quiesce();
        let dram = s.durable_image();
        assert_eq!(
            dram.read_word_direct(0x1000),
            0,
            "unwritten-back data must be lost on crash"
        );
    }

    #[test]
    fn clean_persists_but_keeps_line() {
        let mut s = sys(1, false);
        s.run(Programs(vec![vec![
            Op::Store {
                addr: 0x2000,
                value: 3,
            },
            Op::Clean { addr: 0x2000 },
            Op::Fence,
            Op::Load { addr: 0x2000 },
        ]]));
        assert_eq!(s.dram().read_word_direct(0x2000), 3);
        assert_eq!(s.stats().l1[0].load_hits, 1, "clean must not invalidate");
    }

    #[test]
    fn flush_forces_refetch() {
        let mut s = sys(1, false);
        s.run(Programs(vec![vec![
            Op::Store {
                addr: 0x3000,
                value: 4,
            },
            Op::Flush { addr: 0x3000 },
            Op::Fence,
            Op::Load { addr: 0x3000 },
        ]]));
        let st = s.stats();
        assert_eq!(st.l1[0].load_hits, 0, "flush must invalidate the line");
        assert_eq!(st.l1[0].loads, 1);
        assert_eq!(s.dram().read_word_direct(0x3000), 4);
    }

    #[test]
    fn cross_core_coherence_transfers_value() {
        let mut s = sys(2, false);
        s.run(Programs(vec![
            vec![Op::Store {
                addr: 0x4000,
                value: 11,
            }],
            vec![],
        ]));
        let (_, vals) = s
            .run(Threads::new(vec![|h: CoreHandle| {
                let v = h.load(0x4000);
                h.finish();
                v
            }]))
            .into_parts();
        // Core 0 wrote; core 1 must read 11 through coherence... but note
        // the thread ran on core 0 here (workers map to cores in order), so
        // run a proper 2-core variant below. This checks basic re-read.
        assert_eq!(vals[0], 11);
    }

    #[test]
    fn two_threads_communicate_through_simulated_memory() {
        let mut s = sys(2, false);
        let (_, results) = s
            .run(
                Threads::new(vec![
                    Box::new(|h: CoreHandle| {
                        h.store(0x5000, 21);
                        // Signal readiness through another line.
                        h.store(0x5040, 1);
                        h.finish();
                        0u64
                    }) as Box<dyn FnOnce(CoreHandle) -> u64 + Send>,
                    Box::new(|h: CoreHandle| {
                        // Spin on the flag (coherent read).
                        while h.load(0x5040) == 0 {
                            if h.halted() {
                                return u64::MAX;
                            }
                        }
                        let v = h.load(0x5000);
                        h.finish();
                        v
                    }),
                ])
                .budget(2_000_000),
            )
            .into_parts();
        assert_eq!(results[1], 21);
    }

    #[test]
    fn skip_it_system_drops_redundant_writebacks() {
        let mut s = sys(1, true);
        let mut prog = vec![
            Op::Store {
                addr: 0x6000,
                value: 1,
            },
            Op::Clean { addr: 0x6000 },
            Op::Fence,
        ];
        for _ in 0..10 {
            prog.push(Op::Clean { addr: 0x6000 });
            prog.push(Op::Fence);
        }
        s.run(Programs(vec![prog]));
        let st = s.stats();
        assert_eq!(st.l1[0].writebacks_skipped, 10);
        assert_eq!(st.l1[0].writebacks_enqueued, 1);
    }

    #[test]
    fn naive_system_sends_all_writebacks_but_l2_skips_dram() {
        let mut s = sys(1, false);
        let mut prog = vec![
            Op::Store {
                addr: 0x6000,
                value: 1,
            },
            Op::Clean { addr: 0x6000 },
            Op::Fence,
        ];
        for _ in 0..10 {
            prog.push(Op::Clean { addr: 0x6000 });
            prog.push(Op::Fence);
        }
        s.run(Programs(vec![prog]));
        let st = s.stats();
        assert_eq!(st.l1[0].writebacks_skipped, 0);
        assert_eq!(st.l1[0].writebacks_enqueued, 11);
        // The L2 dirty-bit check eliminates the redundant DRAM writes
        // (§5.5): only the first clean writes memory.
        assert_eq!(st.l2.root_release_dram_writes, 1);
        assert_eq!(st.l2.root_release_dram_skipped, 10);
    }

    #[test]
    fn fence_after_many_flushes_waits_for_all() {
        let mut s = sys(1, false);
        let mut prog = Vec::new();
        for i in 0..32u64 {
            prog.push(Op::Store {
                addr: 0x8000 + i * 64,
                value: i + 1,
            });
        }
        for i in 0..32u64 {
            prog.push(Op::Flush {
                addr: 0x8000 + i * 64,
            });
        }
        prog.push(Op::Fence);
        s.run(Programs(vec![prog]));
        for i in 0..32u64 {
            assert_eq!(s.dram().read_word_direct(0x8000 + i * 64), i + 1);
        }
    }

    #[test]
    fn flush_latency_is_near_paper_calibration() {
        // §7.2: a single-line clean/flush has a median latency of ≈100
        // cycles. Allow a generous band; EXPERIMENTS.md tracks the value.
        let mut s = sys(1, false);
        s.run(Programs(vec![vec![Op::Store {
            addr: 0x9000,
            value: 1,
        }]]));
        let cycles = s
            .run(Programs(vec![vec![Op::Flush { addr: 0x9000 }, Op::Fence]]))
            .cycles;
        assert!(
            (40..=250).contains(&cycles),
            "single-line flush+fence took {cycles} cycles"
        );
    }

    #[test]
    fn rdcycle_advances() {
        let mut s = sys(1, false);
        let (_, vals) = s
            .run(Threads::new(vec![|h: CoreHandle| {
                let t0 = h.rdcycle();
                h.store(0x100, 1);
                let t1 = h.rdcycle();
                h.finish();
                (t0, t1)
            }]))
            .into_parts();
        assert!(vals[0].1 > vals[0].0);
    }

    #[test]
    fn work_occupies_cycles() {
        let mut s = sys(1, false);
        let (_, vals) = s
            .run(Threads::new(vec![|h: CoreHandle| {
                let t0 = h.rdcycle();
                h.work(100);
                let t1 = h.rdcycle();
                h.finish();
                t1 - t0
            }]))
            .into_parts();
        assert!(vals[0] >= 100, "work(100) took only {} cycles", vals[0]);
    }

    #[test]
    fn budget_halts_threads() {
        let mut s = sys(1, false);
        let (_, ops) = s
            .run(
                Threads::new(vec![|h: CoreHandle| {
                    let mut n = 0u64;
                    while !h.halted() {
                        h.store(0x100, n);
                        n += 1;
                    }
                    h.finish();
                    n
                }])
                .budget(10_000),
            )
            .into_parts();
        assert!(ops[0] > 0);
    }

    /// Two contending cores with long idle stretches — plenty of windows for
    /// the fast engine to skip, plenty of races it must not reorder.
    fn contended_programs() -> Vec<Vec<Op>> {
        let line = |i: u64| 0x1_0000 + i * 64;
        let mut p0 = Vec::new();
        for i in 0..8 {
            p0.push(Op::Store {
                addr: line(i),
                value: i + 1,
            });
        }
        for i in 0..8 {
            p0.push(Op::Clean { addr: line(i) });
        }
        p0.push(Op::Fence);
        p0.push(Op::Nop { cycles: 500 });
        p0.push(Op::Load { addr: line(0) });
        let mut p1 = vec![Op::Nop { cycles: 37 }];
        for i in 0..8 {
            p1.push(Op::Store {
                addr: line(i),
                value: 100 + i,
            });
            p1.push(Op::Flush { addr: line(i) });
        }
        p1.push(Op::Fence);
        vec![p0, p1]
    }

    fn engine_run(kind: EngineKind, threads: usize) -> (u64, SystemStats, Vec<u64>, EngineStats) {
        let mut s = System::new(SystemConfig {
            cores: 2,
            engine: kind,
            engine_threads: threads,
            ..SystemConfig::default()
        });
        let cycles = s.run(Programs(contended_programs())).cycles;
        s.quiesce();
        let words = (0..8)
            .map(|i| s.dram().read_word_direct(0x1_0000 + i * 64))
            .collect();
        (cycles, s.stats(), words, s.engine_stats())
    }

    #[test]
    fn fast_engines_match_naive_engine_exactly() {
        let (naive_cycles, naive_stats, naive_mem, naive_engine) = engine_run(EngineKind::Naive, 0);
        for (kind, threads) in [
            (EngineKind::GlobalGate, 0),
            (EngineKind::ComponentWheel, 0),
            (EngineKind::ParallelWheel, 1),
            (EngineKind::ParallelWheel, 2),
        ] {
            let (cycles, stats, mem, engine) = engine_run(kind, threads);
            assert_eq!(naive_cycles, cycles, "elapsed cycles diverge ({kind:?})");
            assert_eq!(naive_stats, stats, "statistics diverge ({kind:?})");
            assert_eq!(naive_mem, mem, "DRAM contents diverge ({kind:?})");
            assert!(
                engine.jumps > 0 && engine.skipped_cycles > 0,
                "{kind:?} never skipped on an idle-heavy workload: {engine:?}"
            );
            assert!(
                engine.component_steps < engine.component_slots,
                "{kind:?} skipped no component work: {engine:?}"
            );
        }
        assert_eq!(
            naive_engine,
            EngineStats::default(),
            "naive engine must not count jumps"
        );
    }

    /// The wheel's `EngineStats` (jump structure, per-slot step counts) are
    /// scheduling decisions, not just outcomes — the parallel engine must
    /// reproduce them bit-for-bit at every thread count, or its due-cycle
    /// bookkeeping has drifted from the serial wheel's.
    #[test]
    fn parallel_wheel_reproduces_wheel_engine_stats_exactly() {
        let wheel = engine_run(EngineKind::ComponentWheel, 0);
        for threads in [1, 2] {
            let par = engine_run(EngineKind::ParallelWheel, threads);
            assert_eq!(wheel, par, "parallel wheel @ {threads} threads diverges");
        }
    }

    /// An all-cores-busy workload on more cores than [`PARALLEL_MIN_DUE`],
    /// so the pool genuinely dispatches (no serial fallback): cycles,
    /// stats, durable words and engine counters must match the serial
    /// wheel at several thread counts.
    #[test]
    fn parallel_wheel_is_exact_on_saturated_workload() {
        let run = |kind: EngineKind, threads: usize| {
            let mut s = System::new(SystemConfig {
                cores: 8,
                engine: kind,
                engine_threads: threads,
                ..SystemConfig::default()
            });
            let progs = (0..8u64)
                .map(|t| {
                    let base = 0x10_0000 + t * 0x1_0000;
                    let mut p = Vec::new();
                    for i in 0..24 {
                        p.push(Op::Store {
                            addr: base + i * 64,
                            value: t << 32 | i,
                        });
                    }
                    for i in 0..24 {
                        p.push(Op::Clean {
                            addr: base + i * 64,
                        });
                    }
                    p.push(Op::Fence);
                    p
                })
                .collect();
            let cycles = s.run(Programs(progs)).cycles;
            s.quiesce();
            let words: Vec<u64> = (0..8u64)
                .flat_map(|t| (0..24).map(move |i| (0x10_0000 + t * 0x1_0000) + i * 64))
                .map(|a| s.dram().read_word_direct(a))
                .collect();
            (cycles, s.stats(), words, s.engine_stats())
        };
        let wheel = run(EngineKind::ComponentWheel, 0);
        for threads in [2, 3, 8] {
            let par = run(EngineKind::ParallelWheel, threads);
            assert_eq!(
                wheel, par,
                "saturated parallel wheel @ {threads} threads diverges"
            );
        }
    }

    #[test]
    fn wheel_skips_idle_cores_inside_busy_cycles() {
        // Four cores, only core 0 busy: even on executed (non-jumped)
        // cycles the wheel must leave the three idle core slots asleep, so
        // well over half of all component slots go unstepped.
        let mut s = System::new(SystemConfig {
            cores: 4,
            ..SystemConfig::default()
        });
        let mut prog = Vec::new();
        for i in 0..16u64 {
            prog.push(Op::Store {
                addr: 0x2_0000 + i * 64,
                value: i + 1,
            });
        }
        for i in 0..16u64 {
            prog.push(Op::Clean {
                addr: 0x2_0000 + i * 64,
            });
        }
        prog.push(Op::Fence);
        s.run(Programs(vec![prog]));
        let e = s.engine_stats();
        let pct = e.component_skipped_pct().unwrap();
        assert!(
            pct > 50.0,
            "wheel burned idle-core slots: {pct:.1}% skipped, {e:?}"
        );
    }

    #[test]
    fn lockstep_oracle_accepts_real_windows() {
        let mut s = System::new(SystemConfig {
            cores: 2,
            lockstep_oracle: true,
            ..SystemConfig::default()
        });
        s.run(Programs(contended_programs()));
        assert!(
            s.engine_stats().jumps > 0,
            "oracle mode must still take (verified) jumps"
        );
    }

    #[test]
    fn thread_mode_matches_naive_engine() {
        let run = |kind: EngineKind| {
            let mut s = System::new(SystemConfig {
                cores: 2,
                engine: kind,
                ..SystemConfig::default()
            });
            s.run(Threads::new(vec![
                Box::new(|h: CoreHandle| {
                    for i in 0..6u64 {
                        h.store(0x7000 + i * 64, i + 1);
                    }
                    h.work(200);
                    let v = h.load(0x7000);
                    h.flush(0x7000);
                    h.fence();
                    h.finish();
                    v
                }) as Box<dyn FnOnce(CoreHandle) -> u64 + Send>,
                Box::new(|h: CoreHandle| {
                    h.work(50);
                    let v = h.fetch_add(0x7000, 10);
                    h.fence();
                    h.finish();
                    v
                }),
            ]))
            .into_parts()
        };
        let naive = run(EngineKind::Naive);
        assert_eq!(naive, run(EngineKind::GlobalGate));
        assert_eq!(naive, run(EngineKind::ComponentWheel));
        assert_eq!(naive, run(EngineKind::ParallelWheel));
    }

    #[test]
    #[should_panic(expected = "workload thread panicked")]
    fn worker_panic_propagates_instead_of_wedging() {
        let mut s = sys(2, false);
        let _ = s
            .run(
                Threads::new(vec![
                    Box::new(|h: CoreHandle| -> u64 {
                        h.store(0x100, 1);
                        panic!("injected workload failure");
                    }) as Box<dyn FnOnce(CoreHandle) -> u64 + Send>,
                    Box::new(|h: CoreHandle| {
                        h.store(0x140, 2);
                        h.finish();
                        0
                    }),
                ])
                .budget(1_000_000),
            )
            .into_parts();
    }

    /// Snapshots the contended 2-core run at the first observed cycle
    /// `>= at`, restores it under `restore_cfg`, resumes, and checks the
    /// resumed tail reaches the exact final state of the uninterrupted
    /// run (digest, cycles, stats, engine counters, durable words).
    fn snapshot_resume_matches(at: u64, restore_cfg: SystemConfig) {
        let base_cfg = SystemConfig {
            cores: 2,
            ..SystemConfig::default()
        };
        // Uninterrupted reference.
        let mut reference = System::new(base_cfg);
        let ref_cycles = reference.run(Programs(contended_programs())).cycles;
        let ref_digest = reference.state_digest();

        // Interrupted run: snapshot mid-flight, discard the original.
        let mut s = System::new(base_cfg);
        let mut snap = None;
        s.run_programs_observed(contended_programs(), |sys| {
            if sys.now() >= at && snap.is_none() {
                snap = Some(sys.snapshot().expect("program mode snapshots"));
            }
            Ok::<(), std::convert::Infallible>(())
        })
        .unwrap();
        let snap = snap.expect("observer fired");
        let pre_cycles = {
            let r = System::restore(&snap, &base_cfg).unwrap();
            assert!(r.now() >= at, "snapshot taken at the requested cycle");
            r.now()
        };

        let mut resumed = System::restore(&snap, &restore_cfg).unwrap();
        let tail = resumed.resume_programs();
        assert_eq!(pre_cycles + tail, ref_cycles, "cycle counts agree");
        assert_eq!(resumed.state_digest(), ref_digest, "digests agree");
        assert_eq!(resumed.stats(), reference.stats(), "stats agree");
        // Engine counters are per-engine-kind bookkeeping; they only track
        // the reference when the tail runs under the same engine. Even
        // then, exact `component_steps` may differ by a step or two at the
        // resume boundary — the fresh wheel's replan can prove idle a
        // component the continuous run's incrementally-armed wheel stepped
        // as a no-op. Wheel arming history is host-side, not simulated
        // state; the cycle-derived slot count must agree exactly.
        if restore_cfg.engine == base_cfg.engine {
            assert_eq!(
                resumed.engine_stats().component_slots,
                reference.engine_stats().component_slots,
                "component slots agree"
            );
        }
        for i in 0..8 {
            let addr = 0x1_0000 + i * 64;
            assert_eq!(
                resumed.durable_image().read_word_direct(addr),
                reference.durable_image().read_word_direct(addr)
            );
        }
    }

    #[test]
    fn snapshot_restore_resume_is_bit_identical() {
        snapshot_resume_matches(
            40,
            SystemConfig {
                cores: 2,
                ..SystemConfig::default()
            },
        );
    }

    #[test]
    fn snapshot_restores_under_any_engine() {
        // Snapshot under the default wheel engine; resume under each of the
        // other engines (and a fixed parallel thread count) — the simulated
        // tail must be bit-identical.
        for engine in [
            EngineKind::Naive,
            EngineKind::GlobalGate,
            EngineKind::ParallelWheel,
        ] {
            snapshot_resume_matches(
                60,
                SystemConfig {
                    cores: 2,
                    engine,
                    engine_threads: 2,
                    ..SystemConfig::default()
                },
            );
        }
    }

    #[test]
    fn quiesced_snapshot_roundtrips_exactly() {
        let mut s = sys(2, true);
        s.run(Programs(contended_programs()));
        s.quiesce();
        let snap = s.snapshot().unwrap();
        let restored = System::restore(&snap, s.config()).unwrap();
        assert_eq!(restored.state_digest(), s.state_digest());
        assert_eq!(restored.now(), s.now());
        assert_eq!(restored.stats(), s.stats());
        // And the restored image re-snapshots to the same bytes.
        assert_eq!(restored.snapshot().unwrap(), snap);
    }

    #[test]
    fn restore_rejects_mismatched_config() {
        let mut s = sys(1, false);
        s.run(Programs(vec![vec![Op::Store {
            addr: 0x40,
            value: 1,
        }]]));
        let snap = s.snapshot().unwrap();
        let other = SystemConfig {
            cores: 2,
            ..SystemConfig::default()
        };
        assert!(matches!(
            System::restore(&snap, &other),
            Err(SnapError::ConfigMismatch)
        ));
    }

    #[test]
    fn restore_rejects_truncated_and_trailing_bytes() {
        let s = sys(1, false);
        let bytes = s.snapshot().unwrap().into_bytes();

        let truncated = Snapshot::from_bytes(bytes[..bytes.len() - 1].to_vec()).unwrap();
        assert!(System::restore(&truncated, s.config()).is_err());

        let mut padded = bytes.clone();
        padded.push(0);
        let padded = Snapshot::from_bytes(padded).unwrap();
        assert!(matches!(
            System::restore(&padded, s.config()),
            Err(SnapError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn live_thread_frontends_refuse_to_snapshot() {
        let mut s = sys(1, false);
        let (_cmd_tx, cmd_rx) = unbounded();
        let (res_tx, _res_rx) = unbounded();
        s.frontends[0] = Frontend::Thread {
            rx: cmd_rx,
            tx: res_tx,
            busy: None,
            nop_until: None,
            finished: false,
        };
        assert_eq!(s.snapshot().unwrap_err(), SnapError::LiveThreads);
    }
}
