//! The cycle-stepped multicore system: N BOOM-style cores with private L1
//! data caches, a shared inclusive L2, and DRAM (the §7.1 platform).

use crate::handle::{Cmd, CoreHandle, Resp};
use crate::lsu::{Lsu, LsuConfig};
use crate::op::{Op, OpToken};
use crossbeam::channel::{unbounded, Receiver, Sender};
use skipit_dcache::{DataCache, L1Config, L1Stats};
use skipit_llc::{InclusiveCache, L2Config, L2Ports, L2Stats};
use skipit_mem::{Dram, DramConfig, MemStats};
use skipit_tilelink::{ChannelA, ChannelB, ChannelC, ChannelD, ChannelE, Link};

/// Configuration of the whole simulated SoC.
#[derive(Clone, Copy, Debug)]
pub struct SystemConfig {
    /// Number of cores (each with a private L1 D-cache).
    pub cores: usize,
    /// Per-core L1 configuration (including the Skip It switch).
    pub l1: L1Config,
    /// Shared L2 configuration.
    pub l2: L2Config,
    /// DRAM timing.
    pub dram: DramConfig,
    /// Wire latency of every TileLink channel hop (cycles).
    pub link_latency: u64,
    /// Buffering per channel (messages).
    pub link_capacity: usize,
    /// Frontend issue width (ops entering the LSU per cycle).
    pub issue_width: usize,
    /// LSU sizing.
    pub lsu: LsuConfig,
}

impl Default for SystemConfig {
    /// The paper's evaluation platform (§7.1): dual-core, 32 KiB L1s,
    /// 512 KiB shared L2.
    fn default() -> Self {
        SystemConfig {
            cores: 2,
            l1: L1Config::default(),
            l2: L2Config::default(),
            dram: DramConfig::default(),
            link_latency: 1,
            link_capacity: 8,
            issue_width: 2,
            lsu: LsuConfig::default(),
        }
    }
}

/// Aggregated counters of a system.
#[derive(Clone, Debug)]
pub struct SystemStats {
    /// Current cycle.
    pub cycles: u64,
    /// Per-core L1 counters.
    pub l1: Vec<L1Stats>,
    /// L2 counters.
    pub l2: L2Stats,
    /// Memory counters.
    pub mem: MemStats,
}

impl SystemStats {
    /// Renders the counters as a human-readable report (used by examples
    /// and benchmark summaries).
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "cycles: {}", self.cycles);
        for (i, l1) in self.l1.iter().enumerate() {
            let _ = writeln!(
                out,
                "core {i}: loads {} (hits {}), stores {} (hits {}), amos {}, nacks {}",
                l1.loads, l1.load_hits, l1.stores, l1.store_hits, l1.amos, l1.nacks
            );
            let _ = writeln!(
                out,
                "  writebacks: enqueued {}, skipped(SkipIt) {}, coalesced {}, \
                 RootReleases {} ({} with data)",
                l1.writebacks_enqueued,
                l1.writebacks_skipped,
                l1.writebacks_coalesced,
                l1.root_releases_sent,
                l1.root_releases_with_data
            );
            let _ = writeln!(
                out,
                "  probes {} ({} with data), evictions {} ({} dirty), \
                 flush-entry fixups: probe {} / evict {}",
                l1.probes_handled,
                l1.probes_with_data,
                l1.evictions,
                l1.dirty_evictions,
                l1.flush_entries_probe_invalidated,
                l1.flush_entries_evict_invalidated
            );
        }
        let _ = writeln!(
            out,
            "L2: acquires {} (clean {}, dirty {}), RootRelease flush {} / clean {}, \
             DRAM writes {} (trivially skipped {}), probes {}, releases {}, \
             evictions {} ({} dirty), list-buffered {}",
            self.l2.acquires,
            self.l2.grants_clean,
            self.l2.grants_dirty,
            self.l2.root_release_flush,
            self.l2.root_release_clean,
            self.l2.root_release_dram_writes,
            self.l2.root_release_dram_skipped,
            self.l2.probes_sent,
            self.l2.releases,
            self.l2.evictions,
            self.l2.dirty_evictions,
            self.l2.list_buffered
        );
        let _ = writeln!(out, "DRAM: reads {}, writes {}", self.mem.reads, self.mem.writes);
        out
    }
}

enum Frontend {
    Idle,
    Program {
        ops: Vec<Op>,
        next: usize,
        nop_until: u64,
    },
    Thread {
        rx: Receiver<Cmd>,
        tx: Sender<Resp>,
        busy: Option<OpToken>,
        nop_until: Option<u64>,
        finished: bool,
    },
}

/// The simulated SoC. See the [crate docs](crate) for the two drive modes.
pub struct System {
    cfg: SystemConfig,
    now: u64,
    lsus: Vec<Lsu>,
    l1s: Vec<DataCache>,
    l2: InclusiveCache,
    dram: Dram,
    frontends: Vec<Frontend>,
    next_token: OpToken,
    // Per-core channel links (L1 side index == core index).
    a: Vec<Link<ChannelA>>,
    b: Vec<Link<ChannelB>>,
    c: Vec<Link<ChannelC>>,
    d: Vec<Link<ChannelD>>,
    e: Vec<Link<ChannelE>>,
    /// Absolute cycle after which thread-mode responses carry `halted`.
    deadline: u64,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("cores", &self.cfg.cores)
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

impl System {
    /// Builds a quiesced system.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.cores` is 0 or exceeds 32, or a sub-config is invalid.
    pub fn new(cfg: SystemConfig) -> Self {
        assert!((1..=32).contains(&cfg.cores), "1..=32 cores supported");
        macro_rules! links {
            () => {
                (0..cfg.cores)
                    .map(|_| Link::new(cfg.link_latency, cfg.link_capacity))
                    .collect()
            };
        }
        System {
            now: 0,
            lsus: (0..cfg.cores).map(|i| Lsu::new(i, cfg.lsu)).collect(),
            l1s: (0..cfg.cores).map(|i| DataCache::new(i, cfg.l1)).collect(),
            l2: InclusiveCache::new(cfg.cores, cfg.l2),
            dram: Dram::new(cfg.dram),
            frontends: (0..cfg.cores).map(|_| Frontend::Idle).collect(),
            next_token: 0,
            a: links!(),
            b: links!(),
            c: links!(),
            d: links!(),
            e: links!(),
            deadline: u64::MAX,
            cfg,
        }
    }

    /// The current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Aggregated counters.
    pub fn stats(&self) -> SystemStats {
        SystemStats {
            cycles: self.now,
            l1: self.l1s.iter().map(|c| c.stats()).collect(),
            l2: self.l2.stats(),
            mem: self.dram.stats(),
        }
    }

    /// The persisted memory image (what a crash-recovery procedure sees).
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// Direct (test/bench setup) access to memory.
    pub fn dram_mut(&mut self) -> &mut Dram {
        &mut self.dram
    }

    /// Per-core L1 peek helpers for tests and examples.
    pub fn l1(&self, core: usize) -> &DataCache {
        &self.l1s[core]
    }

    /// L2 peek helpers for tests and examples.
    pub fn l2(&self) -> &InclusiveCache {
        &self.l2
    }

    /// Simulates a power failure: every cache's contents are lost; only the
    /// DRAM (persistence domain) survives (§2.5).
    pub fn crash(self) -> Dram {
        self.dram
    }

    /// Starts recording per-op completion latencies on every core (bounded
    /// to `capacity` records per core). See [`crate::trace`].
    pub fn enable_tracing(&mut self, capacity: usize) {
        for lsu in &mut self.lsus {
            lsu.enable_tracing(capacity);
        }
    }

    /// All trace records across cores, in completion order per core.
    pub fn trace_records(&self) -> Vec<crate::trace::TraceRecord> {
        self.lsus
            .iter()
            .filter_map(|l| l.trace())
            .flat_map(|t| t.records().iter().copied())
            .collect()
    }

    /// Clears every core's trace log.
    pub fn clear_traces(&mut self) {
        for lsu in &mut self.lsus {
            lsu.clear_trace();
        }
    }

    /// Advances the system by one cycle.
    pub fn tick(&mut self) {
        let now = self.now;
        {
            let mut ports = L2Ports {
                a: &mut self.a,
                b: &mut self.b,
                c: &mut self.c,
                d: &mut self.d,
                e: &mut self.e,
                mem: &mut self.dram,
            };
            self.l2.step(now, &mut ports);
        }
        for i in 0..self.cfg.cores {
            let mut ports = skipit_dcache::L1Ports {
                a: &mut self.a[i],
                b: &mut self.b[i],
                c: &mut self.c[i],
                d: &mut self.d[i],
                e: &mut self.e[i],
            };
            self.l1s[i].step(now, &mut ports);
            self.lsus[i].step(now, &mut self.l1s[i]);
        }
        self.step_frontends();
        self.now += 1;
    }


    fn step_frontends(&mut self) {
        let now = self.now;
        let issue_width = self.cfg.issue_width;
        for i in 0..self.cfg.cores {
            // Take the frontend out to appease the borrow checker; put it
            // back at the end.
            let mut fe = std::mem::replace(&mut self.frontends[i], Frontend::Idle);
            match &mut fe {
                Frontend::Idle => {}
                Frontend::Program {
                    ops,
                    next,
                    nop_until,
                } => {
                    self.lsus[i].drain_finished();
                    let mut issued = 0;
                    while issued < issue_width && *next < ops.len() && now >= *nop_until {
                        match ops[*next] {
                            Op::Nop { cycles } => {
                                *nop_until = now + cycles;
                                *next += 1;
                                issued += 1;
                            }
                            op => {
                                if !self.lsus[i].has_room(op) {
                                    break;
                                }
                                let tok = self.next_token + 1;
                                self.next_token = tok;
                                self.lsus[i].enqueue(tok, op, now);
                                *next += 1;
                                issued += 1;
                            }
                        }
                    }
                }
                Frontend::Thread {
                    rx,
                    tx,
                    busy,
                    nop_until,
                    finished,
                } => {
                    if !*finished {
                        // Deliver a completed op's result.
                        if let Some(tok) = *busy {
                            match self.lsus[i].take_finished(tok) {
                                Some(value) => {
                                    *busy = None;
                                    let _ = tx.send(Resp {
                                        value,
                                        halted: now >= self.deadline,
                                    });
                                }
                                None => {
                                    self.frontends[i] = fe;
                                    continue;
                                }
                            }
                        }
                        if let Some(until) = *nop_until {
                            if now < until {
                                self.frontends[i] = fe;
                                continue;
                            }
                            *nop_until = None;
                            let _ = tx.send(Resp {
                                value: 0,
                                halted: now >= self.deadline,
                            });
                        }
                        // Rendezvous: block until the workload's next
                        // command (its host-side computation takes zero
                        // simulated time).
                        loop {
                            match rx.recv() {
                                Ok(Cmd::RdCycle) => {
                                    let _ = tx.send(Resp {
                                        value: now,
                                        halted: now >= self.deadline,
                                    });
                                }
                                Ok(Cmd::Op(Op::Nop { cycles })) => {
                                    *nop_until = Some(now + cycles);
                                    break;
                                }
                                Ok(Cmd::Op(op)) => {
                                    let tok = self.next_token + 1;
                                    self.next_token = tok;
                                    // Thread mode has at most one op in
                                    // flight; room is guaranteed.
                                    self.lsus[i].enqueue(tok, op, now);
                                    *busy = Some(tok);
                                    break;
                                }
                                Ok(Cmd::Done) | Err(_) => {
                                    *finished = true;
                                    break;
                                }
                            }
                        }
                    }
                }
            }
            self.frontends[i] = fe;
        }
    }

    fn program_done(&self, core: usize) -> bool {
        match &self.frontends[core] {
            Frontend::Idle => true,
            Frontend::Program {
                ops,
                next,
                nop_until,
            } => {
                *next >= ops.len() && self.now >= *nop_until && self.lsus[core].is_empty()
            }
            Frontend::Thread { finished, .. } => *finished && self.lsus[core].is_empty(),
        }
    }

    /// Runs one fixed [`Op`] sequence per core (missing cores idle) to
    /// completion; returns the number of cycles elapsed. Callable repeatedly
    /// — cache and memory state persists between runs, which is how
    /// benchmarks separate warm-up from the measured phase.
    ///
    /// # Panics
    ///
    /// Panics if more programs than cores are supplied, or if the programs
    /// fail to finish within a watchdog budget (an interlock bug).
    pub fn run_programs(&mut self, programs: Vec<Vec<Op>>) -> u64 {
        assert!(
            programs.len() <= self.cfg.cores,
            "{} programs for {} cores",
            programs.len(),
            self.cfg.cores
        );
        let start = self.now;
        for (i, ops) in programs.into_iter().enumerate() {
            self.frontends[i] = Frontend::Program {
                ops,
                next: 0,
                nop_until: 0,
            };
        }
        let watchdog = self.now + 2_000_000_000;
        while !(0..self.cfg.cores).all(|i| self.program_done(i)) {
            self.tick();
            assert!(self.now < watchdog, "program run exceeded watchdog budget");
        }
        for fe in &mut self.frontends {
            *fe = Frontend::Idle;
        }
        self.now - start
    }

    /// Runs the system until every cache and the L2 are quiescent (drains
    /// asynchronous writebacks that no fence waited for).
    pub fn quiesce(&mut self) {
        let watchdog = self.now + 1_000_000;
        while !(self.l1s.iter().all(|c| c.is_quiescent()) && self.l2.is_quiescent()) {
            self.tick();
            assert!(self.now < watchdog, "quiesce exceeded watchdog budget");
        }
    }

    /// Runs one closure per core (missing cores idle), each driving its core
    /// through a [`CoreHandle`] under the deterministic rendezvous protocol.
    ///
    /// `budget` (cycles, measured from the call) soft-stops the run: once
    /// exceeded, every response carries `halted = true` and well-behaved
    /// workloads return. Returns `(elapsed_cycles, per-worker results)`.
    ///
    /// # Panics
    ///
    /// Panics if more workers than cores are supplied or a worker panics.
    pub fn run_threads<R, F>(&mut self, workers: Vec<F>, budget: Option<u64>) -> (u64, Vec<R>)
    where
        R: Send,
        F: FnOnce(CoreHandle) -> R + Send,
    {
        assert!(
            workers.len() <= self.cfg.cores,
            "{} workers for {} cores",
            workers.len(),
            self.cfg.cores
        );
        let start = self.now;
        self.deadline = budget.map_or(u64::MAX, |b| start + b);
        let n = workers.len();
        let mut handles = Vec::with_capacity(n);
        for (i, fe) in self.frontends.iter_mut().enumerate().take(n) {
            let (cmd_tx, cmd_rx) = unbounded();
            let (res_tx, res_rx) = unbounded();
            *fe = Frontend::Thread {
                rx: cmd_rx,
                tx: res_tx,
                busy: None,
                nop_until: None,
                finished: false,
            };
            handles.push(CoreHandle::new(cmd_tx, res_rx, i));
        }
        let results = std::thread::scope(|scope| {
            let joins: Vec<_> = workers
                .into_iter()
                .zip(handles)
                .map(|(w, h)| scope.spawn(move || w(h)))
                .collect();
            while !(0..self.cfg.cores).all(|i| self.program_done(i)) {
                self.tick();
            }
            joins
                .into_iter()
                .map(|j| j.join().expect("workload thread panicked"))
                .collect()
        });
        for fe in &mut self.frontends {
            *fe = Frontend::Idle;
        }
        self.deadline = u64::MAX;
        (self.now - start, results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(cores: usize, skip_it: bool) -> System {
        System::new(SystemConfig {
            cores,
            l1: L1Config {
                skip_it,
                ..L1Config::default()
            },
            ..SystemConfig::default()
        })
    }

    #[test]
    fn single_core_store_flush_fence_persists() {
        let mut s = sys(1, false);
        let cycles = s.run_programs(vec![vec![
            Op::Store {
                addr: 0x1000,
                value: 0xdead,
            },
            Op::Flush { addr: 0x1000 },
            Op::Fence,
        ]]);
        assert!(cycles > 0);
        assert_eq!(s.dram().read_word_direct(0x1000), 0xdead);
    }

    #[test]
    fn store_without_writeback_is_not_persisted() {
        let mut s = sys(1, false);
        s.run_programs(vec![vec![Op::Store {
            addr: 0x1000,
            value: 7,
        }]]);
        s.quiesce();
        let dram = s.crash();
        assert_eq!(
            dram.read_word_direct(0x1000),
            0,
            "unwritten-back data must be lost on crash"
        );
    }

    #[test]
    fn clean_persists_but_keeps_line() {
        let mut s = sys(1, false);
        s.run_programs(vec![vec![
            Op::Store {
                addr: 0x2000,
                value: 3,
            },
            Op::Clean { addr: 0x2000 },
            Op::Fence,
            Op::Load { addr: 0x2000 },
        ]]);
        assert_eq!(s.dram().read_word_direct(0x2000), 3);
        assert_eq!(s.stats().l1[0].load_hits, 1, "clean must not invalidate");
    }

    #[test]
    fn flush_forces_refetch() {
        let mut s = sys(1, false);
        s.run_programs(vec![vec![
            Op::Store {
                addr: 0x3000,
                value: 4,
            },
            Op::Flush { addr: 0x3000 },
            Op::Fence,
            Op::Load { addr: 0x3000 },
        ]]);
        let st = s.stats();
        assert_eq!(st.l1[0].load_hits, 0, "flush must invalidate the line");
        assert_eq!(st.l1[0].loads, 1);
        assert_eq!(s.dram().read_word_direct(0x3000), 4);
    }

    #[test]
    fn cross_core_coherence_transfers_value() {
        let mut s = sys(2, false);
        s.run_programs(vec![
            vec![Op::Store {
                addr: 0x4000,
                value: 11,
            }],
            vec![],
        ]);
        let (_, vals) = s.run_threads(
            vec![|h: CoreHandle| {
                let v = h.load(0x4000);
                h.finish();
                v
            }],
            None,
        );
        // Core 0 wrote; core 1 must read 11 through coherence... but note
        // the thread ran on core 0 here (workers map to cores in order), so
        // run a proper 2-core variant below. This checks basic re-read.
        assert_eq!(vals[0], 11);
    }

    #[test]
    fn two_threads_communicate_through_simulated_memory() {
        let mut s = sys(2, false);
        let (_, results) = s.run_threads(
            vec![
                Box::new(|h: CoreHandle| {
                    h.store(0x5000, 21);
                    // Signal readiness through another line.
                    h.store(0x5040, 1);
                    h.finish();
                    0u64
                }) as Box<dyn FnOnce(CoreHandle) -> u64 + Send>,
                Box::new(|h: CoreHandle| {
                    // Spin on the flag (coherent read).
                    while h.load(0x5040) == 0 {
                        if h.halted() {
                            return u64::MAX;
                        }
                    }
                    let v = h.load(0x5000);
                    h.finish();
                    v
                }),
            ],
            Some(2_000_000),
        );
        assert_eq!(results[1], 21);
    }

    #[test]
    fn skip_it_system_drops_redundant_writebacks() {
        let mut s = sys(1, true);
        let mut prog = vec![
            Op::Store {
                addr: 0x6000,
                value: 1,
            },
            Op::Clean { addr: 0x6000 },
            Op::Fence,
        ];
        for _ in 0..10 {
            prog.push(Op::Clean { addr: 0x6000 });
            prog.push(Op::Fence);
        }
        s.run_programs(vec![prog]);
        let st = s.stats();
        assert_eq!(st.l1[0].writebacks_skipped, 10);
        assert_eq!(st.l1[0].writebacks_enqueued, 1);
    }

    #[test]
    fn naive_system_sends_all_writebacks_but_l2_skips_dram() {
        let mut s = sys(1, false);
        let mut prog = vec![
            Op::Store {
                addr: 0x6000,
                value: 1,
            },
            Op::Clean { addr: 0x6000 },
            Op::Fence,
        ];
        for _ in 0..10 {
            prog.push(Op::Clean { addr: 0x6000 });
            prog.push(Op::Fence);
        }
        s.run_programs(vec![prog]);
        let st = s.stats();
        assert_eq!(st.l1[0].writebacks_skipped, 0);
        assert_eq!(st.l1[0].writebacks_enqueued, 11);
        // The L2 dirty-bit check eliminates the redundant DRAM writes
        // (§5.5): only the first clean writes memory.
        assert_eq!(st.l2.root_release_dram_writes, 1);
        assert_eq!(st.l2.root_release_dram_skipped, 10);
    }

    #[test]
    fn fence_after_many_flushes_waits_for_all() {
        let mut s = sys(1, false);
        let mut prog = Vec::new();
        for i in 0..32u64 {
            prog.push(Op::Store {
                addr: 0x8000 + i * 64,
                value: i + 1,
            });
        }
        for i in 0..32u64 {
            prog.push(Op::Flush {
                addr: 0x8000 + i * 64,
            });
        }
        prog.push(Op::Fence);
        s.run_programs(vec![prog]);
        for i in 0..32u64 {
            assert_eq!(s.dram().read_word_direct(0x8000 + i * 64), i + 1);
        }
    }

    #[test]
    fn flush_latency_is_near_paper_calibration() {
        // §7.2: a single-line clean/flush has a median latency of ≈100
        // cycles. Allow a generous band; EXPERIMENTS.md tracks the value.
        let mut s = sys(1, false);
        s.run_programs(vec![vec![Op::Store {
            addr: 0x9000,
            value: 1,
        }]]);
        let cycles = s.run_programs(vec![vec![Op::Flush { addr: 0x9000 }, Op::Fence]]);
        assert!(
            (40..=250).contains(&cycles),
            "single-line flush+fence took {cycles} cycles"
        );
    }

    #[test]
    fn rdcycle_advances() {
        let mut s = sys(1, false);
        let (_, vals) = s.run_threads(
            vec![|h: CoreHandle| {
                let t0 = h.rdcycle();
                h.store(0x100, 1);
                let t1 = h.rdcycle();
                h.finish();
                (t0, t1)
            }],
            None,
        );
        assert!(vals[0].1 > vals[0].0);
    }

    #[test]
    fn work_occupies_cycles() {
        let mut s = sys(1, false);
        let (_, vals) = s.run_threads(
            vec![|h: CoreHandle| {
                let t0 = h.rdcycle();
                h.work(100);
                let t1 = h.rdcycle();
                h.finish();
                t1 - t0
            }],
            None,
        );
        assert!(vals[0] >= 100, "work(100) took only {} cycles", vals[0]);
    }

    #[test]
    fn budget_halts_threads() {
        let mut s = sys(1, false);
        let (_, ops) = s.run_threads(
            vec![|h: CoreHandle| {
                let mut n = 0u64;
                while !h.halted() {
                    h.store(0x100, n);
                    n += 1;
                }
                h.finish();
                n
            }],
            Some(10_000),
        );
        assert!(ops[0] > 0);
    }
}
