//! Compile-out-able host wall-time phase profiling (the `profile` cargo
//! feature).
//!
//! The wheel engines' busy-cycle loop has a fixed three-phase structure
//! (serial L2+DRAM → core slots → frontends); [`Timer`] laps accumulate
//! each phase's wall nanoseconds into
//! [`PhaseProfile`](crate::system::PhaseProfile) fields. With the feature
//! off (the default) [`Timer`] is a unit type, every method is an inlined
//! no-op, and [`PROFILE_COMPILED`] is `false` — the instrumented loops are
//! byte-for-byte the uninstrumented ones after optimization, so profiling
//! support adds zero overhead to normal builds.
//!
//! Profiling observes only host time: it cannot affect simulated state, so
//! it needs no engine-invariance argument.

/// `true` when the `profile` feature is compiled in.
pub const PROFILE_COMPILED: bool = cfg!(feature = "profile");

/// A lap timer accumulating wall nanoseconds into `u64` fields.
#[cfg(feature = "profile")]
#[derive(Clone, Copy)]
pub struct Timer(std::time::Instant);

#[cfg(feature = "profile")]
impl Timer {
    /// Starts (or restarts) the clock.
    #[inline]
    pub fn start() -> Self {
        Timer(std::time::Instant::now())
    }

    /// Adds the time since the last lap (or start) to `acc` and restarts
    /// the clock.
    #[inline]
    pub fn lap(&mut self, acc: &mut u64) {
        let now = std::time::Instant::now();
        *acc += now.duration_since(self.0).as_nanos() as u64;
        self.0 = now;
    }

    /// Nanoseconds since the last lap (or start), without accumulating.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        self.0.elapsed().as_nanos() as u64
    }
}

/// A lap timer accumulating wall nanoseconds into `u64` fields.
///
/// The `profile` feature is compiled out: every operation is a no-op.
#[cfg(not(feature = "profile"))]
#[derive(Clone, Copy)]
pub struct Timer;

#[cfg(not(feature = "profile"))]
impl Timer {
    /// Starts (or restarts) the clock. No-op in this build.
    #[inline(always)]
    pub fn start() -> Self {
        Timer
    }

    /// Adds the time since the last lap to `acc`. No-op in this build.
    #[inline(always)]
    pub fn lap(&mut self, _acc: &mut u64) {}

    /// Nanoseconds since the last lap. Always zero in this build.
    #[inline(always)]
    pub fn elapsed_ns(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_accumulates_or_noops() {
        let mut t = Timer::start();
        let mut acc = 0u64;
        t.lap(&mut acc);
        t.lap(&mut acc);
        if !PROFILE_COMPILED {
            assert_eq!(acc, 0, "compiled-out timer must not write");
            assert_eq!(t.elapsed_ns(), 0);
        }
        // With the feature on, laps are monotone non-negative by type;
        // nothing further is asserted to keep the test time-independent.
    }
}
