//! The load-store unit (§3.2) with the paper's flush-unit integration.
//!
//! * Loads live in the LDQ and fire out of order as soon as their
//!   dependencies allow; they forward from older STQ stores to the same word.
//! * Stores, AMOs, `CBO.X` (§5.1) and fences live in the STQ and fire in
//!   program order from the head.
//! * A fence blocks younger loads, completes only after all older memory
//!   operations are done **and** the L1 flush counter is zero (§5.3).
//! * A nacked request is retried after a short backoff (§3.3).

use crate::op::{Op, OpToken};
use crate::trace::{TraceLog, TraceRecord};
use skipit_dcache::{DataCache, DcReq, DcResp, ReqId, ReqOutcome};
use skipit_tilelink::LineAddr;
use skipit_trace::{TraceEvent, TraceSink};
use std::collections::VecDeque;

/// LSU sizing and behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LsuConfig {
    /// LDQ capacity (SonicBOOM: 32, Fig. 2).
    pub ldq_depth: usize,
    /// STQ capacity (SonicBOOM: 32, Fig. 2).
    pub stq_depth: usize,
    /// Cycles to wait before retrying a nacked request.
    pub retry_backoff: u64,
    /// Loads fired per cycle (the LSU fires two requests per cycle, §3.2).
    pub fire_width: usize,
}

impl Default for LsuConfig {
    fn default() -> Self {
        LsuConfig {
            ldq_depth: 32,
            stq_depth: 32,
            retry_backoff: 2,
            fire_width: 2,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    token: OpToken,
    seq: u64,
    op: Op,
    req_id: ReqId,
    fired: bool,
    done: bool,
    value: u64,
    retry_at: u64,
    issued_at: u64,
}

impl Entry {
    fn line(&self) -> Option<LineAddr> {
        self.op.addr().map(LineAddr::containing)
    }
}

/// One core's load-store unit.
#[derive(Debug)]
pub struct Lsu {
    cfg: LsuConfig,
    stq: VecDeque<Entry>,
    ldq: VecDeque<Entry>,
    seq: u64,
    next_req: ReqId,
    finished: VecDeque<(OpToken, u64)>,
    core: usize,
    trace: Option<TraceLog>,
    /// Event sink for fence-stall begin/end events (see [`skipit_trace`]).
    events: Option<TraceSink>,
}

impl Lsu {
    /// Creates an empty LSU for core `core`.
    pub fn new(core: usize, cfg: LsuConfig) -> Self {
        Lsu {
            cfg,
            stq: VecDeque::with_capacity(cfg.stq_depth),
            ldq: VecDeque::with_capacity(cfg.ldq_depth),
            seq: 0,
            next_req: 0,
            finished: VecDeque::with_capacity(cfg.stq_depth + cfg.ldq_depth),
            core,
            trace: None,
            events: None,
        }
    }

    /// Installs an event sink; fences emit [`TraceEvent::FenceStallBegin`] at
    /// enqueue and [`TraceEvent::FenceStallEnd`] when they commit.
    pub fn set_event_trace(&mut self, sink: TraceSink) {
        self.events = Some(sink);
    }

    /// The installed event sink, if any.
    pub fn event_sink(&self) -> Option<&TraceSink> {
        self.events.as_ref()
    }

    /// Mutable access to the installed event sink (for clearing).
    pub fn event_sink_mut(&mut self) -> Option<&mut TraceSink> {
        self.events.as_mut()
    }

    /// Removes and returns the event sink.
    pub fn take_event_trace(&mut self) -> Option<TraceSink> {
        self.events.take()
    }

    /// Starts recording per-op latencies (bounded to `capacity` records).
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.trace = Some(TraceLog::new(capacity));
    }

    /// Stops op-latency recording and discards the log.
    pub fn disable_tracing(&mut self) {
        self.trace = None;
    }

    /// The trace log, if tracing is enabled.
    pub fn trace(&self) -> Option<&TraceLog> {
        self.trace.as_ref()
    }

    /// Clears any recorded trace.
    pub fn clear_trace(&mut self) {
        if let Some(t) = &mut self.trace {
            t.clear();
        }
    }

    /// Whether `op` can be enqueued this cycle.
    pub fn has_room(&self, op: Op) -> bool {
        if op.is_stq() {
            self.stq.len() < self.cfg.stq_depth
        } else {
            self.ldq.len() < self.cfg.ldq_depth
        }
    }

    /// Enqueues `op` under `token`. The result (when the op completes) is
    /// retrievable via [`Lsu::take_finished`].
    ///
    /// # Panics
    ///
    /// Panics on overflow (check [`Lsu::has_room`]) or on [`Op::Nop`], which
    /// is frontend-level and never enters the LSU.
    pub fn enqueue(&mut self, token: OpToken, op: Op, now: u64) {
        assert!(
            !matches!(op, Op::Nop { .. }),
            "Nop is handled by the frontend, not the LSU"
        );
        assert!(self.has_room(op), "LSU queue overflow for {op:?}");
        if op == Op::Fence {
            skipit_trace::trace!(
                self.events,
                now,
                TraceEvent::FenceStallBegin {
                    core: self.core,
                    token,
                }
            );
        }
        self.seq += 1;
        self.next_req += 1;
        let entry = Entry {
            token,
            seq: self.seq,
            op,
            req_id: self.next_req,
            fired: false,
            done: false,
            value: 0,
            retry_at: 0,
            issued_at: now,
        };
        if op.is_stq() {
            self.stq.push_back(entry);
        } else {
            self.ldq.push_back(entry);
        }
    }

    /// Whether both queues are empty.
    pub fn is_empty(&self) -> bool {
        self.stq.is_empty() && self.ldq.is_empty()
    }

    /// Takes the result of a completed op, if available.
    pub fn take_finished(&mut self, token: OpToken) -> Option<u64> {
        let idx = self.finished.iter().position(|&(t, _)| t == token)?;
        self.finished.remove(idx).map(|(_, v)| v)
    }

    /// Whether `token`'s result is ready for [`Lsu::take_finished`].
    pub fn has_finished(&self, token: OpToken) -> bool {
        self.finished.iter().any(|&(t, _)| t == token)
    }

    /// Discards all buffered results (program mode does not consume them).
    pub fn drain_finished(&mut self) {
        self.finished.clear();
    }

    /// Advances the LSU one cycle against its L1 cache.
    pub fn step(&mut self, now: u64, l1: &mut DataCache) {
        self.collect_responses(now, l1);
        self.retire(now);
        self.commit_fence(now, l1);
        self.fire_stq_head(now, l1);
        self.fire_loads(now, l1);
        self.retire(now);
    }

    fn collect_responses(&mut self, now: u64, l1: &mut DataCache) {
        while let Some(resp) = l1.pop_response(now) {
            let id = resp.id();
            let entry = self
                .stq
                .iter_mut()
                .chain(self.ldq.iter_mut())
                .find(|e| e.req_id == id);
            let Some(e) = entry else {
                panic!("response {resp:?} for unknown request {id}");
            };
            match resp {
                DcResp::LoadDone { value, .. } | DcResp::AmoDone { old: value, .. } => {
                    e.value = value;
                    e.done = true;
                }
                DcResp::StoreDone { .. } | DcResp::WritebackAccepted { .. } => {
                    e.done = true;
                }
            }
        }
    }

    /// Pops completed entries: the STQ retires in order from the head; loads
    /// retire as they complete.
    fn retire(&mut self, now: u64) {
        while self.stq.front().is_some_and(|e| e.done) {
            let e = self.stq.pop_front().expect("nonempty");
            self.record(&e, now);
            self.finished.push_back((e.token, e.value));
        }
        let mut i = 0;
        while i < self.ldq.len() {
            if self.ldq[i].done {
                let e = self.ldq.remove(i).expect("index valid");
                self.record(&e, now);
                self.finished.push_back((e.token, e.value));
            } else {
                i += 1;
            }
        }
    }

    fn record(&mut self, e: &Entry, now: u64) {
        if let Some(t) = &mut self.trace {
            t.push(TraceRecord {
                core: self.core,
                token: e.token,
                op: e.op,
                issued_at: e.issued_at,
                completed_at: now,
            });
        }
    }

    /// Fences commit only at the STQ head, with no older loads outstanding
    /// and the flush counter at zero (§5.3).
    fn commit_fence(&mut self, now: u64, l1: &DataCache) {
        let Some(head) = self.stq.front() else { return };
        if head.op != Op::Fence || head.done {
            return;
        }
        let fence_seq = head.seq;
        let token = head.token;
        let older_loads = self.ldq.iter().any(|e| e.seq < fence_seq);
        if !older_loads && !l1.is_flushing() {
            self.stq.front_mut().expect("nonempty").done = true;
            skipit_trace::trace!(
                self.events,
                now,
                TraceEvent::FenceStallEnd {
                    core: self.core,
                    token,
                }
            );
        }
    }

    fn fire_stq_head(&mut self, now: u64, l1: &mut DataCache) {
        let Some(head) = self.stq.front_mut() else {
            return;
        };
        if head.fired || head.done || head.op == Op::Fence || now < head.retry_at {
            return;
        }
        let kind = head.op.to_dcache().expect("STQ op lowers to a request");
        // Hold the head while the cache would refuse it instead of firing
        // into a nack: the request stays pending at zero cost and fires on
        // the exact cycle the blocking condition clears.
        if !l1.would_accept(kind) {
            return;
        }
        match l1.try_request(
            now,
            DcReq {
                id: head.req_id,
                kind,
            },
        ) {
            ReqOutcome::Accepted => head.fired = true,
            ReqOutcome::Nack => head.retry_at = now + self.cfg.retry_backoff,
        }
    }

    fn fire_loads(&mut self, now: u64, l1: &mut DataCache) {
        let mut fired = 0;
        for i in 0..self.ldq.len() {
            if fired >= self.cfg.fire_width {
                break;
            }
            let e = self.ldq[i];
            if e.fired || e.done || now < e.retry_at {
                continue;
            }
            match self.load_dependency(&e) {
                LoadDep::Blocked => continue,
                LoadDep::Forward(value) => {
                    let le = &mut self.ldq[i];
                    le.value = value;
                    le.done = true;
                    fired += 1;
                }
                LoadDep::Clear => {
                    let kind = e.op.to_dcache().expect("load lowers");
                    // Hold the load while the cache would refuse it (see
                    // fire_stq_head); a held load consumes no fire slot.
                    if !l1.would_accept(kind) {
                        continue;
                    }
                    match l1.try_request(now, DcReq { id: e.req_id, kind }) {
                        ReqOutcome::Accepted => self.ldq[i].fired = true,
                        ReqOutcome::Nack => self.ldq[i].retry_at = now + self.cfg.retry_backoff,
                    }
                    fired += 1;
                }
            }
        }
    }

    /// Conservative lower bound on the next cycle at which this LSU can make
    /// progress on its own (the event-driven scheduler's contract). Waits
    /// that only an external completion can end — an in-flight L1 request, a
    /// blocked load dependency, a fence held by older loads or a nonzero
    /// flush counter — report nothing: the L1's pending responses and flush
    /// unit are evented separately, and the blocking STQ entries' own
    /// progress is evented through the head (stores retire strictly in
    /// order, so every unblocking transition happens at an evented tick).
    pub fn next_event(&self, now: u64, l1: &DataCache) -> Option<u64> {
        let mut next: Option<u64> = None;
        let merge = |next: &mut Option<u64>, t: u64| {
            *next = Some(next.map_or(t, |n| n.min(t)));
        };
        if self.ldq.iter().any(|e| e.done) {
            return Some(now); // retire work pending
        }
        if let Some(head) = self.stq.front() {
            if head.done {
                return Some(now); // retire work pending
            }
            if head.op == Op::Fence {
                // Mirror `commit_fence` exactly: a fence that could commit
                // this cycle is an event; a blocked one is woken by the
                // evented load completions / flush-counter drain.
                if !self.ldq.iter().any(|e| e.seq < head.seq) && !l1.is_flushing() {
                    return Some(now);
                }
            } else if !head.fired {
                if now < head.retry_at {
                    merge(&mut next, head.retry_at);
                } else if l1.would_accept(head.op.to_dcache().expect("STQ op lowers")) {
                    return Some(now); // fire_stq_head fires this cycle
                }
                // Otherwise the head is held; the L1 transition that flips
                // `would_accept` is evented by the cache itself.
            }
        }
        for e in self.ldq.iter().filter(|e| !e.fired && !e.done) {
            if now < e.retry_at {
                merge(&mut next, e.retry_at);
                continue;
            }
            match self.load_dependency(e) {
                LoadDep::Blocked => {}
                LoadDep::Forward(_) => return Some(now),
                LoadDep::Clear => {
                    if l1.would_accept(e.op.to_dcache().expect("load lowers")) {
                        return Some(now);
                    }
                }
            }
        }
        next
    }

    /// Dependency check for a load against older STQ entries (§3.2): fences
    /// block all younger loads; same-line stores/AMOs/writebacks block unless
    /// an exact-word store can forward its data.
    fn load_dependency(&self, load: &Entry) -> LoadDep {
        let load_addr = load.op.addr().expect("loads have addresses");
        let load_line = LineAddr::containing(load_addr);
        let mut forward: Option<u64> = None;
        for s in self.stq.iter().filter(|s| s.seq < load.seq && !s.done) {
            match s.op {
                Op::Fence => return LoadDep::Blocked,
                Op::Store { addr, value } => {
                    if addr == load_addr {
                        forward = Some(value);
                    } else if LineAddr::containing(addr) == load_line {
                        return LoadDep::Blocked;
                    }
                }
                _ => {
                    if s.line() == Some(load_line) {
                        return LoadDep::Blocked;
                    }
                }
            }
        }
        match forward {
            Some(v) => LoadDep::Forward(v),
            None => LoadDep::Clear,
        }
    }
}

enum LoadDep {
    Blocked,
    Forward(u64),
    Clear,
}

// --- snapshot codec (DESIGN.md §11) ---

use skipit_snap::{Codec, SnapError, SnapReader, SnapWriter};

impl Codec for Entry {
    fn encode(&self, w: &mut SnapWriter) {
        self.token.encode(w);
        self.seq.encode(w);
        self.op.encode(w);
        self.req_id.encode(w);
        self.fired.encode(w);
        self.done.encode(w);
        self.value.encode(w);
        self.retry_at.encode(w);
        self.issued_at.encode(w);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Entry {
            token: OpToken::decode(r)?,
            seq: u64::decode(r)?,
            op: Op::decode(r)?,
            req_id: ReqId::decode(r)?,
            fired: bool::decode(r)?,
            done: bool::decode(r)?,
            value: u64::decode(r)?,
            retry_at: u64::decode(r)?,
            issued_at: u64::decode(r)?,
        })
    }
}

impl Lsu {
    /// Encodes the LSU's simulated state: both queues, the sequence and
    /// request-id allocators, and buffered results. Config, core index and
    /// the trace facilities are host-side and excluded.
    pub fn encode_state(&self, w: &mut SnapWriter) {
        w.tag(0x55);
        self.stq.encode(w);
        self.ldq.encode(w);
        self.seq.encode(w);
        self.next_req.encode(w);
        self.finished.encode(w);
    }

    /// Overwrites the LSU's simulated state from `r` (the inverse of
    /// [`Lsu::encode_state`]).
    pub fn decode_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.expect_tag(0x55, "lsu section")?;
        let stq = VecDeque::<Entry>::decode(r)?;
        let ldq = VecDeque::<Entry>::decode(r)?;
        if stq.len() > self.cfg.stq_depth || ldq.len() > self.cfg.ldq_depth {
            return Err(SnapError::Corrupt("lsu queue exceeds depth"));
        }
        self.stq = stq;
        self.ldq = ldq;
        self.seq = u64::decode(r)?;
        self.next_req = ReqId::decode(r)?;
        self.finished = VecDeque::decode(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipit_dcache::L1Config;

    fn lsu() -> Lsu {
        Lsu::new(0, LsuConfig::default())
    }

    /// Test bench: the LSU against a real L1 backed by a trivial always-
    /// grant L2, with a persistent clock.
    struct Bench {
        q: Lsu,
        l1: DataCache,
        a: skipit_tilelink::Link<skipit_tilelink::ChannelA>,
        b: skipit_tilelink::Link<skipit_tilelink::ChannelB>,
        c: skipit_tilelink::Link<skipit_tilelink::ChannelC>,
        d: skipit_tilelink::Link<skipit_tilelink::ChannelD>,
        e: skipit_tilelink::Link<skipit_tilelink::ChannelE>,
        now: u64,
    }

    impl Bench {
        fn new() -> Self {
            use skipit_tilelink::Link;
            Bench {
                q: lsu(),
                l1: DataCache::new(0, L1Config::default()),
                a: Link::new(1, 8),
                b: Link::new(1, 8),
                c: Link::new(1, 8),
                d: Link::new(1, 8),
                e: Link::new(1, 8),
                now: 0,
            }
        }

        fn run(&mut self, cycles: u64) {
            use skipit_tilelink::*;
            for _ in 0..cycles {
                let now = self.now;
                {
                    let mut ports = skipit_dcache::L1Ports {
                        a: &mut self.a,
                        b: &mut self.b,
                        c: &mut self.c,
                        d: &mut self.d,
                        e: &mut self.e,
                    };
                    self.l1.step(now, &mut ports);
                }
                while let Some(ChannelA::AcquireBlock { addr, grow, .. }) = self.a.pop(now) {
                    self.d.push(
                        now,
                        ChannelD::Grant {
                            target: 0,
                            addr,
                            is_trunk: grow.wants_write(),
                            data: LineData::zeroed(),
                            flavor: GrantFlavor::Clean,
                        },
                    );
                }
                while let Some(m) = self.c.pop(now) {
                    match m {
                        ChannelC::Release { addr, .. } => self.d.push(
                            now,
                            ChannelD::ReleaseAck {
                                target: 0,
                                addr,
                                root: false,
                            },
                        ),
                        ChannelC::RootRelease { addr, .. } => self.d.push(
                            now,
                            ChannelD::ReleaseAck {
                                target: 0,
                                addr,
                                root: true,
                            },
                        ),
                        ChannelC::ProbeAck { .. } => {}
                    }
                }
                while self.e.pop(now).is_some() {}
                self.q.step(now, &mut self.l1);
                self.now += 1;
            }
        }
    }

    #[test]
    fn store_then_load_same_word_forwards() {
        let mut b = Bench::new();
        b.q.enqueue(
            1,
            Op::Store {
                addr: 0x100,
                value: 7,
            },
            b.now,
        );
        b.q.enqueue(2, Op::Load { addr: 0x100 }, b.now);
        b.run(50);
        assert_eq!(b.q.take_finished(2), Some(7));
        assert!(b.q.is_empty());
    }

    #[test]
    fn load_blocked_by_same_line_writeback_until_buffered() {
        let mut b = Bench::new();
        b.q.enqueue(
            1,
            Op::Store {
                addr: 0x200,
                value: 1,
            },
            b.now,
        );
        b.run(50);
        b.q.enqueue(2, Op::Flush { addr: 0x200 }, b.now);
        b.q.enqueue(3, Op::Load { addr: 0x208 }, b.now);
        b.run(200);
        assert_eq!(b.q.take_finished(3), Some(0));
        assert!(b.q.is_empty());
    }

    #[test]
    fn fence_waits_for_flush_counter() {
        let mut b = Bench::new();
        b.q.enqueue(
            1,
            Op::Store {
                addr: 0x300,
                value: 5,
            },
            b.now,
        );
        b.q.enqueue(2, Op::Clean { addr: 0x300 }, b.now);
        b.q.enqueue(3, Op::Fence, b.now);
        // The clean must commit at buffering time (while the FSHR is still
        // working — l1.is_flushing()), and the fence only after the flush
        // counter drains: clean_done < flushing_end <= fence_done.
        let mut clean_done = None;
        let mut fence_done = None;
        let mut flushing_end = None;
        let mut was_flushing = false;
        for t in 0..400 {
            b.run(1);
            if b.l1.is_flushing() {
                was_flushing = true;
            } else if was_flushing && flushing_end.is_none() {
                flushing_end = Some(t);
            }
            if clean_done.is_none() && b.q.take_finished(2).is_some() {
                clean_done = Some(t);
            }
            if fence_done.is_none() && b.q.take_finished(3).is_some() {
                fence_done = Some(t);
            }
        }
        let clean_done = clean_done.expect("clean completed");
        let fence_done = fence_done.expect("fence completed");
        let flushing_end = flushing_end.expect("flush counter drained");
        assert!(
            clean_done < flushing_end,
            "clean must commit at buffering, before the writeback finishes \
             (clean {clean_done}, drain {flushing_end})"
        );
        assert!(
            fence_done >= flushing_end,
            "fence must wait for the flush counter (fence {fence_done}, \
             drain {flushing_end})"
        );
    }

    #[test]
    fn loads_after_fence_wait() {
        let mut b = Bench::new();
        b.q.enqueue(
            1,
            Op::Store {
                addr: 0x400,
                value: 9,
            },
            b.now,
        );
        b.q.enqueue(2, Op::Fence, b.now);
        b.q.enqueue(3, Op::Load { addr: 0x500 }, b.now);
        b.run(3);
        assert!(
            b.q.take_finished(3).is_none(),
            "load must not complete while the fence is pending"
        );
        b.run(300);
        assert!(b.q.take_finished(2).is_some());
        assert_eq!(b.q.take_finished(3), Some(0));
    }

    #[test]
    fn independent_loads_fire_out_of_order() {
        let mut b = Bench::new();
        // Warm one line so the second load (to the warm line) completes
        // before the first (cold) one.
        b.q.enqueue(
            1,
            Op::Store {
                addr: 0x600,
                value: 3,
            },
            b.now,
        );
        b.run(100);
        b.q.drain_finished();
        b.q.enqueue(2, Op::Load { addr: 0x700 }, b.now); // cold
        b.q.enqueue(3, Op::Load { addr: 0x600 }, b.now); // warm
        b.run(6);
        assert!(b.q.take_finished(2).is_none());
        assert_eq!(b.q.take_finished(3), Some(3), "warm load completes first");
        b.run(200);
        assert_eq!(b.q.take_finished(2), Some(0));
    }

    #[test]
    #[should_panic(expected = "Nop is handled by the frontend")]
    fn nop_rejected() {
        lsu().enqueue(1, Op::Nop { cycles: 1 }, 0);
    }

    #[test]
    fn has_room_tracks_depths() {
        let mut q = Lsu::new(
            0,
            LsuConfig {
                stq_depth: 1,
                ldq_depth: 1,
                ..LsuConfig::default()
            },
        );
        assert!(q.has_room(Op::Fence));
        q.enqueue(1, Op::Fence, 0);
        assert!(!q.has_room(Op::Store { addr: 0, value: 0 }));
        assert!(q.has_room(Op::Load { addr: 0 }));
        q.enqueue(2, Op::Load { addr: 0x40 }, 0);
        assert!(!q.has_room(Op::Load { addr: 0 }));
    }
}
