//! Per-operation latency tracing.
//!
//! When enabled (see [`System::enable_tracing`]), the LSU records one
//! [`TraceRecord`] per completed operation: what it was, when the frontend
//! issued it, and when it completed. This is how the latency distributions
//! behind the paper's medians/σ (§7.1: "we repeat all microbenchmarks 50
//! times and report the median") are extracted from a run, and it is the
//! first tool to reach for when a workload's cycle count looks wrong.
//!
//! Tracing is bounded: once `capacity` records exist, further completions
//! are counted but not stored (check [`TraceLog::dropped`]).
//!
//! [`System::enable_tracing`]: crate::System::enable_tracing

use crate::op::{Op, OpToken};

/// One completed operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Core that executed the op.
    pub core: usize,
    /// Frontend token.
    pub token: OpToken,
    /// The operation.
    pub op: Op,
    /// Cycle the op entered the LSU.
    pub issued_at: u64,
    /// Cycle the op completed (result available / committed).
    pub completed_at: u64,
}

impl TraceRecord {
    /// Completion latency in cycles.
    pub fn latency(&self) -> u64 {
        self.completed_at - self.issued_at
    }
}

/// A bounded log of completed operations.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    records: Vec<TraceRecord>,
    capacity: usize,
    /// Completions that arrived after the log filled.
    pub dropped: u64,
}

impl TraceLog {
    /// Creates a log bounded to `capacity` records.
    pub fn new(capacity: usize) -> Self {
        TraceLog {
            records: Vec::with_capacity(capacity.min(1 << 20)),
            capacity,
            dropped: 0,
        }
    }

    pub(crate) fn push(&mut self, rec: TraceRecord) {
        if self.records.len() < self.capacity {
            self.records.push(rec);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded operations, in completion order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Latencies of all records matching `pred`, sorted ascending.
    pub fn latencies_where(&self, pred: impl Fn(&TraceRecord) -> bool) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .records
            .iter()
            .filter(|r| pred(r))
            .map(TraceRecord::latency)
            .collect();
        v.sort_unstable();
        v
    }

    /// Median latency of records matching `pred` (`None` when no record
    /// matches).
    pub fn median_where(&self, pred: impl Fn(&TraceRecord) -> bool) -> Option<u64> {
        let v = self.latencies_where(pred);
        (!v.is_empty()).then(|| v[v.len() / 2])
    }

    /// Clears the log (keeping the capacity).
    pub fn clear(&mut self) {
        self.records.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64, lat: u64) -> TraceRecord {
        TraceRecord {
            core: 0,
            token: t,
            op: Op::Fence,
            issued_at: 100,
            completed_at: 100 + lat,
        }
    }

    #[test]
    fn bounded_capacity_counts_drops() {
        let mut log = TraceLog::new(2);
        log.push(rec(1, 5));
        log.push(rec(2, 7));
        log.push(rec(3, 9));
        assert_eq!(log.records().len(), 2);
        assert_eq!(log.dropped, 1);
        log.clear();
        assert!(log.records().is_empty());
        assert_eq!(log.dropped, 0);
    }

    #[test]
    fn median_and_filters() {
        let mut log = TraceLog::new(16);
        for (t, l) in [(1, 10), (2, 30), (3, 20)] {
            log.push(rec(t, l));
        }
        assert_eq!(log.median_where(|_| true), Some(20));
        assert_eq!(log.median_where(|r| r.token == 2), Some(30));
        assert_eq!(log.median_where(|r| r.token == 99), None);
        assert_eq!(log.latencies_where(|_| true), vec![10, 20, 30]);
    }
}
