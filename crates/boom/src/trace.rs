//! Per-operation latency tracing.
//!
//! When enabled (see [`System::set_trace`]), the LSU records one
//! [`TraceRecord`] per completed operation: what it was, when the frontend
//! issued it, and when it completed. This is how the latency distributions
//! behind the paper's medians/σ (§7.1: "we repeat all microbenchmarks 50
//! times and report the median") are extracted from a run, and it is the
//! first tool to reach for when a workload's cycle count looks wrong.
//!
//! Tracing is bounded: once `capacity` records exist, further completions
//! are counted but not stored (check [`TraceLog::dropped`]).
//!
//! [`System::set_trace`]: crate::System::set_trace

use crate::op::{Op, OpToken};
use std::collections::BTreeMap;

/// A log-bucketed latency histogram: bucket `i` counts latencies whose
/// bit-length is `i` (bucket 0 holds latency 0, bucket `i` holds
/// `[2^(i-1), 2^i)` for `i >= 1`). Constant-size, O(1) insertion, and
/// precise enough for the p50/p90/p99 summaries the paper-style reports
/// need — replacing the raw latency vector for percentile queries so they
/// stay cheap even on multi-million-op runs.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(latency: u64) -> usize {
        (u64::BITS - latency.leading_zeros()) as usize
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: u64) {
        self.buckets[Self::bucket_of(latency)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(latency);
        self.min = self.min.min(latency);
        self.max = self.max.max(latency);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded latencies (for exact means; saturates at
    /// `u64::MAX` rather than overflowing on extreme samples).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded latency (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded latency (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean latency (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Upper bound of the bucket holding the `p`-th percentile sample
    /// (`0.0 < p <= 100.0`), clamped to the observed maximum; `None` when
    /// empty. Within a bucket the true value is within 2x of the bound.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Bucket 64 holds samples >= 2^63; its bound saturates.
                let bound = 1u64.checked_shl(i as u32).map_or(u64::MAX, |b| b - 1);
                return Some(bound.min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }

    /// Median (50th percentile) bucket bound.
    pub fn p50(&self) -> Option<u64> {
        self.percentile(50.0)
    }

    /// 90th percentile bucket bound.
    pub fn p90(&self) -> Option<u64> {
        self.percentile(90.0)
    }

    /// 99th percentile bucket bound.
    pub fn p99(&self) -> Option<u64> {
        self.percentile(99.0)
    }

    /// Folds `other` into `self` (for cross-core aggregation).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// One completed operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Core that executed the op.
    pub core: usize,
    /// Frontend token.
    pub token: OpToken,
    /// The operation.
    pub op: Op,
    /// Cycle the op entered the LSU.
    pub issued_at: u64,
    /// Cycle the op completed (result available / committed).
    pub completed_at: u64,
}

impl TraceRecord {
    /// Completion latency in cycles.
    pub fn latency(&self) -> u64 {
        self.completed_at - self.issued_at
    }
}

/// A bounded log of completed operations, plus unbounded-cost-free latency
/// histograms per op kind (histograms keep counting even after the record
/// buffer fills, so percentiles cover *every* completion).
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    records: Vec<TraceRecord>,
    capacity: usize,
    /// Completions that arrived after the log filled.
    pub dropped: u64,
    histograms: BTreeMap<&'static str, LatencyHistogram>,
}

impl TraceLog {
    /// Creates a log bounded to `capacity` records.
    pub fn new(capacity: usize) -> Self {
        TraceLog {
            records: Vec::with_capacity(capacity.min(1 << 20)),
            capacity,
            dropped: 0,
            histograms: BTreeMap::new(),
        }
    }

    pub(crate) fn push(&mut self, rec: TraceRecord) {
        self.histograms
            .entry(rec.op.kind_name())
            .or_default()
            .record(rec.latency());
        if self.records.len() < self.capacity {
            self.records.push(rec);
        } else {
            self.dropped += 1;
        }
    }

    /// Latency histogram for one op kind (see [`Op::kind_name`]), if any
    /// op of that kind has completed.
    pub fn histogram(&self, kind: &str) -> Option<&LatencyHistogram> {
        self.histograms.get(kind)
    }

    /// All per-op-kind latency histograms, keyed by [`Op::kind_name`].
    pub fn histograms(&self) -> &BTreeMap<&'static str, LatencyHistogram> {
        &self.histograms
    }

    /// The recorded operations, in completion order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Latencies of all records matching `pred`, sorted ascending.
    pub fn latencies_where(&self, pred: impl Fn(&TraceRecord) -> bool) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .records
            .iter()
            .filter(|r| pred(r))
            .map(TraceRecord::latency)
            .collect();
        v.sort_unstable();
        v
    }

    /// Median latency of records matching `pred` (`None` when no record
    /// matches).
    pub fn median_where(&self, pred: impl Fn(&TraceRecord) -> bool) -> Option<u64> {
        let v = self.latencies_where(pred);
        (!v.is_empty()).then(|| v[v.len() / 2])
    }

    /// Clears the log and histograms (keeping the capacity).
    pub fn clear(&mut self) {
        self.records.clear();
        self.dropped = 0;
        self.histograms.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64, lat: u64) -> TraceRecord {
        TraceRecord {
            core: 0,
            token: t,
            op: Op::Fence,
            issued_at: 100,
            completed_at: 100 + lat,
        }
    }

    #[test]
    fn bounded_capacity_counts_drops() {
        let mut log = TraceLog::new(2);
        log.push(rec(1, 5));
        log.push(rec(2, 7));
        log.push(rec(3, 9));
        assert_eq!(log.records().len(), 2);
        assert_eq!(log.dropped, 1);
        log.clear();
        assert!(log.records().is_empty());
        assert_eq!(log.dropped, 0);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.p50(), None);
        for l in [0u64, 1, 2, 3, 100, 100, 100, 100, 100, 1000] {
            h.record(l);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        assert_eq!(h.sum(), 1506);
        // p50 lands in the 100s bucket [64, 128) -> bound 127.
        assert_eq!(h.p50(), Some(127));
        // p99 is the lone 1000 sample, clamped to the observed max.
        assert_eq!(h.p99(), Some(1000));
        let mut other = LatencyHistogram::new();
        other.record(5);
        other.merge(&h);
        assert_eq!(other.count(), 11);
        assert_eq!(other.min(), Some(0));
        assert_eq!(other.max(), Some(1000));
    }

    #[test]
    fn empty_histogram_reports_none_everywhere() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        for p in [0.001, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), None);
        }
        // Merging an empty histogram into an empty histogram stays empty
        // (the `u64::MAX` min sentinel must not leak into observables).
        let mut a = LatencyHistogram::new();
        a.merge(&h);
        assert_eq!(a.min(), None);
        assert_eq!(a.p50(), None);
    }

    #[test]
    fn top_bucket_saturation() {
        // u64::MAX lands in the last bucket (index 64) without indexing
        // past the array, and every percentile clamps to the observed max
        // rather than the bucket's unrepresentable upper bound.
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(1u64 << 63);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), Some(1u64 << 63));
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.p50(), Some(u64::MAX));
        assert_eq!(h.p99(), Some(u64::MAX));
        // A merge on saturated top buckets keeps the counts.
        let mut other = LatencyHistogram::new();
        other.record(0);
        other.merge(&h);
        assert_eq!(other.count(), 4);
        assert_eq!(other.min(), Some(0));
        assert_eq!(other.max(), Some(u64::MAX));
    }

    #[test]
    fn histograms_survive_record_drops() {
        let mut log = TraceLog::new(1);
        log.push(rec(1, 5));
        log.push(rec(2, 7));
        assert_eq!(log.records().len(), 1);
        assert_eq!(log.dropped, 1);
        let h = log.histogram("fence").expect("fence histogram");
        assert_eq!(h.count(), 2, "drops must still be counted in histograms");
        log.clear();
        assert!(log.histogram("fence").is_none());
    }

    #[test]
    fn median_and_filters() {
        let mut log = TraceLog::new(16);
        for (t, l) in [(1, 10), (2, 30), (3, 20)] {
            log.push(rec(t, l));
        }
        assert_eq!(log.median_where(|_| true), Some(20));
        assert_eq!(log.median_where(|r| r.token == 2), Some(30));
        assert_eq!(log.median_where(|r| r.token == 99), None);
        assert_eq!(log.latencies_where(|_| true), vec![10, 20, 30]);
    }
}
