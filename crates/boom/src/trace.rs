//! Per-operation latency tracing.
//!
//! When enabled (see [`System::set_trace`]), the LSU records one
//! [`TraceRecord`] per completed operation: what it was, when the frontend
//! issued it, and when it completed. This is how the latency distributions
//! behind the paper's medians/σ (§7.1: "we repeat all microbenchmarks 50
//! times and report the median") are extracted from a run, and it is the
//! first tool to reach for when a workload's cycle count looks wrong.
//!
//! Tracing is bounded: once `capacity` records exist, further completions
//! are counted but not stored (check [`TraceLog::dropped`]).
//!
//! [`System::set_trace`]: crate::System::set_trace

use crate::op::{Op, OpToken};
use std::collections::BTreeMap;

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets, bounding the relative quantization
/// error of any percentile to `2^-SUB_BITS` (3.125%).
const SUB_BITS: u32 = 5;
const SUBS: usize = 1 << SUB_BITS; // sub-buckets per octave
/// Values below `SUBS` get one exact bucket each; each wider bit-length
/// (SUB_BITS+1 ..= 64) contributes `SUBS` sub-buckets.
const BUCKETS: usize = SUBS + (64 - SUB_BITS as usize) * SUBS;

/// A log-linear (HDR-style) latency histogram: values below 2^5 have one
/// exact bucket each; every wider power-of-two octave is split into 32
/// linear sub-buckets, so any recorded value is representable to within
/// 3.125%. Constant-size, O(1) insertion, and — with the within-bucket
/// rank interpolation in [`LatencyHistogram::percentile`] — accurate
/// enough for the p999 SLO summaries the service reports need, replacing
/// the raw latency vector so percentile queries stay cheap even on
/// multi-million-op runs.
#[derive(Clone)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    // 1920 raw bucket counts are noise in a debug dump; print the summary
    // the buckets exist to answer.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("max", &self.max())
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .field("p999", &self.p999())
            .finish()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(latency: u64) -> usize {
        if latency < SUBS as u64 {
            return latency as usize;
        }
        let bits = u64::BITS - latency.leading_zeros(); // >= SUB_BITS + 1
        let shift = bits - 1 - SUB_BITS;
        let sub = ((latency >> shift) as usize) & (SUBS - 1);
        SUBS * (bits - SUB_BITS) as usize + sub
    }

    /// Inclusive `[lo, hi]` value range of bucket `idx` (the inverse of
    /// [`Self::bucket_of`]).
    fn bucket_range(idx: usize) -> (u64, u64) {
        if idx < SUBS {
            return (idx as u64, idx as u64);
        }
        let shift = (idx / SUBS - 1) as u32;
        let lo = ((SUBS + idx % SUBS) as u64) << shift;
        (lo, lo + ((1u64 << shift) - 1))
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: u64) {
        self.buckets[Self::bucket_of(latency)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(latency);
        self.min = self.min.min(latency);
        self.max = self.max.max(latency);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded latencies (for exact means; saturates at
    /// `u64::MAX` rather than overflowing on extreme samples).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded latency (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded latency (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean latency (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Estimate of the `p`-th percentile sample (`0.0 < p <= 100.0`),
    /// `None` when empty. The rank is located in its sub-bucket, the value
    /// linearly interpolated by rank position within that sub-bucket, and
    /// the result clamped to the observed `[min, max]` — so the estimate is
    /// within 3.125% of the true order statistic (exact for values below
    /// 32, and exact at the extremes, which land on `min`/`max`).
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let (lo, hi) = Self::bucket_range(i);
                // Interpolate by rank position within the sub-bucket:
                // rank-in-bucket 1..=n maps onto the value span [lo, hi].
                let frac = (rank - seen) as f64 / n as f64;
                // Saturating: in the top octave `(hi - lo) as f64` can
                // round up past the exact span and overflow the add.
                let v = lo.saturating_add(((hi - lo) as f64 * frac).round() as u64);
                return Some(v.min(self.max).max(self.min));
            }
            seen += n;
        }
        Some(self.max)
    }

    /// Estimated fraction of samples with latency `<= value` (the
    /// goodput-under-SLO curve's y-axis), linearly interpolated within the
    /// sub-bucket `value` lands in; `0.0` when empty.
    pub fn fraction_le(&self, value: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if value >= self.max {
            return 1.0;
        }
        let idx = Self::bucket_of(value);
        let mut below = 0u64;
        for &n in &self.buckets[..idx] {
            below += n;
        }
        let (lo, hi) = Self::bucket_range(idx);
        let within = self.buckets[idx] as f64 * (value - lo + 1) as f64 / (hi - lo + 1) as f64;
        (below as f64 + within) / self.count as f64
    }

    /// Median (50th percentile) estimate.
    pub fn p50(&self) -> Option<u64> {
        self.percentile(50.0)
    }

    /// 90th percentile estimate.
    pub fn p90(&self) -> Option<u64> {
        self.percentile(90.0)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> Option<u64> {
        self.percentile(99.0)
    }

    /// 99.9th percentile estimate (the service SLO tail).
    pub fn p999(&self) -> Option<u64> {
        self.percentile(99.9)
    }

    /// Folds `other` into `self` (for cross-core aggregation).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// One completed operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Core that executed the op.
    pub core: usize,
    /// Frontend token.
    pub token: OpToken,
    /// The operation.
    pub op: Op,
    /// Cycle the op entered the LSU.
    pub issued_at: u64,
    /// Cycle the op completed (result available / committed).
    pub completed_at: u64,
}

impl TraceRecord {
    /// Completion latency in cycles.
    pub fn latency(&self) -> u64 {
        self.completed_at - self.issued_at
    }
}

/// A bounded log of completed operations, plus unbounded-cost-free latency
/// histograms per op kind (histograms keep counting even after the record
/// buffer fills, so percentiles cover *every* completion).
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    records: Vec<TraceRecord>,
    capacity: usize,
    /// Completions that arrived after the log filled.
    pub dropped: u64,
    histograms: BTreeMap<&'static str, LatencyHistogram>,
}

impl TraceLog {
    /// Creates a log bounded to `capacity` records.
    pub fn new(capacity: usize) -> Self {
        TraceLog {
            records: Vec::with_capacity(capacity.min(1 << 20)),
            capacity,
            dropped: 0,
            histograms: BTreeMap::new(),
        }
    }

    pub(crate) fn push(&mut self, rec: TraceRecord) {
        self.histograms
            .entry(rec.op.kind_name())
            .or_default()
            .record(rec.latency());
        if self.records.len() < self.capacity {
            self.records.push(rec);
        } else {
            self.dropped += 1;
        }
    }

    /// Latency histogram for one op kind (see [`Op::kind_name`]), if any
    /// op of that kind has completed.
    pub fn histogram(&self, kind: &str) -> Option<&LatencyHistogram> {
        self.histograms.get(kind)
    }

    /// All per-op-kind latency histograms, keyed by [`Op::kind_name`].
    pub fn histograms(&self) -> &BTreeMap<&'static str, LatencyHistogram> {
        &self.histograms
    }

    /// The recorded operations, in completion order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Latencies of all records matching `pred`, sorted ascending.
    pub fn latencies_where(&self, pred: impl Fn(&TraceRecord) -> bool) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .records
            .iter()
            .filter(|r| pred(r))
            .map(TraceRecord::latency)
            .collect();
        v.sort_unstable();
        v
    }

    /// Median latency of records matching `pred` (`None` when no record
    /// matches).
    pub fn median_where(&self, pred: impl Fn(&TraceRecord) -> bool) -> Option<u64> {
        let v = self.latencies_where(pred);
        (!v.is_empty()).then(|| v[v.len() / 2])
    }

    /// Clears the log and histograms (keeping the capacity).
    pub fn clear(&mut self) {
        self.records.clear();
        self.dropped = 0;
        self.histograms.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64, lat: u64) -> TraceRecord {
        TraceRecord {
            core: 0,
            token: t,
            op: Op::Fence,
            issued_at: 100,
            completed_at: 100 + lat,
        }
    }

    #[test]
    fn bounded_capacity_counts_drops() {
        let mut log = TraceLog::new(2);
        log.push(rec(1, 5));
        log.push(rec(2, 7));
        log.push(rec(3, 9));
        assert_eq!(log.records().len(), 2);
        assert_eq!(log.dropped, 1);
        log.clear();
        assert!(log.records().is_empty());
        assert_eq!(log.dropped, 0);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.p50(), None);
        for l in [0u64, 1, 2, 3, 100, 100, 100, 100, 100, 1000] {
            h.record(l);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        assert_eq!(h.sum(), 1506);
        // p50 is the 5th sorted sample (100); its sub-bucket [100, 101]
        // resolves it exactly.
        assert_eq!(h.p50(), Some(100));
        // p99 is the lone 1000 sample, clamped to the observed max.
        assert_eq!(h.p99(), Some(1000));
        assert_eq!(h.p999(), Some(1000));
        let mut other = LatencyHistogram::new();
        other.record(5);
        other.merge(&h);
        assert_eq!(other.count(), 11);
        assert_eq!(other.min(), Some(0));
        assert_eq!(other.max(), Some(1000));
    }

    #[test]
    fn empty_histogram_reports_none_everywhere() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        for p in [0.001, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), None);
        }
        // Merging an empty histogram into an empty histogram stays empty
        // (the `u64::MAX` min sentinel must not leak into observables).
        let mut a = LatencyHistogram::new();
        a.merge(&h);
        assert_eq!(a.min(), None);
        assert_eq!(a.p50(), None);
    }

    #[test]
    fn top_bucket_saturation() {
        // u64::MAX lands in the last sub-bucket without indexing past the
        // array, the bucket bound arithmetic does not overflow, and every
        // percentile clamps to the observed range.
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(1u64 << 63);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), Some(1u64 << 63));
        assert_eq!(h.max(), Some(u64::MAX));
        // Exact p50 is u64::MAX - 1; the estimate stays in range and
        // within the sub-bucket error bound.
        let p50 = h.p50().unwrap();
        assert!(p50 >= 1u64 << 63 && p50 <= u64::MAX);
        assert_eq!(h.p99(), Some(u64::MAX));
        assert_eq!(h.p999(), Some(u64::MAX));
        // A merge on saturated top buckets keeps the counts.
        let mut other = LatencyHistogram::new();
        other.record(0);
        other.merge(&h);
        assert_eq!(other.count(), 4);
        assert_eq!(other.min(), Some(0));
        assert_eq!(other.max(), Some(u64::MAX));
    }

    /// Exact reference percentile: the rank-`ceil(p/100*n)` order
    /// statistic of the sorted samples (matching the histogram's rank
    /// definition).
    fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
        let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
        sorted[rank - 1]
    }

    /// Accuracy pin: on adversarial distributions (bucket-edge spikes,
    /// bimodal far-apart modes, heavy log-uniform tails, huge outlier
    /// masses) every percentile estimate — p999 included — is within the
    /// documented 3.125% sub-bucket bound of the exact sorted reference.
    #[test]
    fn percentiles_track_exact_reference_on_adversarial_distributions() {
        // SplitMix64, so the adversarial samples are reproducible.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };

        let mut cases: Vec<(&str, Vec<u64>)> = Vec::new();
        // All mass at the low edge of one coarse octave: the old log2
        // bound would report 2x the truth here.
        cases.push(("low-edge spike", vec![1 << 13; 1000]));
        // And at the high edge, where the old bound was nearly exact.
        cases.push(("high-edge spike", vec![(1 << 14) - 1; 1000]));
        // Bimodal with the tail crossing between modes near p99.
        let mut bimodal = vec![40u64; 990];
        bimodal.extend([1_000_000; 10]);
        cases.push(("bimodal", bimodal));
        // Log-uniform heavy tail: latencies spanning 12 octaves.
        cases.push((
            "log-uniform",
            (0..5000).map(|_| 1u64 << (next() % 40)).collect(),
        ));
        // Dense linear ramp (the smooth case interpolation must not hurt).
        cases.push(("ramp", (1..=10_000u64).collect()));
        // A p999-shaped storm: 1 in 1000 requests is 100x slower.
        let mut storm: Vec<u64> = (0..10_000).map(|_| 200 + next() % 100).collect();
        for slot in storm.iter_mut().step_by(1000) {
            *slot = 20_000 + next() % 10_000;
        }
        cases.push(("storm", storm));

        for (name, samples) in cases {
            let mut h = LatencyHistogram::new();
            let mut sorted = samples.clone();
            for s in samples {
                h.record(s);
            }
            sorted.sort_unstable();
            for p in [1.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
                let exact = exact_percentile(&sorted, p);
                let est = h.percentile(p).unwrap();
                let bound = (exact as f64 / 32.0).ceil() + 1.0;
                assert!(
                    (est as f64 - exact as f64).abs() <= bound,
                    "{name}: p{p} estimate {est} vs exact {exact} (bound {bound})"
                );
            }
            assert_eq!(h.p999(), h.percentile(99.9));
            // The goodput curve agrees with the exact CDF to the same
            // resolution: check at every decile of the exact samples.
            for i in (0..sorted.len()).step_by(sorted.len() / 10) {
                let v = sorted[i];
                let exact_frac =
                    sorted.iter().filter(|&&s| s <= v).count() as f64 / sorted.len() as f64;
                let est = h.fraction_le(v);
                assert!(
                    (est - exact_frac).abs() <= 0.05,
                    "{name}: fraction_le({v}) {est} vs exact {exact_frac}"
                );
            }
        }
    }

    #[test]
    fn small_values_are_exact() {
        // Every latency below 32 has its own bucket: percentiles on small
        // values are not estimates at all.
        let mut h = LatencyHistogram::new();
        let samples: Vec<u64> = (0..31).flat_map(|v| [v; 3]).collect();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for s in samples {
            h.record(s);
        }
        for p in [1.0, 25.0, 50.0, 75.0, 99.0, 99.9, 100.0] {
            assert_eq!(h.percentile(p), Some(exact_percentile(&sorted, p)));
        }
    }

    #[test]
    fn fraction_le_endpoints() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.fraction_le(0), 0.0);
        for l in [10u64, 20, 30, 40] {
            h.record(l);
        }
        assert_eq!(h.fraction_le(40), 1.0);
        assert_eq!(h.fraction_le(u64::MAX), 1.0);
        assert!((h.fraction_le(20) - 0.5).abs() < 1e-9);
        assert!(h.fraction_le(9) < 0.25);
    }

    #[test]
    fn histograms_survive_record_drops() {
        let mut log = TraceLog::new(1);
        log.push(rec(1, 5));
        log.push(rec(2, 7));
        assert_eq!(log.records().len(), 1);
        assert_eq!(log.dropped, 1);
        let h = log.histogram("fence").expect("fence histogram");
        assert_eq!(h.count(), 2, "drops must still be counted in histograms");
        log.clear();
        assert!(log.histogram("fence").is_none());
    }

    #[test]
    fn median_and_filters() {
        let mut log = TraceLog::new(16);
        for (t, l) in [(1, 10), (2, 30), (3, 20)] {
            log.push(rec(t, l));
        }
        assert_eq!(log.median_where(|_| true), Some(20));
        assert_eq!(log.median_where(|r| r.token == 2), Some(30));
        assert_eq!(log.median_where(|r| r.token == 99), None);
        assert_eq!(log.latencies_where(|_| true), vec![10, 20, 30]);
    }
}
