//! Thread-mode core handle: the blocking API workload threads use to drive a
//! simulated core.
//!
//! Each handle owns one side of a strict rendezvous with the simulator: the
//! thread sends one command, then blocks for its result; the simulator, after
//! completing an op, blocks for the thread's next command. At every simulated
//! cycle each core is therefore in a well-defined state, making simulated
//! time independent of host scheduling.
//!
//! Workload threads must not synchronize with each other through host-side
//! primitives — all shared state belongs in simulated memory.

use crate::op::Op;
use crossbeam::channel::{Receiver, Sender};
use std::cell::Cell;

#[derive(Clone, Copy, Debug)]
pub(crate) enum Cmd {
    Op(Op),
    RdCycle,
    Done,
}

#[derive(Clone, Copy, Debug)]
pub(crate) struct Resp {
    pub value: u64,
    /// The run's cycle budget is exhausted; the workload should wind down.
    pub halted: bool,
}

/// Blocking driver for one simulated core (thread mode).
///
/// Dropping the handle tells the simulator the workload is done.
#[derive(Debug)]
pub struct CoreHandle {
    pub(crate) cmd: Sender<Cmd>,
    pub(crate) res: Receiver<Resp>,
    pub(crate) core: usize,
    halted: Cell<bool>,
    done_sent: Cell<bool>,
}

impl CoreHandle {
    pub(crate) fn new(cmd: Sender<Cmd>, res: Receiver<Resp>, core: usize) -> Self {
        CoreHandle {
            cmd,
            res,
            core,
            halted: Cell::new(false),
            done_sent: Cell::new(false),
        }
    }

    /// The simulated core this handle drives.
    pub fn core_id(&self) -> usize {
        self.core
    }

    fn exec(&self, op: Op) -> u64 {
        self.cmd.send(Cmd::Op(op)).expect("simulator alive");
        let resp = self.res.recv().expect("simulator alive");
        if resp.halted {
            self.halted.set(true);
        }
        resp.value
    }

    /// Performs a 64-bit load; blocks until the value is available.
    pub fn load(&self, addr: u64) -> u64 {
        self.exec(Op::Load { addr })
    }

    /// Performs a 64-bit store; blocks until the store is accepted by the
    /// memory system (BOOM commit semantics, §3.3).
    pub fn store(&self, addr: u64, value: u64) {
        self.exec(Op::Store { addr, value });
    }

    /// Compare-and-swap; returns the old value (success iff it equals
    /// `expected`).
    pub fn cas(&self, addr: u64, expected: u64, new: u64) -> u64 {
        self.exec(Op::Cas {
            addr,
            expected,
            new,
        })
    }

    /// Atomic fetch-and-add; returns the old value.
    pub fn fetch_add(&self, addr: u64, operand: u64) -> u64 {
        self.exec(Op::FetchAdd { addr, operand })
    }

    /// Atomic swap; returns the old value.
    pub fn swap(&self, addr: u64, operand: u64) -> u64 {
        self.exec(Op::Swap { addr, operand })
    }

    /// Issues `CBO.CLEAN`; blocks only until the flush unit buffers it
    /// (§5.2) — the writeback itself proceeds asynchronously.
    pub fn clean(&self, addr: u64) {
        self.exec(Op::Clean { addr });
    }

    /// Issues `CBO.FLUSH`; blocks only until the flush unit buffers it.
    pub fn flush(&self, addr: u64) {
        self.exec(Op::Flush { addr });
    }

    /// Issues `CBO.INVAL` — discards every cached copy without writing
    /// dirty data back (dangerous; exposes whatever main memory holds).
    pub fn inval(&self, addr: u64) {
        self.exec(Op::Inval { addr });
    }

    /// `FENCE RW, RW` extended with writeback completion (§5.3): blocks
    /// until every older memory op *and every pending writeback* is done.
    pub fn fence(&self) {
        self.exec(Op::Fence);
    }

    /// Occupies the core for `cycles` of non-memory work (think time).
    pub fn work(&self, cycles: u64) {
        if cycles > 0 {
            self.exec(Op::Nop { cycles });
        }
    }

    /// Reads the cycle CSR (`RDCYCLE`, §7.1) without consuming simulated
    /// time.
    pub fn rdcycle(&self) -> u64 {
        self.cmd.send(Cmd::RdCycle).expect("simulator alive");
        let resp = self.res.recv().expect("simulator alive");
        if resp.halted {
            self.halted.set(true);
        }
        resp.value
    }

    /// Whether the run's cycle budget has been exhausted — workload loops
    /// should poll this and return.
    pub fn halted(&self) -> bool {
        self.halted.get()
    }

    /// Explicitly ends the workload (also done automatically on drop).
    pub fn finish(self) {
        // Drop runs and sends Done.
    }
}

impl Drop for CoreHandle {
    fn drop(&mut self) {
        if !self.done_sent.get() {
            self.done_sent.set(true);
            let _ = self.cmd.send(Cmd::Done);
        }
    }
}
