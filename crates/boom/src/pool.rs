//! A persistent host-thread pool for the parallel wheel engine.
//!
//! [`WheelPool::run`] executes one closure across `threads` slots — slot 0
//! on the calling thread, slots 1.. on persistent workers — and returns only
//! after every slot finished (the cycle barrier). Dispatch is epoch-based:
//! the caller publishes a job and bumps an epoch counter; workers spin
//! briefly on the epoch and park when a cycle gap leaves them idle, so a
//! simulation that falls back to serial stepping pays nothing for an idle
//! pool. The pool is rebuilt per [`System`](crate::System), never shared, so
//! dispatch needs no locking beyond the epoch/done counters.
//!
//! Worker panics are caught at the slot boundary, the barrier still
//! completes (no worker is ever left running into the next cycle's state),
//! and the payload is re-thrown on the calling thread.

use std::cell::UnsafeCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Spins on the epoch before parking. Parking costs a futex round trip on
/// wake; a busy simulation dispatches every few microseconds, so a short
/// spin window keeps workers hot without burning a host CPU during jumps.
const SPIN_LIMIT: u32 = 4096;

/// A type-erased job: `run(data, slot)` steps one slot's share of the
/// cycle. `data` points at the borrowed closure passed to
/// [`WheelPool::run`]; it is only dereferenced between the epoch bump and
/// the barrier, while the closure is provably alive on the caller's stack.
#[derive(Clone, Copy)]
struct Job {
    run: unsafe fn(*const (), usize),
    data: *const (),
}

struct Shared {
    /// Bumped once per dispatch (and once at shutdown). Workers treat any
    /// change as "a job (or shutdown) is published".
    epoch: AtomicU64,
    /// Workers finished with the current epoch's job.
    done: AtomicUsize,
    shutdown: AtomicBool,
    /// The published job. Written by the caller before the epoch bump
    /// (release) and read by workers after observing the bump (acquire);
    /// workers never touch it after their `done` increment.
    job: UnsafeCell<Job>,
    /// First worker panic of the current dispatch, re-thrown by the caller
    /// after the barrier.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Wall ns the caller spent waiting on the cycle barrier (`profile`
    /// feature; folded into `PhaseProfile::barrier_ns`).
    #[cfg(feature = "profile")]
    caller_wait_ns: AtomicU64,
    /// Wall ns workers spent waiting for the next dispatch, summed across
    /// workers (`profile` feature; `PhaseProfile::worker_wait_ns`).
    #[cfg(feature = "profile")]
    worker_wait_ns: AtomicU64,
}

// SAFETY: `job` is the only non-Sync field. It is written only by the
// dispatching thread while no worker is between epoch-observation and
// done-increment (the caller blocks on the barrier before returning from
// `run`, and holds `&mut self`/ownership exclusivity between dispatches),
// and the release epoch bump / acquire epoch load pair orders the write
// before every worker read. The raw `data` pointer is dereferenced only
// inside that same window, during which the pointee is a live stack
// borrow of the caller.
unsafe impl Sync for Shared {}
unsafe impl Send for Shared {}

/// Persistent worker threads stepping wheel slots in parallel. See the
/// [module docs](self).
pub struct WheelPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for WheelPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WheelPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl WheelPool {
    /// Spawns a pool running jobs across `threads` slots (`threads - 1`
    /// worker threads; slot 0 always runs on the caller). `threads` is
    /// clamped to at least 1.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            epoch: AtomicU64::new(0),
            done: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            job: UnsafeCell::new(Job {
                run: |_, _| {},
                data: std::ptr::null(),
            }),
            panic: Mutex::new(None),
            #[cfg(feature = "profile")]
            caller_wait_ns: AtomicU64::new(0),
            #[cfg(feature = "profile")]
            worker_wait_ns: AtomicU64::new(0),
        });
        let workers = (1..threads)
            .map(|slot| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("skipit-wheel-{slot}"))
                    .spawn(move || worker_loop(&shared, slot))
                    .expect("spawning a wheel worker thread failed")
            })
            .collect();
        WheelPool {
            shared,
            workers,
            threads,
        }
    }

    /// Number of slots a job is dispatched across (including the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Accumulated `(caller barrier wait, summed worker dispatch wait)`
    /// wall nanoseconds. Both zero unless the `profile` feature is
    /// compiled in.
    pub fn wait_ns(&self) -> (u64, u64) {
        #[cfg(feature = "profile")]
        {
            (
                self.shared.caller_wait_ns.load(Ordering::Relaxed),
                self.shared.worker_wait_ns.load(Ordering::Relaxed),
            )
        }
        #[cfg(not(feature = "profile"))]
        {
            (0, 0)
        }
    }

    /// Runs `f(slot)` for every slot in `0..threads()`, slot 0 on the
    /// calling thread, and returns after all slots completed. If any slot
    /// panicked, the barrier still completes and the first captured payload
    /// is re-thrown here.
    pub fn run<F: Fn(usize) + Sync>(&self, f: &F) {
        if self.workers.is_empty() {
            f(0);
            return;
        }
        unsafe fn trampoline<F: Fn(usize)>(data: *const (), slot: usize) {
            // SAFETY: `data` was derived from `&F` by the caller below and
            // stays borrowed until the barrier completes.
            let f = unsafe { &*(data.cast::<F>()) };
            f(slot);
        }
        // SAFETY: no worker is between epoch-observation and done-increment
        // (the previous `run` blocked on its barrier), so this write does
        // not race; the release bump below publishes it.
        unsafe {
            *self.shared.job.get() = Job {
                run: trampoline::<F>,
                data: (f as *const F).cast(),
            };
        }
        self.shared.done.store(0, Ordering::Release);
        self.shared.epoch.fetch_add(1, Ordering::Release);
        for h in &self.workers {
            h.thread().unpark();
        }
        let local = panic::catch_unwind(AssertUnwindSafe(|| f(0)));
        let barrier = crate::prof::Timer::start();
        let mut spins = 0u32;
        while self.shared.done.load(Ordering::Acquire) != self.workers.len() {
            // Spin briefly, then yield: when workers outnumber host CPUs
            // (or the host has one CPU), an unyielding spin here would burn
            // the caller's whole scheduler timeslice before a worker ever
            // gets to run, turning every barrier into milliseconds.
            spins += 1;
            if spins < SPIN_LIMIT {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        #[cfg(feature = "profile")]
        self.shared
            .caller_wait_ns
            .fetch_add(barrier.elapsed_ns(), Ordering::Relaxed);
        #[cfg(not(feature = "profile"))]
        let _ = barrier;
        if let Err(payload) = local {
            panic::resume_unwind(payload);
        }
        // Take the payload with the guard already dropped: rethrowing while
        // the `if let` scrutinee's temporary guard is live would poison the
        // mutex and break every later dispatch on this pool.
        let worker_panic = self
            .shared
            .panic
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(payload) = worker_panic {
            panic::resume_unwind(payload);
        }
    }
}

impl Drop for WheelPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.epoch.fetch_add(1, Ordering::Release);
        for h in &self.workers {
            h.thread().unpark();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, slot: usize) {
    // Baseline at the creation-time epoch (0), NOT a fresh load: a dispatch
    // can land between `spawn` and the worker's first instruction, and a
    // fresh load would adopt that bumped epoch as "already seen" — the
    // worker would sleep through the first job and deadlock the barrier.
    let mut seen = 0u64;
    loop {
        let wait = crate::prof::Timer::start();
        let mut spins = 0u32;
        loop {
            let e = shared.epoch.load(Ordering::Acquire);
            if e != seen {
                seen = e;
                break;
            }
            spins += 1;
            if spins < SPIN_LIMIT {
                std::hint::spin_loop();
            } else {
                // An unpark between the epoch check and this park leaves a
                // token, so the park returns immediately — no lost wakeup.
                std::thread::park();
            }
        }
        #[cfg(feature = "profile")]
        shared
            .worker_wait_ns
            .fetch_add(wait.elapsed_ns(), Ordering::Relaxed);
        #[cfg(not(feature = "profile"))]
        let _ = wait;
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // SAFETY: published before the epoch bump we just observed.
        let job = unsafe { *shared.job.get() };
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: the dispatching thread keeps the pointee alive until
            // the barrier, which cannot complete before our `done`
            // increment below.
            unsafe { (job.run)(job.data, slot) }
        }));
        if let Err(payload) = result {
            let mut guard = shared.panic.lock().unwrap_or_else(|e| e.into_inner());
            guard.get_or_insert(payload);
        }
        shared.done.fetch_add(1, Ordering::AcqRel);
    }
}

/// Parses a thread-count environment variable, panicking with a clear
/// message on unparseable or zero values (the same contract as
/// `SKIPIT_SWEEP_THREADS` in the sweep runner).
///
/// # Panics
///
/// Panics unless `value` parses as a positive integer.
pub fn parse_threads_env(var: &str, value: &str) -> usize {
    match value.trim().parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => panic!("{var} must be a positive integer, got {value:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as Counter;

    #[test]
    fn runs_every_slot_exactly_once() {
        let pool = WheelPool::new(4);
        let hits: Vec<Counter> = (0..4).map(|_| Counter::new(0)).collect();
        for _ in 0..100 {
            pool.run(&|slot| {
                hits[slot].fetch_add(1, Ordering::Relaxed);
            });
        }
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 100);
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WheelPool::new(1);
        assert_eq!(pool.threads(), 1);
        let hit = Counter::new(0);
        pool.run(&|slot| {
            assert_eq!(slot, 0);
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn barrier_orders_worker_writes_before_return() {
        // Each slot writes its own cell; after `run` returns the caller
        // must observe every write (the done-counter acquire/release pair).
        let pool = WheelPool::new(3);
        let cells: Vec<Counter> = (0..3).map(|_| Counter::new(0)).collect();
        for round in 1..=50u64 {
            pool.run(&|slot| {
                cells[slot].store(round, Ordering::Relaxed);
            });
            for c in &cells {
                assert_eq!(c.load(Ordering::Relaxed), round);
            }
        }
    }

    #[test]
    fn worker_panic_is_rethrown_on_caller() {
        let pool = WheelPool::new(2);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|slot| {
                if slot == 1 {
                    panic!("boom in worker");
                }
            });
        }));
        let payload = result.expect_err("worker panic must surface");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("boom in worker"), "got {msg:?}");
        // The pool must stay usable after a caught panic.
        pool.run(&|_| {});
    }

    #[test]
    fn first_dispatch_races_worker_startup() {
        // Regression: a dispatch can land before a freshly spawned worker
        // executes its first instruction; if workers baseline their seen
        // epoch with a load instead of the creation-time value they sleep
        // through that job and the barrier never completes. Fresh pool per
        // iteration maximizes the window.
        for _ in 0..50 {
            let pool = WheelPool::new(3);
            let hits = Counter::new(0);
            pool.run(&|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 3);
        }
    }

    #[test]
    fn drop_joins_workers() {
        let pool = WheelPool::new(4);
        pool.run(&|_| {});
        drop(pool); // must not hang
    }

    #[test]
    fn parse_threads_env_accepts_positive() {
        assert_eq!(parse_threads_env("X", "1"), 1);
        assert_eq!(parse_threads_env("X", " 8 "), 8);
    }

    #[test]
    #[should_panic(expected = "SKIPIT_ENGINE_THREADS must be a positive integer")]
    fn parse_threads_env_rejects_zero() {
        parse_threads_env("SKIPIT_ENGINE_THREADS", "0");
    }

    #[test]
    #[should_panic(expected = "SKIPIT_ENGINE_THREADS must be a positive integer")]
    fn parse_threads_env_rejects_garbage() {
        parse_threads_env("SKIPIT_ENGINE_THREADS", "two");
    }
}
