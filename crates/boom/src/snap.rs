//! [`Codec`] implementations for core-level types (DESIGN.md §11).
//!
//! The per-component state codecs live next to their structs
//! ([`crate::lsu`], the cache crates); this module covers the plain-data
//! types shared across the system snapshot: [`Op`], [`EngineStats`] and
//! [`SystemStats`].

use crate::op::Op;
use crate::system::{EngineStats, PhaseProfile, SystemStats};
use crate::workload::TimedOp;
use skipit_dcache::L1Stats;
use skipit_llc::L2Stats;
use skipit_mem::MemStats;
use skipit_snap::{Codec, SnapError, SnapReader, SnapWriter};

impl Codec for Op {
    fn encode(&self, w: &mut SnapWriter) {
        match *self {
            Op::Load { addr } => {
                w.put_u8(0);
                addr.encode(w);
            }
            Op::Store { addr, value } => {
                w.put_u8(1);
                addr.encode(w);
                value.encode(w);
            }
            Op::Cas {
                addr,
                expected,
                new,
            } => {
                w.put_u8(2);
                addr.encode(w);
                expected.encode(w);
                new.encode(w);
            }
            Op::FetchAdd { addr, operand } => {
                w.put_u8(3);
                addr.encode(w);
                operand.encode(w);
            }
            Op::Swap { addr, operand } => {
                w.put_u8(4);
                addr.encode(w);
                operand.encode(w);
            }
            Op::Clean { addr } => {
                w.put_u8(5);
                addr.encode(w);
            }
            Op::Flush { addr } => {
                w.put_u8(6);
                addr.encode(w);
            }
            Op::Inval { addr } => {
                w.put_u8(7);
                addr.encode(w);
            }
            Op::Fence => w.put_u8(8),
            Op::Nop { cycles } => {
                w.put_u8(9);
                cycles.encode(w);
            }
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.get_u8()? {
            0 => Op::Load {
                addr: u64::decode(r)?,
            },
            1 => Op::Store {
                addr: u64::decode(r)?,
                value: u64::decode(r)?,
            },
            2 => Op::Cas {
                addr: u64::decode(r)?,
                expected: u64::decode(r)?,
                new: u64::decode(r)?,
            },
            3 => Op::FetchAdd {
                addr: u64::decode(r)?,
                operand: u64::decode(r)?,
            },
            4 => Op::Swap {
                addr: u64::decode(r)?,
                operand: u64::decode(r)?,
            },
            5 => Op::Clean {
                addr: u64::decode(r)?,
            },
            6 => Op::Flush {
                addr: u64::decode(r)?,
            },
            7 => Op::Inval {
                addr: u64::decode(r)?,
            },
            8 => Op::Fence,
            9 => Op::Nop {
                cycles: u64::decode(r)?,
            },
            _ => return Err(SnapError::Corrupt("op opcode")),
        })
    }
}

impl Codec for TimedOp {
    fn encode(&self, w: &mut SnapWriter) {
        self.at.encode(w);
        self.op.encode(w);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(TimedOp {
            at: u64::decode(r)?,
            op: Op::decode(r)?,
        })
    }
}

/// [`EngineStats::phase`] is host wall-time attribution, not simulated
/// state; it is not serialized and decodes to zero (matching the
/// `PartialEq` contract, which ignores it).
impl Codec for EngineStats {
    fn encode(&self, w: &mut SnapWriter) {
        self.skipped_cycles.encode(w);
        self.jumps.encode(w);
        self.component_steps.encode(w);
        self.component_slots.encode(w);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(EngineStats {
            skipped_cycles: u64::decode(r)?,
            jumps: u64::decode(r)?,
            component_steps: u64::decode(r)?,
            component_slots: u64::decode(r)?,
            phase: PhaseProfile::default(),
        })
    }
}

impl Codec for SystemStats {
    fn encode(&self, w: &mut SnapWriter) {
        self.cycles.encode(w);
        self.l1.encode(w);
        self.l2.encode(w);
        self.mem.encode(w);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(SystemStats {
            cycles: u64::decode(r)?,
            l1: Vec::<L1Stats>::decode(r)?,
            l2: L2Stats::decode(r)?,
            mem: MemStats::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_op_roundtrips() {
        let ops = [
            Op::Load { addr: 0x40 },
            Op::Store {
                addr: 0x48,
                value: 7,
            },
            Op::Cas {
                addr: 0x50,
                expected: 1,
                new: 2,
            },
            Op::FetchAdd {
                addr: 0x58,
                operand: 3,
            },
            Op::Swap {
                addr: 0x60,
                operand: 4,
            },
            Op::Clean { addr: 0x68 },
            Op::Flush { addr: 0x70 },
            Op::Inval { addr: 0x78 },
            Op::Fence,
            Op::Nop { cycles: 12 },
        ];
        let mut w = SnapWriter::new();
        for op in &ops {
            op.encode(&mut w);
        }
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        for op in &ops {
            assert_eq!(Op::decode(&mut r).unwrap(), *op);
        }
        r.finish().unwrap();
    }

    #[test]
    fn engine_stats_roundtrip_zeroes_phase() {
        let stats = EngineStats {
            skipped_cycles: 10,
            jumps: 2,
            component_steps: 30,
            component_slots: 99,
            phase: PhaseProfile {
                serial_ns: 123,
                ..PhaseProfile::default()
            },
        };
        let mut w = SnapWriter::new();
        stats.encode(&mut w);
        let bytes = w.into_bytes();
        let decoded = EngineStats::decode(&mut SnapReader::new(&bytes)).unwrap();
        assert_eq!(decoded, stats); // PartialEq ignores phase
        assert_eq!(decoded.phase, PhaseProfile::default());
    }
}
