//! The versioned full-system snapshot container (DESIGN.md §11).
//!
//! A [`Snapshot`] is a self-describing byte image of *every* piece of
//! simulated state — per-core LSUs and frontends, L1 arrays + FSHRs +
//! flush queues, all five TileLink link FIFOs per core, L2 arrays + MSHRs,
//! DRAM, engine counters and the perturbation bookkeeping — taken by
//! [`System::snapshot`](crate::System::snapshot) and turned back into a
//! live system by [`System::restore`](crate::System::restore). A restored
//! system is bit-identical to the original going forward: same cycles,
//! same statistics, same durable image, same merged trace streams, on
//! every engine at any thread count.
//!
//! Host-side observation machinery (trace sinks, telemetry, the wheel
//! scheduler, worker-thread pools) is *not* state: restore rebuilds it
//! from the offered [`SystemConfig`](crate::SystemConfig).
//!
//! # Format
//!
//! ```text
//! magic  "SKSN"            4 raw bytes
//! version                  varint (currently 1)
//! config fingerprint       varint u64 (simulated-state-relevant config)
//! payload                  component sections, each tagged
//! ```
//!
//! Integers use LEB128 varints; cache lines use a word-presence mask so
//! all-zero lines and never-touched ways collapse to a byte or two (see
//! [`skipit_snap`]). Decoding is total: corrupt, truncated, foreign or
//! wrong-version inputs produce a typed [`SnapshotError`], never a panic.

use skipit_snap::{SnapError, SnapReader, SnapWriter};

/// Decode/restore failure. Re-exported alias of [`skipit_snap::SnapError`].
pub type SnapshotError = SnapError;

/// Leading magic bytes of every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"SKSN";

/// Snapshot format version this build reads and writes.
pub const SNAPSHOT_VERSION: u32 = 1;

/// A validated, self-describing byte image of a [`System`](crate::System)'s
/// complete simulated state. Obtain one from
/// [`System::snapshot`](crate::System::snapshot) or [`Snapshot::from_bytes`];
/// it is plain data — clone it, ship it across threads, write it to disk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    bytes: Vec<u8>,
}

impl Snapshot {
    /// Wraps freshly encoded bytes (header already written). Crate-internal;
    /// external bytes go through [`Snapshot::from_bytes`].
    pub(crate) fn from_writer(w: SnapWriter) -> Snapshot {
        Snapshot {
            bytes: w.into_bytes(),
        }
    }

    /// Validates the header of `bytes` (magic and version) and wraps them.
    /// The payload itself is validated structurally at
    /// [`System::restore`](crate::System::restore) time, against a concrete
    /// configuration.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Snapshot, SnapshotError> {
        let snap = Snapshot { bytes };
        snap.payload_reader()?;
        Ok(snap)
    }

    /// The full encoded image, header included (the inverse of
    /// [`Snapshot::from_bytes`]).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the snapshot, returning the encoded image.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Total encoded size in bytes, header included.
    pub fn encoded_len(&self) -> usize {
        self.bytes.len()
    }

    /// Writes the header into `w` (snapshot construction).
    pub(crate) fn write_header(w: &mut SnapWriter, fingerprint: u64) {
        w.put_raw(&SNAPSHOT_MAGIC);
        w.put_u64(u64::from(SNAPSHOT_VERSION));
        w.put_u64(fingerprint);
    }

    /// Validates magic and version, returning a reader positioned at the
    /// config fingerprint (the first payload field).
    pub(crate) fn payload_reader(&self) -> Result<SnapReader<'_>, SnapshotError> {
        let mut r = SnapReader::new(&self.bytes);
        if r.get_raw(4)? != SNAPSHOT_MAGIC {
            return Err(SnapError::BadMagic);
        }
        let found = r.get_u64()?;
        if found != u64::from(SNAPSHOT_VERSION) {
            return Err(SnapError::BadVersion {
                found: found.try_into().unwrap_or(u32::MAX),
                expected: SNAPSHOT_VERSION,
            });
        }
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn foreign_bytes_rejected() {
        assert_eq!(
            Snapshot::from_bytes(b"not a snapshot".to_vec()),
            Err(SnapError::BadMagic)
        );
        assert_eq!(Snapshot::from_bytes(vec![]), Err(SnapError::UnexpectedEof));
    }

    #[test]
    fn wrong_version_is_typed() {
        let mut w = SnapWriter::new();
        w.put_raw(&SNAPSHOT_MAGIC);
        w.put_u64(99);
        assert_eq!(
            Snapshot::from_bytes(w.into_bytes()),
            Err(SnapError::BadVersion {
                found: 99,
                expected: SNAPSHOT_VERSION
            })
        );
    }

    #[test]
    fn header_roundtrips() {
        let mut w = SnapWriter::new();
        Snapshot::write_header(&mut w, 0xfeed);
        let snap = Snapshot::from_bytes(w.into_bytes()).unwrap();
        let mut r = snap.payload_reader().unwrap();
        assert_eq!(r.get_u64().unwrap(), 0xfeed);
        r.finish().unwrap();
    }
}
