//! The unified workload abstraction: one [`System::run`] entry point for
//! every way of driving the simulated SoC.
//!
//! Historically the simulator grew one `run_*` method per drive mode —
//! `run_programs` for fixed op scripts, `run_threads` for host-thread
//! rendezvous workloads (both removed) — and each new frontend would have
//! added another. A [`Workload`] is the value-level unification: anything
//! that knows how to drive a [`System`] to completion implements the trait,
//! and `System::run(workload)` returns a [`RunReport`] carrying the elapsed
//! cycles, the workload's own output, and whether a cycle budget expired.
//!
//! Three first-party workloads:
//!
//! * [`Programs`] — one fixed [`Op`] script per core (program mode);
//! * [`Threads`] — one host closure per core, driving its core through a
//!   [`CoreHandle`] under the deterministic rendezvous protocol (thread
//!   mode), with an optional soft cycle budget;
//! * [`ReplaySchedule`] — one cycle-stamped [`TimedOp`] lane per core (the
//!   replay frontend; `skipit-replay`'s `TraceReplay` lowers a decoded
//!   trace to this).
//!
//! ```
//! use skipit_boom::{Op, Programs, System, SystemConfig};
//!
//! let mut sys = System::new(SystemConfig::default());
//! let report = sys.run(Programs(vec![vec![
//!     Op::Store { addr: 0x1000, value: 7 },
//!     Op::Flush { addr: 0x1000 },
//!     Op::Fence,
//! ]]));
//! assert!(report.cycles > 0);
//! assert!(!report.budget_expired);
//! ```

use crate::handle::CoreHandle;
use crate::op::Op;
use crate::system::System;

/// Anything that can drive a [`System`] to completion.
///
/// Implementations install their frontends, step the engine until done, and
/// reset the system to the idle, between-runs state — exactly the contract
/// the old `run_*` methods had. The trait consumes `self`: a workload is a
/// one-shot description of a run (re-running means re-building it, which
/// keeps determinism questions out of the trait).
pub trait Workload {
    /// What the workload hands back besides timing: per-worker results for
    /// thread mode, `()` for the script-driven modes.
    type Output;

    /// Runs `self` on `sys` to completion. Prefer calling
    /// [`System::run`], which reads better at call sites.
    fn run(self, sys: &mut System) -> RunReport<Self::Output>;
}

/// What a completed [`Workload`] run reports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunReport<T = ()> {
    /// Simulated cycles elapsed from the call to completion. When a
    /// [`Threads`] budget expired mid-run this *includes* the post-deadline
    /// drain: the budget is a soft stop (workers are told to wind down via
    /// `halted` responses, and the run lasts until they do), not a hard
    /// clock halt.
    pub cycles: u64,
    /// The workload's own output ([`Workload::Output`]).
    pub output: T,
    /// Whether a cycle budget expired during the run. Always `false` for
    /// budget-less workloads. When `true`, every worker's result is still
    /// present in `output` — expiry only flips the `halted` flag workers
    /// observe; it never discards results.
    pub budget_expired: bool,
}

impl<T> RunReport<T> {
    /// Splits the report into `(cycles, output)` — the tuple shape the
    /// pre-[`Workload`] `run_threads` returned, for call sites that want
    /// to destructure both in one binding.
    pub fn into_parts(self) -> (u64, T) {
        (self.cycles, self.output)
    }
}

/// Program mode as a [`Workload`]: one fixed [`Op`] script per core
/// (missing cores idle). Output is `()`; the interesting result is
/// [`RunReport::cycles`].
///
/// # Panics
///
/// Running panics if more programs than cores are supplied, or if the
/// programs fail to finish within a watchdog budget (an interlock bug).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Programs(pub Vec<Vec<Op>>);

impl Workload for Programs {
    type Output = ();

    fn run(self, sys: &mut System) -> RunReport {
        RunReport {
            cycles: sys.run_programs_inner(self.0),
            output: (),
            budget_expired: false,
        }
    }
}

/// Thread mode as a [`Workload`]: one host closure per core (missing cores
/// idle), each driving its core through a [`CoreHandle`] under the
/// deterministic rendezvous protocol. Output is the per-worker results, in
/// worker order.
///
/// An optional [`Threads::budget`] (cycles, measured from the call)
/// soft-stops the run: once `budget` cycles have elapsed, every response a
/// worker receives carries `halted = true` and well-behaved workloads
/// return. The run itself continues until every worker has finished — see
/// [`RunReport::budget_expired`] for the exact semantics.
///
/// # Panics
///
/// Running panics if more workers than cores are supplied or a worker
/// panics.
#[derive(Debug)]
pub struct Threads<F> {
    workers: Vec<F>,
    budget: Option<u64>,
}

impl<F> Threads<F> {
    /// A thread-mode workload with no cycle budget.
    pub fn new(workers: Vec<F>) -> Self {
        Threads {
            workers,
            budget: None,
        }
    }

    /// Sets the soft cycle budget (see the type docs).
    pub fn budget(mut self, cycles: u64) -> Self {
        self.budget = Some(cycles);
        self
    }

    /// Sets or clears the soft cycle budget from an `Option` (the shape the
    /// pre-[`Workload`] `run_threads` signature used).
    pub fn budget_opt(mut self, cycles: Option<u64>) -> Self {
        self.budget = cycles;
        self
    }
}

impl<R, F> Workload for Threads<F>
where
    R: Send,
    F: FnOnce(CoreHandle) -> R + Send,
{
    type Output = Vec<R>;

    fn run(self, sys: &mut System) -> RunReport<Vec<R>> {
        let (cycles, output, budget_expired) = sys.run_threads_inner(self.workers, self.budget);
        RunReport {
            cycles,
            output,
            budget_expired,
        }
    }
}

/// One replay-frontend operation: an [`Op`] and the cycle (relative to the
/// run's first cycle) at which it becomes eligible to issue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimedOp {
    /// Earliest issue cycle, relative to the cycle the run started.
    pub at: u64,
    /// The operation.
    pub op: Op,
}

/// The replay frontend as a [`Workload`]: one cycle-stamped lane per core.
///
/// Each lane issues in order, and each [`TimedOp`] no earlier than its
/// recorded cycle — subject to the same issue-width, `Nop` think-time and
/// LSU-room rules as program mode. For a lane captured from a real run
/// (see [`System::start_capture`]) those constraints are satisfiable at
/// exactly the recorded cycles, so the replay reproduces the original run
/// bit-identically; for hand-written or perturbed schedules the stamps are
/// lower bounds and the frontend issues as early as the machine allows.
///
/// # Panics
///
/// Running panics if more lanes than cores are supplied, or if the replay
/// fails to finish within a watchdog budget.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplaySchedule {
    /// Per-core op lanes (missing cores idle). Stamps within a lane must be
    /// non-decreasing.
    pub lanes: Vec<Vec<TimedOp>>,
}

impl Workload for ReplaySchedule {
    type Output = ();

    fn run(self, sys: &mut System) -> RunReport {
        RunReport {
            cycles: sys.run_replay_inner(self.lanes),
            output: (),
            budget_expired: false,
        }
    }
}

/// One committed memory operation recorded by capture mode
/// ([`System::start_capture`]): which core issued what, and at which
/// absolute cycle it entered the core's LSU (for [`Op::Nop`]: the cycle
/// the frontend began the think time).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CapturedOp {
    /// Absolute cycle of issue.
    pub cycle: u64,
    /// Issuing core.
    pub core: u32,
    /// The operation.
    pub op: Op,
}
