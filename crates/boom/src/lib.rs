//! BOOM-style core model and the cycle-stepped multicore `System`.
//!
//! This crate supplies the processor-side machinery of the paper's
//! evaluation platform (§3, §7.1): per-core load/store units with the
//! LDQ/STQ semantics the flush-unit design relies on (§3.2, §5.1), fences
//! extended to wait on the flush counter (§5.3), nack/retry behaviour, and a
//! [`System`] that ties N cores, their L1 data caches, the shared inclusive
//! L2 and DRAM into one deterministic cycle-stepped simulation.
//!
//! Every way of driving a simulated core is a [`Workload`] run through the
//! single [`System::run`] entry point:
//!
//! * **Program mode** ([`Programs`]): each core executes a fixed [`Op`]
//!   sequence; loads fire out of order, stores/writebacks in order — ideal
//!   for the paper's microbenchmarks (Figs. 9–13).
//! * **Thread mode** ([`Threads`]): each core is driven by a host thread
//!   through a [`CoreHandle`] under a strict rendezvous protocol, so
//!   value-dependent workloads (the persistent lock-free data structures of
//!   §7.4) run as ordinary Rust code while simulated time stays
//!   deterministic.
//! * **Replay mode** ([`ReplaySchedule`]): each core issues a cycle-stamped
//!   op lane — the replay half of the trace capture/replay subsystem (see
//!   [`System::start_capture`] and the `skipit-replay` crate).

pub mod export;
pub mod handle;
pub mod lsu;
pub mod op;
pub mod pool;
pub mod prof;
mod snap;
pub mod snapshot;
pub mod system;
pub mod trace;
pub mod workload;

pub use handle::CoreHandle;
pub use lsu::Lsu;
pub use op::{Op, OpToken};
pub use prof::PROFILE_COMPILED;
pub use snapshot::{Snapshot, SnapshotError};
pub use system::{EngineKind, EngineStats, PhaseProfile, System, SystemConfig, SystemStats};
pub use trace::{LatencyHistogram, TraceLog, TraceRecord};
pub use workload::{CapturedOp, Programs, ReplaySchedule, RunReport, Threads, TimedOp, Workload};
