//! Core-level operations.

use skipit_dcache::req::DcReqKind;
use skipit_dcache::AmoOp;
use skipit_tilelink::WritebackKind;

/// Token identifying an operation submitted to a core (frontend-level, as
/// opposed to the cache-level request ids).
pub type OpToken = u64;

/// One dynamic instruction as seen by the memory system.
///
/// All addresses are byte addresses; loads/stores/AMOs must be 8-byte
/// aligned, writebacks may name any byte of the target line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// 64-bit load.
    Load {
        /// Word address.
        addr: u64,
    },
    /// 64-bit store.
    Store {
        /// Word address.
        addr: u64,
        /// Value to store.
        value: u64,
    },
    /// Compare-and-swap; result is the old value.
    Cas {
        /// Word address.
        addr: u64,
        /// Expected current value.
        expected: u64,
        /// Replacement value.
        new: u64,
    },
    /// Atomic fetch-and-add; result is the old value.
    FetchAdd {
        /// Word address.
        addr: u64,
        /// Addend.
        operand: u64,
    },
    /// Atomic swap; result is the old value.
    Swap {
        /// Word address.
        addr: u64,
        /// Replacement value.
        operand: u64,
    },
    /// `CBO.CLEAN` — asynchronous non-invalidating writeback (§2.6).
    Clean {
        /// Any byte of the target line.
        addr: u64,
    },
    /// `CBO.FLUSH` — asynchronous invalidating writeback (§2.6).
    Flush {
        /// Any byte of the target line.
        addr: u64,
    },
    /// `CBO.INVAL` — invalidate every cached copy *without* writing dirty
    /// data back (the CMO extension's discard operation).
    Inval {
        /// Any byte of the target line.
        addr: u64,
    },
    /// `FENCE RW, RW`, extended per §5.3 to also wait for all pending
    /// writebacks (the flush counter).
    Fence,
    /// Non-memory work: occupies the frontend for the given number of
    /// cycles. Used to model computation between memory operations.
    Nop {
        /// Cycles of frontend occupancy.
        cycles: u64,
    },
}

impl Op {
    /// Whether the LSU routes this op through the STQ (in-order commit-time
    /// firing): stores, AMOs, writebacks (§5.1) and fences (§3.2).
    pub fn is_stq(&self) -> bool {
        !matches!(self, Op::Load { .. } | Op::Nop { .. })
    }

    /// Stable lower-case kind name, used to key per-op-kind latency
    /// histograms and metrics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Op::Load { .. } => "load",
            Op::Store { .. } => "store",
            Op::Cas { .. } => "cas",
            Op::FetchAdd { .. } => "fetch_add",
            Op::Swap { .. } => "swap",
            Op::Clean { .. } => "clean",
            Op::Flush { .. } => "flush",
            Op::Inval { .. } => "inval",
            Op::Fence => "fence",
            Op::Nop { .. } => "nop",
        }
    }

    /// The line-relevant address, if the op touches memory.
    pub fn addr(&self) -> Option<u64> {
        match *self {
            Op::Load { addr }
            | Op::Store { addr, .. }
            | Op::Cas { addr, .. }
            | Op::FetchAdd { addr, .. }
            | Op::Swap { addr, .. }
            | Op::Clean { addr }
            | Op::Flush { addr }
            | Op::Inval { addr } => Some(addr),
            Op::Fence | Op::Nop { .. } => None,
        }
    }

    /// Lowers the op to a data-cache request kind (`None` for fences/nops,
    /// which never reach the cache).
    pub fn to_dcache(self) -> Option<DcReqKind> {
        match self {
            Op::Load { addr } => Some(DcReqKind::Load { addr }),
            Op::Store { addr, value } => Some(DcReqKind::Store { addr, value }),
            Op::Cas {
                addr,
                expected,
                new,
            } => Some(DcReqKind::Amo {
                addr,
                op: AmoOp::Cas { expected },
                operand: new,
            }),
            Op::FetchAdd { addr, operand } => Some(DcReqKind::Amo {
                addr,
                op: AmoOp::Add,
                operand,
            }),
            Op::Swap { addr, operand } => Some(DcReqKind::Amo {
                addr,
                op: AmoOp::Swap,
                operand,
            }),
            Op::Clean { addr } => Some(DcReqKind::Writeback {
                addr,
                kind: WritebackKind::Clean,
            }),
            Op::Flush { addr } => Some(DcReqKind::Writeback {
                addr,
                kind: WritebackKind::Flush,
            }),
            Op::Inval { addr } => Some(DcReqKind::Writeback {
                addr,
                kind: WritebackKind::Inval,
            }),
            Op::Fence | Op::Nop { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stq_routing() {
        assert!(!Op::Load { addr: 0 }.is_stq());
        assert!(Op::Store { addr: 0, value: 1 }.is_stq());
        assert!(Op::Clean { addr: 0 }.is_stq());
        assert!(Op::Flush { addr: 0 }.is_stq());
        assert!(Op::Fence.is_stq());
        assert!(!Op::Nop { cycles: 1 }.is_stq());
    }

    #[test]
    fn lowering() {
        assert!(Op::Fence.to_dcache().is_none());
        assert!(matches!(
            Op::Flush { addr: 64 }.to_dcache(),
            Some(DcReqKind::Writeback {
                kind: WritebackKind::Flush,
                ..
            })
        ));
        assert!(matches!(
            Op::Cas {
                addr: 8,
                expected: 1,
                new: 2
            }
            .to_dcache(),
            Some(DcReqKind::Amo {
                op: AmoOp::Cas { expected: 1 },
                operand: 2,
                ..
            })
        ));
    }
}
