//! Trace exporters: Chrome-trace-event JSON (loadable in Perfetto /
//! `chrome://tracing`) and a human-readable text dump.
//!
//! The Chrome exporter lays the merged event stream (see
//! [`System::trace_events`]) out as one process per core plus a `system`
//! process, with one track per component: LSU, L1, flush unit, each FSHR,
//! the five TileLink channels and every MSHR. Paired events — FSHR state
//! transitions, TileLink begin/end, MSHR alloc/free, fence stalls, engine
//! jumps — become duration (`"X"`) events so transaction lifecycles show as
//! spans; everything else becomes an instant (`"i"`). Timestamps are
//! simulated cycles, 1 µs per cycle in the viewer's units.

use crate::system::System;
use skipit_trace::{StreamEvent, TraceEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Track registry: maps `(pid, track name)` to a stable `tid` and renders
/// the `thread_name` metadata Perfetto uses to label tracks.
#[derive(Default)]
struct Tracks {
    tids: BTreeMap<(u64, String), u64>,
    next: BTreeMap<u64, u64>,
}

impl Tracks {
    fn tid(&mut self, pid: u64, name: &str) -> u64 {
        if let Some(&tid) = self.tids.get(&(pid, name.to_string())) {
            return tid;
        }
        let next = self.next.entry(pid).or_insert(0);
        let tid = *next;
        *next += 1;
        self.tids.insert((pid, name.to_string()), tid);
        tid
    }

    fn metadata_json(&self, cores: usize) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            r#"{{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{{"name":"system"}}}}"#
        );
        for core in 0..cores {
            let _ = write!(
                out,
                r#",{{"name":"process_name","ph":"M","pid":{},"tid":0,"args":{{"name":"core {}"}}}}"#,
                core + 1,
                core
            );
        }
        for ((pid, name), tid) in &self.tids {
            let _ = write!(
                out,
                r#",{{"name":"thread_name","ph":"M","pid":{pid},"tid":{tid},"args":{{"name":"{name}"}}}}"#
            );
        }
        out
    }
}

fn pid_of(ev: &TraceEvent) -> u64 {
    ev.core().map_or(0, |c| c as u64 + 1)
}

/// The track an *instant* event lands on (paired events get their own
/// span-specific tracks).
fn instant_track(ev: &TraceEvent) -> &'static str {
    use TraceEvent::*;
    match ev {
        FlushEnqueue { .. }
        | FlushCoalesce { .. }
        | FlushInvalidate { .. }
        | WritebackDropped { .. } => "flush unit",
        SkipBitSet { .. } | SkipBitClear { .. } => "L1",
        DramRead { .. } | DramWrite { .. } | DramWriteSkipped { .. } => "DRAM",
        _ => "system",
    }
}

/// One complete (`"X"`) Chrome trace event.
struct Span {
    pid: u64,
    track: String,
    name: String,
    start: u64,
    end: u64,
    detail: String,
}

/// Pairs the stream's begin/end event classes into [`Span`]s and returns
/// the remaining unpaired events as instants. Open spans are closed at
/// `horizon` (the current cycle), so in-flight transactions still render.
fn build_spans(events: &[StreamEvent], horizon: u64) -> (Vec<Span>, Vec<&StreamEvent>) {
    let mut spans = Vec::new();
    let mut instants = Vec::new();
    // FSHR occupancy: state entered + cycle, per (core, fshr).
    let mut fshr: BTreeMap<(usize, usize), (&'static str, u64, u64)> = BTreeMap::new();
    // TileLink: FIFO of (begin cycle, opcode, param, addr) per (channel, core).
    #[allow(clippy::type_complexity)]
    let mut tl: BTreeMap<(char, usize), Vec<(u64, &'static str, &'static str, u64)>> =
        BTreeMap::new();
    let mut l1_mshr: BTreeMap<(usize, usize), (u64, u64)> = BTreeMap::new();
    let mut l2_mshr: BTreeMap<usize, (u64, u64, &'static str)> = BTreeMap::new();
    let mut fences: BTreeMap<(usize, u64), u64> = BTreeMap::new();
    for se in events {
        match se.event {
            TraceEvent::FshrTransition {
                core,
                fshr: idx,
                addr,
                from,
                to,
            } => {
                if let Some((state, since, a)) = fshr.remove(&(core, idx)) {
                    debug_assert_eq!(state, from);
                    spans.push(Span {
                        pid: core as u64 + 1,
                        track: format!("FSHR {idx}"),
                        name: state.to_string(),
                        start: since,
                        end: se.cycle,
                        detail: format!("@{a:#x}"),
                    });
                }
                if to != "free" {
                    fshr.insert((core, idx), (to, se.cycle, addr));
                }
            }
            TraceEvent::TlBegin {
                channel,
                core,
                opcode,
                param,
                addr,
            } => {
                tl.entry((channel, core))
                    .or_default()
                    .push((se.cycle, opcode, param, addr));
            }
            TraceEvent::TlEnd { channel, core, .. } => {
                // FIFO pairing: ring-buffer eviction can drop a begin, so an
                // unmatched end degrades to an instant instead of panicking.
                let q = tl.entry((channel, core)).or_default();
                if q.is_empty() {
                    instants.push(se);
                } else {
                    let (start, opcode, param, addr) = q.remove(0);
                    spans.push(Span {
                        pid: core as u64 + 1,
                        track: format!("TL-{channel}"),
                        name: format!("{opcode}{param}"),
                        start,
                        end: se.cycle,
                        detail: format!("@{addr:#x}"),
                    });
                }
            }
            TraceEvent::L1MshrAlloc { core, slot, addr } => {
                l1_mshr.insert((core, slot), (se.cycle, addr));
            }
            TraceEvent::L1MshrFree { core, slot, addr } => match l1_mshr.remove(&(core, slot)) {
                Some((start, a)) => spans.push(Span {
                    pid: core as u64 + 1,
                    track: format!("L1 MSHR {slot}"),
                    name: "miss".to_string(),
                    start,
                    end: se.cycle,
                    detail: format!("@{a:#x}"),
                }),
                None => {
                    let _ = addr;
                    instants.push(se);
                }
            },
            TraceEvent::L2MshrAlloc { slot, addr, op } => {
                l2_mshr.insert(slot, (se.cycle, addr, op));
            }
            TraceEvent::L2MshrFree { slot, .. } => match l2_mshr.remove(&slot) {
                Some((start, a, op)) => spans.push(Span {
                    pid: 0,
                    track: format!("L2 MSHR {slot}"),
                    name: op.to_string(),
                    start,
                    end: se.cycle,
                    detail: format!("@{a:#x}"),
                }),
                None => instants.push(se),
            },
            TraceEvent::FenceStallBegin { core, token } => {
                fences.insert((core, token), se.cycle);
            }
            TraceEvent::FenceStallEnd { core, token } => match fences.remove(&(core, token)) {
                Some(start) => spans.push(Span {
                    pid: core as u64 + 1,
                    track: "fence".to_string(),
                    name: format!("fence#{token}"),
                    start,
                    end: se.cycle,
                    detail: String::new(),
                }),
                None => instants.push(se),
            },
            TraceEvent::FastForwardJump { from, to, .. } => spans.push(Span {
                pid: 0,
                track: "engine".to_string(),
                name: "jump".to_string(),
                start: from,
                end: to,
                detail: format!("{}", se.event),
            }),
            _ => instants.push(se),
        }
    }
    // Close whatever is still in flight at the horizon.
    for ((core, idx), (state, since, a)) in fshr {
        spans.push(Span {
            pid: core as u64 + 1,
            track: format!("FSHR {idx}"),
            name: state.to_string(),
            start: since,
            end: horizon,
            detail: format!("@{a:#x} (open)"),
        });
    }
    for ((channel, core), q) in tl {
        for (start, opcode, param, addr) in q {
            spans.push(Span {
                pid: core as u64 + 1,
                track: format!("TL-{channel}"),
                name: format!("{opcode}{param}"),
                start,
                end: horizon,
                detail: format!("@{addr:#x} (open)"),
            });
        }
    }
    for ((core, slot), (start, a)) in l1_mshr {
        spans.push(Span {
            pid: core as u64 + 1,
            track: format!("L1 MSHR {slot}"),
            name: "miss".to_string(),
            start,
            end: horizon,
            detail: format!("@{a:#x} (open)"),
        });
    }
    for (slot, (start, a, op)) in l2_mshr {
        spans.push(Span {
            pid: 0,
            track: format!("L2 MSHR {slot}"),
            name: op.to_string(),
            start,
            end: horizon,
            detail: format!("@{a:#x} (open)"),
        });
    }
    for ((core, token), start) in fences {
        spans.push(Span {
            pid: core as u64 + 1,
            track: "fence".to_string(),
            name: format!("fence#{token}"),
            start,
            end: horizon,
            detail: "(open)".to_string(),
        });
    }
    (spans, instants)
}

impl System {
    /// Renders the buffered event stream as Chrome-trace-event JSON: open
    /// the result in [Perfetto](https://ui.perfetto.dev) (or
    /// `chrome://tracing`) to see per-core timelines of FSHR occupancy,
    /// TileLink message lifetimes, MSHR transactions and fence stalls.
    /// One simulated cycle is one timestamp unit (displayed as 1 µs).
    pub fn export_chrome_trace(&self) -> String {
        let events = self.trace_events();
        let (spans, instants) = build_spans(&events, self.now());
        let mut tracks = Tracks::default();
        let mut body = String::new();
        for s in &spans {
            let tid = tracks.tid(s.pid, &s.track);
            let _ = write!(
                body,
                r#",{{"name":"{}","ph":"X","ts":{},"dur":{},"pid":{},"tid":{},"args":{{"detail":"{}"}}}}"#,
                s.name,
                s.start,
                s.end - s.start,
                s.pid,
                tid,
                s.detail
            );
        }
        for se in instants {
            let pid = pid_of(&se.event);
            let tid = tracks.tid(pid, instant_track(&se.event));
            let _ = write!(
                body,
                r#",{{"name":"{}","ph":"i","ts":{},"pid":{},"tid":{},"s":"t","args":{{"detail":"{}"}}}}"#,
                event_name(&se.event),
                se.cycle,
                pid,
                tid,
                se.event
            );
        }
        format!(
            r#"{{"displayTimeUnit":"ms","traceEvents":[{}{}]}}"#,
            tracks.metadata_json(self.config().cores),
            body
        )
    }

    /// Renders the buffered event stream as plain text, one
    /// `"[cycle] event"` line per event in deterministic merge order.
    pub fn export_text_trace(&self) -> String {
        let mut out = String::new();
        for se in self.trace_events() {
            let _ = writeln!(out, "[{:>8}] {}", se.cycle, se.event);
        }
        out
    }
}

/// Short instant-event label (the full rendering goes in `args.detail`).
fn event_name(ev: &TraceEvent) -> &'static str {
    use TraceEvent::*;
    match ev {
        FshrTransition { .. } => "fshr",
        FlushEnqueue { .. } => "flush enqueue",
        FlushCoalesce { .. } => "flush coalesce",
        FlushInvalidate { .. } => "flush invalidate",
        WritebackDropped { .. } => "writeback dropped",
        TlBegin { .. } => "tl begin",
        TlEnd { .. } => "tl end",
        L1MshrAlloc { .. } => "l1 mshr alloc",
        L1MshrFree { .. } => "l1 mshr free",
        L2MshrAlloc { .. } => "l2 mshr alloc",
        L2MshrFree { .. } => "l2 mshr free",
        SkipBitSet { .. } => "skip-bit set",
        SkipBitClear { .. } => "skip-bit clear",
        DramRead { .. } => "dram read",
        DramWrite { .. } => "dram write",
        DramWriteSkipped { .. } => "dram write skipped",
        FenceStallBegin { .. } => "fence begin",
        FenceStallEnd { .. } => "fence end",
        FastForwardJump { .. } => "jump",
    }
}
