//! Trace exporters: Chrome-trace-event JSON (loadable in Perfetto /
//! `chrome://tracing`) and a human-readable text dump.
//!
//! The Chrome exporter lays the merged event stream (see
//! [`System::trace_events`]) out as one process per core plus a `system`
//! process, with one track per component: LSU, L1, flush unit, each FSHR,
//! the five TileLink channels and every MSHR. Paired events — FSHR state
//! transitions, TileLink begin/end, MSHR alloc/free, fence stalls, engine
//! jumps — become duration (`"X"`) events so transaction lifecycles show as
//! spans; everything else becomes an instant (`"i"`). When telemetry
//! sampling is installed ([`skipit_trace::TraceConfig::telemetry`]), every
//! buffered sample additionally renders as counter (`"C"`) tracks — per-core
//! ops, MSHR/FSHR occupancy, flush-queue depth, skip/enqueue mix and
//! TileLink beats, plus system-wide L2 occupancy and DRAM line traffic — so
//! the time series plot directly above the event timelines. Timestamps are
//! simulated cycles, 1 µs per cycle in the viewer's units.
//!
//! The JSON renderer is deliberately hand-rolled: one output `String`
//! preallocated from the event count, integers appended without going
//! through `core::fmt`, and tracks keyed by a small copyable enum so the
//! per-event tid lookup allocates nothing. The original `format!`-per-event
//! renderer survives in the test module as the reference implementation;
//! `fast_export_matches_reference_byte_for_byte` pins the two to identical
//! output.

use crate::system::System;
use skipit_trace::{StreamEvent, TraceEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Appends `v` in decimal without going through `core::fmt`.
fn push_u64(out: &mut String, mut v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("decimal digits are ASCII"));
}

/// Appends `v` the way `{:#x}` renders it (`0x` prefix, lower-case hex)
/// without going through `core::fmt`.
fn push_hex(out: &mut String, v: u64) {
    out.push_str("0x");
    let mut buf = [0u8; 16];
    let mut i = buf.len();
    let mut v = v;
    loop {
        i -= 1;
        buf[i] = b"0123456789abcdef"[(v & 0xf) as usize];
        v >>= 4;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("hex digits are ASCII"));
}

/// Identity of one exporter track, copyable and comparable so the per-event
/// `(pid, track) -> tid` lookup needs no owned strings. Rendered to the
/// human-readable track name only once, on first registration.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum TrackKey {
    /// Fixed-name tracks: "flush unit", "L1", "DRAM", "system", "engine",
    /// "fence".
    Named(&'static str),
    Fshr(usize),
    Tl(char),
    L1Mshr(usize),
    L2Mshr(usize),
}

impl TrackKey {
    fn render(self) -> String {
        match self {
            TrackKey::Named(n) => n.to_string(),
            TrackKey::Fshr(i) => format!("FSHR {i}"),
            TrackKey::Tl(c) => format!("TL-{c}"),
            TrackKey::L1Mshr(i) => format!("L1 MSHR {i}"),
            TrackKey::L2Mshr(i) => format!("L2 MSHR {i}"),
        }
    }
}

/// Track registry: maps `(pid, track)` to a stable `tid` and renders the
/// `thread_name` metadata Perfetto uses to label tracks.
#[derive(Default)]
struct Tracks {
    tids: BTreeMap<(u64, TrackKey), u64>,
    next: BTreeMap<u64, u64>,
    /// `(pid, rendered name, tid)` in registration order; sorted by
    /// `(pid, name)` at metadata time (the order the reference
    /// implementation's name-keyed map iterates in).
    names: Vec<(u64, String, u64)>,
}

impl Tracks {
    fn tid(&mut self, pid: u64, key: TrackKey) -> u64 {
        if let Some(&tid) = self.tids.get(&(pid, key)) {
            return tid;
        }
        let next = self.next.entry(pid).or_insert(0);
        let tid = *next;
        *next += 1;
        self.tids.insert((pid, key), tid);
        self.names.push((pid, key.render(), tid));
        tid
    }

    fn metadata_json(&self, cores: usize, out: &mut String) {
        out.push_str(
            r#"{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"system"}}"#,
        );
        for core in 0..cores {
            out.push_str(r#",{"name":"process_name","ph":"M","pid":"#);
            push_u64(out, core as u64 + 1);
            out.push_str(r#","tid":0,"args":{"name":"core "#);
            push_u64(out, core as u64);
            out.push_str("\"}}");
        }
        let mut names: Vec<&(u64, String, u64)> = self.names.iter().collect();
        names.sort_by_key(|(pid, name, _)| (*pid, name.as_str()));
        for (pid, name, tid) in names {
            out.push_str(r#",{"name":"thread_name","ph":"M","pid":"#);
            push_u64(out, *pid);
            out.push_str(r#","tid":"#);
            push_u64(out, *tid);
            out.push_str(r#","args":{"name":""#);
            out.push_str(name);
            out.push_str("\"}}");
        }
    }
}

fn pid_of(ev: &TraceEvent) -> u64 {
    ev.core().map_or(0, |c| c as u64 + 1)
}

/// Appends one counter (`"C"`) event. Counter tracks are keyed by
/// `(pid, name)` — no tid — and `args` holds one or more series rendered
/// stacked in the viewer.
fn push_counter(body: &mut String, name: &str, ts: u64, pid: u64, args: &[(&str, u64)]) {
    body.push_str(r#",{"name":""#);
    body.push_str(name);
    body.push_str(r#"","ph":"C","ts":"#);
    push_u64(body, ts);
    body.push_str(r#","pid":"#);
    push_u64(body, pid);
    body.push_str(r#","args":{"#);
    for (k, (key, v)) in args.iter().enumerate() {
        if k > 0 {
            body.push(',');
        }
        body.push('"');
        body.push_str(key);
        body.push_str("\":");
        push_u64(body, *v);
    }
    body.push_str("}}");
}

/// Appends the telemetry samples as counter tracks (shared series layout
/// of the fast renderer; the reference implementation in the test module
/// mirrors it with `format!`).
fn push_counter_tracks(body: &mut String, tel: &skipit_trace::Telemetry) {
    for s in tel.samples() {
        for (i, c) in s.cores.iter().enumerate() {
            let pid = i as u64 + 1;
            push_counter(body, "core ops", s.cycle, pid, &[("ops", c.ops)]);
            push_counter(
                body,
                "L1 MSHR",
                s.cycle,
                pid,
                &[("occupancy", c.mshr_occupancy)],
            );
            push_counter(
                body,
                "FSHR",
                s.cycle,
                pid,
                &[("occupancy", c.fshr_occupancy)],
            );
            push_counter(
                body,
                "flush queue",
                s.cycle,
                pid,
                &[("depth", c.flush_queue_depth)],
            );
            push_counter(
                body,
                "skip",
                s.cycle,
                pid,
                &[("skipped", c.skips), ("enqueued", c.enqueued)],
            );
            push_counter(
                body,
                "TL beats",
                s.cycle,
                pid,
                &[
                    ("A", c.link_beats[0]),
                    ("B", c.link_beats[1]),
                    ("C", c.link_beats[2]),
                    ("D", c.link_beats[3]),
                    ("E", c.link_beats[4]),
                ],
            );
        }
        push_counter(
            body,
            "L2 MSHR",
            s.cycle,
            0,
            &[("occupancy", s.l2_mshr_occupancy)],
        );
        push_counter(
            body,
            "DRAM lines",
            s.cycle,
            0,
            &[("reads", s.dram_reads), ("writes", s.dram_writes)],
        );
    }
}

/// The track an *instant* event lands on (paired events get their own
/// span-specific tracks).
fn instant_track(ev: &TraceEvent) -> &'static str {
    use TraceEvent::*;
    match ev {
        FlushEnqueue { .. }
        | FlushCoalesce { .. }
        | FlushInvalidate { .. }
        | WritebackDropped { .. } => "flush unit",
        SkipBitSet { .. } | SkipBitClear { .. } => "L1",
        DramRead { .. } | DramWrite { .. } | DramWriteSkipped { .. } => "DRAM",
        _ => "system",
    }
}

/// Span label, kept symbolic until rendering.
enum SpanName {
    Str(&'static str),
    /// TileLink spans: opcode immediately followed by param.
    Opcode(&'static str, &'static str),
    /// `fence#<token>`.
    Fence(u64),
}

impl SpanName {
    fn push(&self, out: &mut String) {
        match self {
            SpanName::Str(s) => out.push_str(s),
            SpanName::Opcode(op, param) => {
                out.push_str(op);
                out.push_str(param);
            }
            SpanName::Fence(token) => {
                out.push_str("fence#");
                push_u64(out, *token);
            }
        }
    }
}

/// Span `args.detail` payload, kept symbolic until rendering.
enum Detail {
    Empty,
    /// `@0x<addr>`.
    Addr(u64),
    /// `@0x<addr> (open)` — still in flight at the horizon.
    AddrOpen(u64),
    /// `(open)`.
    Open,
    /// Pre-rendered text (rare: engine jumps).
    Owned(String),
}

impl Detail {
    fn push(&self, out: &mut String) {
        match self {
            Detail::Empty => {}
            Detail::Addr(a) => {
                out.push('@');
                push_hex(out, *a);
            }
            Detail::AddrOpen(a) => {
                out.push('@');
                push_hex(out, *a);
                out.push_str(" (open)");
            }
            Detail::Open => out.push_str("(open)"),
            Detail::Owned(s) => out.push_str(s),
        }
    }
}

/// One complete (`"X"`) Chrome trace event.
struct Span {
    pid: u64,
    track: TrackKey,
    name: SpanName,
    start: u64,
    end: u64,
    detail: Detail,
}

/// Pairs the stream's begin/end event classes into [`Span`]s and returns
/// the remaining unpaired events as instants. Open spans are closed at
/// `horizon` (the current cycle), so in-flight transactions still render.
fn build_spans(events: &[StreamEvent], horizon: u64) -> (Vec<Span>, Vec<&StreamEvent>) {
    let mut spans = Vec::new();
    let mut instants = Vec::new();
    // FSHR occupancy: state entered + cycle, per (core, fshr).
    let mut fshr: BTreeMap<(usize, usize), (&'static str, u64, u64)> = BTreeMap::new();
    // TileLink: FIFO of (begin cycle, opcode, param, addr) per (channel, core).
    #[allow(clippy::type_complexity)]
    let mut tl: BTreeMap<(char, usize), Vec<(u64, &'static str, &'static str, u64)>> =
        BTreeMap::new();
    let mut l1_mshr: BTreeMap<(usize, usize), (u64, u64)> = BTreeMap::new();
    let mut l2_mshr: BTreeMap<usize, (u64, u64, &'static str)> = BTreeMap::new();
    let mut fences: BTreeMap<(usize, u64), u64> = BTreeMap::new();
    for se in events {
        match se.event {
            TraceEvent::FshrTransition {
                core,
                fshr: idx,
                addr,
                from,
                to,
            } => {
                if let Some((state, since, a)) = fshr.remove(&(core, idx)) {
                    debug_assert_eq!(state, from);
                    spans.push(Span {
                        pid: core as u64 + 1,
                        track: TrackKey::Fshr(idx),
                        name: SpanName::Str(state),
                        start: since,
                        end: se.cycle,
                        detail: Detail::Addr(a),
                    });
                }
                if to != "free" {
                    fshr.insert((core, idx), (to, se.cycle, addr));
                }
            }
            TraceEvent::TlBegin {
                channel,
                core,
                opcode,
                param,
                addr,
            } => {
                tl.entry((channel, core))
                    .or_default()
                    .push((se.cycle, opcode, param, addr));
            }
            TraceEvent::TlEnd { channel, core, .. } => {
                // FIFO pairing: ring-buffer eviction can drop a begin, so an
                // unmatched end degrades to an instant instead of panicking.
                let q = tl.entry((channel, core)).or_default();
                if q.is_empty() {
                    instants.push(se);
                } else {
                    let (start, opcode, param, addr) = q.remove(0);
                    spans.push(Span {
                        pid: core as u64 + 1,
                        track: TrackKey::Tl(channel),
                        name: SpanName::Opcode(opcode, param),
                        start,
                        end: se.cycle,
                        detail: Detail::Addr(addr),
                    });
                }
            }
            TraceEvent::L1MshrAlloc { core, slot, addr } => {
                l1_mshr.insert((core, slot), (se.cycle, addr));
            }
            TraceEvent::L1MshrFree { core, slot, addr } => match l1_mshr.remove(&(core, slot)) {
                Some((start, a)) => spans.push(Span {
                    pid: core as u64 + 1,
                    track: TrackKey::L1Mshr(slot),
                    name: SpanName::Str("miss"),
                    start,
                    end: se.cycle,
                    detail: Detail::Addr(a),
                }),
                None => {
                    let _ = addr;
                    instants.push(se);
                }
            },
            TraceEvent::L2MshrAlloc { slot, addr, op } => {
                l2_mshr.insert(slot, (se.cycle, addr, op));
            }
            TraceEvent::L2MshrFree { slot, .. } => match l2_mshr.remove(&slot) {
                Some((start, a, op)) => spans.push(Span {
                    pid: 0,
                    track: TrackKey::L2Mshr(slot),
                    name: SpanName::Str(op),
                    start,
                    end: se.cycle,
                    detail: Detail::Addr(a),
                }),
                None => instants.push(se),
            },
            TraceEvent::FenceStallBegin { core, token } => {
                fences.insert((core, token), se.cycle);
            }
            TraceEvent::FenceStallEnd { core, token } => match fences.remove(&(core, token)) {
                Some(start) => spans.push(Span {
                    pid: core as u64 + 1,
                    track: TrackKey::Named("fence"),
                    name: SpanName::Fence(token),
                    start,
                    end: se.cycle,
                    detail: Detail::Empty,
                }),
                None => instants.push(se),
            },
            TraceEvent::FastForwardJump { from, to, .. } => spans.push(Span {
                pid: 0,
                track: TrackKey::Named("engine"),
                name: SpanName::Str("jump"),
                start: from,
                end: to,
                detail: Detail::Owned(format!("{}", se.event)),
            }),
            _ => instants.push(se),
        }
    }
    // Close whatever is still in flight at the horizon.
    for ((core, idx), (state, since, a)) in fshr {
        spans.push(Span {
            pid: core as u64 + 1,
            track: TrackKey::Fshr(idx),
            name: SpanName::Str(state),
            start: since,
            end: horizon,
            detail: Detail::AddrOpen(a),
        });
    }
    for ((channel, core), q) in tl {
        for (start, opcode, param, addr) in q {
            spans.push(Span {
                pid: core as u64 + 1,
                track: TrackKey::Tl(channel),
                name: SpanName::Opcode(opcode, param),
                start,
                end: horizon,
                detail: Detail::AddrOpen(addr),
            });
        }
    }
    for ((core, slot), (start, a)) in l1_mshr {
        spans.push(Span {
            pid: core as u64 + 1,
            track: TrackKey::L1Mshr(slot),
            name: SpanName::Str("miss"),
            start,
            end: horizon,
            detail: Detail::AddrOpen(a),
        });
    }
    for (slot, (start, a, op)) in l2_mshr {
        spans.push(Span {
            pid: 0,
            track: TrackKey::L2Mshr(slot),
            name: SpanName::Str(op),
            start,
            end: horizon,
            detail: Detail::AddrOpen(a),
        });
    }
    for ((core, token), start) in fences {
        spans.push(Span {
            pid: core as u64 + 1,
            track: TrackKey::Named("fence"),
            name: SpanName::Fence(token),
            start,
            end: horizon,
            detail: Detail::Open,
        });
    }
    (spans, instants)
}

impl System {
    /// Renders the buffered event stream as Chrome-trace-event JSON: open
    /// the result in [Perfetto](https://ui.perfetto.dev) (or
    /// `chrome://tracing`) to see per-core timelines of FSHR occupancy,
    /// TileLink message lifetimes, MSHR transactions and fence stalls.
    /// One simulated cycle is one timestamp unit (displayed as 1 µs).
    pub fn export_chrome_trace(&self) -> String {
        let events = self.trace_events();
        let (spans, instants) = build_spans(&events, self.now());
        let mut tracks = Tracks::default();
        // ~120 bytes per rendered event plus headroom for metadata; one
        // allocation up front instead of repeated growth.
        let mut body = String::with_capacity(events.len() * 128 + 4096);
        for s in &spans {
            let tid = tracks.tid(s.pid, s.track);
            body.push_str(r#",{"name":""#);
            s.name.push(&mut body);
            body.push_str(r#"","ph":"X","ts":"#);
            push_u64(&mut body, s.start);
            body.push_str(r#","dur":"#);
            push_u64(&mut body, s.end - s.start);
            body.push_str(r#","pid":"#);
            push_u64(&mut body, s.pid);
            body.push_str(r#","tid":"#);
            push_u64(&mut body, tid);
            body.push_str(r#","args":{"detail":""#);
            s.detail.push(&mut body);
            body.push_str("\"}}");
        }
        for se in instants {
            let pid = pid_of(&se.event);
            let tid = tracks.tid(pid, TrackKey::Named(instant_track(&se.event)));
            body.push_str(r#",{"name":""#);
            body.push_str(event_name(&se.event));
            body.push_str(r#"","ph":"i","ts":"#);
            push_u64(&mut body, se.cycle);
            body.push_str(r#","pid":"#);
            push_u64(&mut body, pid);
            body.push_str(r#","tid":"#);
            push_u64(&mut body, tid);
            body.push_str(r#","s":"t","args":{"detail":""#);
            // The instant detail is the event's Display rendering; that impl
            // stays the single source of truth for event text.
            let _ = write!(body, "{}", se.event);
            body.push_str("\"}}");
        }
        if let Some(tel) = self.telemetry() {
            push_counter_tracks(&mut body, tel);
        }
        let mut out = String::with_capacity(body.len() + 96 * (tracks.names.len() + 8) + 64);
        out.push_str(r#"{"displayTimeUnit":"ms","traceEvents":["#);
        tracks.metadata_json(self.config().cores, &mut out);
        out.push_str(&body);
        out.push_str("]}");
        out
    }

    /// Renders the buffered event stream as plain text, one
    /// `"[cycle] event"` line per event in deterministic merge order.
    pub fn export_text_trace(&self) -> String {
        let mut out = String::new();
        for se in self.trace_events() {
            let _ = writeln!(out, "[{:>8}] {}", se.cycle, se.event);
        }
        out
    }
}

/// Short instant-event label (the full rendering goes in `args.detail`).
fn event_name(ev: &TraceEvent) -> &'static str {
    use TraceEvent::*;
    match ev {
        FshrTransition { .. } => "fshr",
        FlushEnqueue { .. } => "flush enqueue",
        FlushCoalesce { .. } => "flush coalesce",
        FlushInvalidate { .. } => "flush invalidate",
        WritebackDropped { .. } => "writeback dropped",
        TlBegin { .. } => "tl begin",
        TlEnd { .. } => "tl end",
        L1MshrAlloc { .. } => "l1 mshr alloc",
        L1MshrFree { .. } => "l1 mshr free",
        L2MshrAlloc { .. } => "l2 mshr alloc",
        L2MshrFree { .. } => "l2 mshr free",
        SkipBitSet { .. } => "skip-bit set",
        SkipBitClear { .. } => "skip-bit clear",
        DramRead { .. } => "dram read",
        DramWrite { .. } => "dram write",
        DramWriteSkipped { .. } => "dram write skipped",
        FenceStallBegin { .. } => "fence begin",
        FenceStallEnd { .. } => "fence end",
        FastForwardJump { .. } => "jump",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;
    use crate::workload::Programs;
    use crate::Op;

    /// The original `format!`-per-event exporter, kept verbatim as the
    /// reference the fast renderer must match byte for byte.
    mod reference {
        use super::super::{event_name, instant_track, pid_of, System};
        use skipit_trace::{StreamEvent, TraceEvent};
        use std::collections::BTreeMap;
        use std::fmt::Write as _;

        #[derive(Default)]
        struct Tracks {
            tids: BTreeMap<(u64, String), u64>,
            next: BTreeMap<u64, u64>,
        }

        impl Tracks {
            fn tid(&mut self, pid: u64, name: &str) -> u64 {
                if let Some(&tid) = self.tids.get(&(pid, name.to_string())) {
                    return tid;
                }
                let next = self.next.entry(pid).or_insert(0);
                let tid = *next;
                *next += 1;
                self.tids.insert((pid, name.to_string()), tid);
                tid
            }

            fn metadata_json(&self, cores: usize) -> String {
                let mut out = String::new();
                let _ = write!(
                    out,
                    r#"{{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{{"name":"system"}}}}"#
                );
                for core in 0..cores {
                    let _ = write!(
                        out,
                        r#",{{"name":"process_name","ph":"M","pid":{},"tid":0,"args":{{"name":"core {}"}}}}"#,
                        core + 1,
                        core
                    );
                }
                for ((pid, name), tid) in &self.tids {
                    let _ = write!(
                        out,
                        r#",{{"name":"thread_name","ph":"M","pid":{pid},"tid":{tid},"args":{{"name":"{name}"}}}}"#
                    );
                }
                out
            }
        }

        struct Span {
            pid: u64,
            track: String,
            name: String,
            start: u64,
            end: u64,
            detail: String,
        }

        fn build_spans(events: &[StreamEvent], horizon: u64) -> (Vec<Span>, Vec<&StreamEvent>) {
            let mut spans = Vec::new();
            let mut instants = Vec::new();
            let mut fshr: BTreeMap<(usize, usize), (&'static str, u64, u64)> = BTreeMap::new();
            #[allow(clippy::type_complexity)]
            let mut tl: BTreeMap<
                (char, usize),
                Vec<(u64, &'static str, &'static str, u64)>,
            > = BTreeMap::new();
            let mut l1_mshr: BTreeMap<(usize, usize), (u64, u64)> = BTreeMap::new();
            let mut l2_mshr: BTreeMap<usize, (u64, u64, &'static str)> = BTreeMap::new();
            let mut fences: BTreeMap<(usize, u64), u64> = BTreeMap::new();
            for se in events {
                match se.event {
                    TraceEvent::FshrTransition {
                        core,
                        fshr: idx,
                        addr,
                        from,
                        to,
                    } => {
                        if let Some((state, since, a)) = fshr.remove(&(core, idx)) {
                            debug_assert_eq!(state, from);
                            spans.push(Span {
                                pid: core as u64 + 1,
                                track: format!("FSHR {idx}"),
                                name: state.to_string(),
                                start: since,
                                end: se.cycle,
                                detail: format!("@{a:#x}"),
                            });
                        }
                        if to != "free" {
                            fshr.insert((core, idx), (to, se.cycle, addr));
                        }
                    }
                    TraceEvent::TlBegin {
                        channel,
                        core,
                        opcode,
                        param,
                        addr,
                    } => {
                        tl.entry((channel, core))
                            .or_default()
                            .push((se.cycle, opcode, param, addr));
                    }
                    TraceEvent::TlEnd { channel, core, .. } => {
                        let q = tl.entry((channel, core)).or_default();
                        if q.is_empty() {
                            instants.push(se);
                        } else {
                            let (start, opcode, param, addr) = q.remove(0);
                            spans.push(Span {
                                pid: core as u64 + 1,
                                track: format!("TL-{channel}"),
                                name: format!("{opcode}{param}"),
                                start,
                                end: se.cycle,
                                detail: format!("@{addr:#x}"),
                            });
                        }
                    }
                    TraceEvent::L1MshrAlloc { core, slot, addr } => {
                        l1_mshr.insert((core, slot), (se.cycle, addr));
                    }
                    TraceEvent::L1MshrFree { core, slot, addr } => {
                        match l1_mshr.remove(&(core, slot)) {
                            Some((start, a)) => spans.push(Span {
                                pid: core as u64 + 1,
                                track: format!("L1 MSHR {slot}"),
                                name: "miss".to_string(),
                                start,
                                end: se.cycle,
                                detail: format!("@{a:#x}"),
                            }),
                            None => {
                                let _ = addr;
                                instants.push(se);
                            }
                        }
                    }
                    TraceEvent::L2MshrAlloc { slot, addr, op } => {
                        l2_mshr.insert(slot, (se.cycle, addr, op));
                    }
                    TraceEvent::L2MshrFree { slot, .. } => match l2_mshr.remove(&slot) {
                        Some((start, a, op)) => spans.push(Span {
                            pid: 0,
                            track: format!("L2 MSHR {slot}"),
                            name: op.to_string(),
                            start,
                            end: se.cycle,
                            detail: format!("@{a:#x}"),
                        }),
                        None => instants.push(se),
                    },
                    TraceEvent::FenceStallBegin { core, token } => {
                        fences.insert((core, token), se.cycle);
                    }
                    TraceEvent::FenceStallEnd { core, token } => {
                        match fences.remove(&(core, token)) {
                            Some(start) => spans.push(Span {
                                pid: core as u64 + 1,
                                track: "fence".to_string(),
                                name: format!("fence#{token}"),
                                start,
                                end: se.cycle,
                                detail: String::new(),
                            }),
                            None => instants.push(se),
                        }
                    }
                    TraceEvent::FastForwardJump { from, to, .. } => spans.push(Span {
                        pid: 0,
                        track: "engine".to_string(),
                        name: "jump".to_string(),
                        start: from,
                        end: to,
                        detail: format!("{}", se.event),
                    }),
                    _ => instants.push(se),
                }
            }
            for ((core, idx), (state, since, a)) in fshr {
                spans.push(Span {
                    pid: core as u64 + 1,
                    track: format!("FSHR {idx}"),
                    name: state.to_string(),
                    start: since,
                    end: horizon,
                    detail: format!("@{a:#x} (open)"),
                });
            }
            for ((channel, core), q) in tl {
                for (start, opcode, param, addr) in q {
                    spans.push(Span {
                        pid: core as u64 + 1,
                        track: format!("TL-{channel}"),
                        name: format!("{opcode}{param}"),
                        start,
                        end: horizon,
                        detail: format!("@{addr:#x} (open)"),
                    });
                }
            }
            for ((core, slot), (start, a)) in l1_mshr {
                spans.push(Span {
                    pid: core as u64 + 1,
                    track: format!("L1 MSHR {slot}"),
                    name: "miss".to_string(),
                    start,
                    end: horizon,
                    detail: format!("@{a:#x} (open)"),
                });
            }
            for (slot, (start, a, op)) in l2_mshr {
                spans.push(Span {
                    pid: 0,
                    track: format!("L2 MSHR {slot}"),
                    name: op.to_string(),
                    start,
                    end: horizon,
                    detail: format!("@{a:#x} (open)"),
                });
            }
            for ((core, token), start) in fences {
                spans.push(Span {
                    pid: core as u64 + 1,
                    track: "fence".to_string(),
                    name: format!("fence#{token}"),
                    start,
                    end: horizon,
                    detail: "(open)".to_string(),
                });
            }
            (spans, instants)
        }

        pub fn export_chrome_trace(sys: &System) -> String {
            let events = sys.trace_events();
            let (spans, instants) = build_spans(&events, sys.now());
            let mut tracks = Tracks::default();
            let mut body = String::new();
            for s in &spans {
                let tid = tracks.tid(s.pid, &s.track);
                let _ = write!(
                    body,
                    r#",{{"name":"{}","ph":"X","ts":{},"dur":{},"pid":{},"tid":{},"args":{{"detail":"{}"}}}}"#,
                    s.name,
                    s.start,
                    s.end - s.start,
                    s.pid,
                    tid,
                    s.detail
                );
            }
            for se in instants {
                let pid = pid_of(&se.event);
                let tid = tracks.tid(pid, instant_track(&se.event));
                let _ = write!(
                    body,
                    r#",{{"name":"{}","ph":"i","ts":{},"pid":{},"tid":{},"s":"t","args":{{"detail":"{}"}}}}"#,
                    event_name(&se.event),
                    se.cycle,
                    pid,
                    tid,
                    se.event
                );
            }
            if let Some(tel) = sys.telemetry() {
                let counter = |body: &mut String, name: &str, ts: u64, pid: u64, args: String| {
                    let _ = write!(
                        body,
                        r#",{{"name":"{name}","ph":"C","ts":{ts},"pid":{pid},"args":{{{args}}}}}"#
                    );
                };
                for s in tel.samples() {
                    for (i, c) in s.cores.iter().enumerate() {
                        let pid = i as u64 + 1;
                        counter(
                            &mut body,
                            "core ops",
                            s.cycle,
                            pid,
                            format!(r#""ops":{}"#, c.ops),
                        );
                        counter(
                            &mut body,
                            "L1 MSHR",
                            s.cycle,
                            pid,
                            format!(r#""occupancy":{}"#, c.mshr_occupancy),
                        );
                        counter(
                            &mut body,
                            "FSHR",
                            s.cycle,
                            pid,
                            format!(r#""occupancy":{}"#, c.fshr_occupancy),
                        );
                        counter(
                            &mut body,
                            "flush queue",
                            s.cycle,
                            pid,
                            format!(r#""depth":{}"#, c.flush_queue_depth),
                        );
                        counter(
                            &mut body,
                            "skip",
                            s.cycle,
                            pid,
                            format!(r#""skipped":{},"enqueued":{}"#, c.skips, c.enqueued),
                        );
                        counter(
                            &mut body,
                            "TL beats",
                            s.cycle,
                            pid,
                            format!(
                                r#""A":{},"B":{},"C":{},"D":{},"E":{}"#,
                                c.link_beats[0],
                                c.link_beats[1],
                                c.link_beats[2],
                                c.link_beats[3],
                                c.link_beats[4]
                            ),
                        );
                    }
                    counter(
                        &mut body,
                        "L2 MSHR",
                        s.cycle,
                        0,
                        format!(r#""occupancy":{}"#, s.l2_mshr_occupancy),
                    );
                    counter(
                        &mut body,
                        "DRAM lines",
                        s.cycle,
                        0,
                        format!(r#""reads":{},"writes":{}"#, s.dram_reads, s.dram_writes),
                    );
                }
            }
            format!(
                r#"{{"displayTimeUnit":"ms","traceEvents":[{}{}]}}"#,
                tracks.metadata_json(sys.config().cores),
                body
            )
        }
    }

    #[test]
    fn integer_fast_paths_match_core_fmt() {
        for v in [0u64, 1, 9, 10, 99, 100, 0xdead_beef, u64::MAX] {
            let mut dec = String::new();
            push_u64(&mut dec, v);
            assert_eq!(dec, format!("{v}"));
            let mut hex = String::new();
            push_hex(&mut hex, v);
            assert_eq!(hex, format!("{v:#x}"));
        }
    }

    /// The rewritten exporter must reproduce the reference renderer's
    /// output byte for byte, on a trace exercising every span class (FSHR,
    /// TileLink, both MSHR levels, fences, engine jumps) plus instants,
    /// open spans, and telemetry counter tracks.
    #[test]
    fn fast_export_matches_reference_byte_for_byte() {
        let mut sys = System::new(SystemConfig {
            cores: 2,
            ..SystemConfig::default()
        });
        sys.set_trace(
            skipit_trace::TraceConfig::new()
                .events(1 << 14)
                .telemetry(64),
        );
        let mut programs: Vec<Vec<Op>> = Vec::new();
        for core in 0..2u64 {
            let mut p = Vec::new();
            for i in 0..8 {
                let addr = 0x4_0000 + core * 0x1_0000 + i * 64;
                p.push(Op::Store { addr, value: i });
                p.push(Op::Flush { addr });
            }
            p.push(Op::Fence);
            programs.push(p);
        }
        sys.run(Programs(programs));
        let fast = sys.export_chrome_trace();
        let slow = reference::export_chrome_trace(&sys);
        assert!(
            sys.trace_events()
                .iter()
                .any(|se| matches!(se.event, TraceEvent::FastForwardJump { .. })),
            "workload must exercise engine-jump spans"
        );
        assert!(
            fast.contains(r#""ph":"C""#),
            "workload must exercise telemetry counter tracks"
        );
        assert_eq!(
            fast.len(),
            slow.len(),
            "fast/reference export lengths diverge"
        );
        assert_eq!(fast, slow, "fast export diverges from reference renderer");
    }
}
