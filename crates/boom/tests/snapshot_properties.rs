//! Property-based tests of the full-system snapshot (DESIGN.md §11):
//! for arbitrary 2-core programs, a mid-run snapshot restores to a system
//! that is bit-identical going forward — same digests, cycles, statistics
//! and durable image — on every engine, and survives adversarial
//! perturbation with the jitter-draw counters intact. Corrupt inputs
//! decode to typed errors, never panics.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use skipit_boom::{EngineKind, Op, Programs, Snapshot, SnapshotError, System, SystemConfig};
use skipit_tilelink::PerturbConfig;

/// A small address pool keeps cores contending on the same lines.
fn arb_op() -> impl Strategy<Value = Op> {
    let addr = || (0u64..24).prop_map(|i| 0x4_0000 + i * 8);
    let line = || (0u64..24).prop_map(|i| 0x4_0000 + (i / 8) * 64);
    prop_oneof![
        addr().prop_map(|addr| Op::Load { addr }),
        (addr(), 1u64..100).prop_map(|(addr, value)| Op::Store { addr, value }),
        (addr(), 0u64..4, 1u64..4).prop_map(|(addr, expected, new)| Op::Cas {
            addr,
            expected,
            new
        }),
        (addr(), 1u64..10).prop_map(|(addr, operand)| Op::FetchAdd { addr, operand }),
        (addr(), 1u64..10).prop_map(|(addr, operand)| Op::Swap { addr, operand }),
        line().prop_map(|addr| Op::Clean { addr }),
        line().prop_map(|addr| Op::Flush { addr }),
        line().prop_map(|addr| Op::Inval { addr }),
        Just(Op::Fence),
        (1u64..30).prop_map(|cycles| Op::Nop { cycles }),
    ]
}

fn arb_programs() -> impl Strategy<Value = Vec<Vec<Op>>> {
    prop::collection::vec(prop::collection::vec(arb_op(), 1..24), 2)
}

const ENGINES: [EngineKind; 4] = [
    EngineKind::Naive,
    EngineKind::GlobalGate,
    EngineKind::ComponentWheel,
    EngineKind::ParallelWheel,
];

/// Runs `programs` under `cfg`, snapshotting at the first observed cycle
/// `>= at`; restores the snapshot under `cfg` and resumes; checks the
/// resumed run reaches the reference's exact final state. Returns `false`
/// if the run finished before `at` (no mid-run boundary to snapshot).
fn check_roundtrip(
    cfg: SystemConfig,
    programs: Vec<Vec<Op>>,
    at: u64,
) -> Result<bool, TestCaseError> {
    let mut reference = System::new(cfg);
    let ref_cycles = reference.run(Programs(programs.clone())).cycles;

    let mut s = System::new(cfg);
    let mut snap: Option<Snapshot> = None;
    s.run_programs_observed(programs, |sys| {
        if sys.now() >= at && snap.is_none() {
            snap = Some(sys.snapshot().expect("program-mode snapshot"));
        }
        Ok::<(), std::convert::Infallible>(())
    })
    .unwrap();
    let Some(snap) = snap else {
        return Ok(false); // run ended before `at`
    };

    // The snapshot must survive a byte-level round trip.
    let snap = Snapshot::from_bytes(snap.as_bytes().to_vec()).unwrap();

    let mut resumed = System::restore(&snap, &cfg).unwrap();
    let at_restore = resumed.now();
    prop_assert_eq!(
        resumed.state_digest(),
        System::restore(&snap, &cfg).unwrap().state_digest(),
        "restore is deterministic"
    );
    let tail = resumed.resume_programs();
    prop_assert_eq!(at_restore + tail, ref_cycles, "cycle counts agree");
    prop_assert_eq!(
        resumed.state_digest(),
        reference.state_digest(),
        "final digests agree"
    );
    prop_assert_eq!(resumed.stats(), reference.stats(), "stats agree");
    prop_assert_eq!(
        format!("{:?}", resumed.durable_image()),
        format!("{:?}", reference.durable_image()),
        "durable images agree"
    );
    Ok(true)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16 })]

    /// Snapshot → restore → resume is bit-identical on all four engines.
    #[test]
    fn mid_run_roundtrip_on_every_engine(
        programs in arb_programs(),
        at in 10u64..120,
    ) {
        for engine in ENGINES {
            let cfg = SystemConfig {
                cores: 2,
                engine,
                engine_threads: 2,
                ..SystemConfig::default()
            };
            check_roundtrip(cfg, programs.clone(), at)?;
        }
    }

    /// Under adversarial perturbation the jitter-draw counters (link
    /// pushes, flush dispatch sequence, L2 allocation sequence) are part
    /// of the snapshot, so a resumed run draws the exact jitter sequence
    /// the uninterrupted run would have seen.
    #[test]
    fn mid_run_roundtrip_survives_perturbation(
        programs in arb_programs(),
        at in 10u64..120,
        seed in 0u64..1000,
    ) {
        let cfg = SystemConfig {
            cores: 2,
            perturb: PerturbConfig::exploring(seed),
            ..SystemConfig::default()
        };
        check_roundtrip(cfg, programs, at)?;
    }

    /// Arbitrary corruption of a valid snapshot decodes to a typed error
    /// (or restores cleanly, if the flip lands in a byte whose meaning is
    /// unchanged) — never a panic, never an out-of-bounds allocation.
    #[test]
    fn corrupted_snapshots_fail_typed(
        flip_pos in 0u64..10_000,
        flip_bits in 1u64..256,
        truncate in any::<bool>(),
    ) {
        let cfg = SystemConfig { cores: 2, ..SystemConfig::default() };
        let mut s = System::new(cfg);
        s.run(Programs(vec![
            vec![Op::Store { addr: 0x4000, value: 1 }, Op::Flush { addr: 0x4000 }],
            vec![Op::Load { addr: 0x4000 }],
        ]));
        let mut bytes = s.snapshot().unwrap().into_bytes();
        let idx = (flip_pos as usize) % bytes.len();
        if truncate {
            bytes.truncate(idx);
        } else {
            bytes[idx] ^= flip_bits as u8;
        }
        // Every outcome must be a typed error or a clean restore; panics
        // and unbounded allocations abort the test process and fail here.
        match Snapshot::from_bytes(bytes) {
            Err(_) => {}
            Ok(snap) => match System::restore(&snap, &cfg) {
                Ok(restored) => {
                    // A benign flip must still produce a runnable system.
                    drop(restored.snapshot().unwrap());
                }
                Err(e) => {
                    let _: SnapshotError = e; // typed decode error
                }
            },
        }
    }
}
