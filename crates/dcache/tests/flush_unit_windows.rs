//! Timing-window tests for the §5.3 rules: FSHR→load forwarding, stores
//! allowed past a buffer-filled clean, flush-queue-full nacks — driven
//! cycle by cycle against a hand-rolled L2 stub so the windows stay open
//! long enough to observe.

use skipit_dcache::req::DcReqKind;
use skipit_dcache::{DataCache, DcReq, DcResp, L1Config, L1Ports, ReqOutcome};
use skipit_tilelink::{
    ChannelA, ChannelB, ChannelC, ChannelD, ChannelE, GrantFlavor, Link, WritebackKind,
};

struct Bench {
    l1: DataCache,
    a: Link<ChannelA>,
    b: Link<ChannelB>,
    c: Link<ChannelC>,
    d: Link<ChannelD>,
    e: Link<ChannelE>,
    now: u64,
    /// When false, the stub L2 withholds RootReleaseAcks (keeps FSHRs in
    /// WaitAck so the §5.3 windows stay open).
    ack_root: bool,
    pending_root_acks: Vec<ChannelD>,
}

impl Bench {
    fn new(cfg: L1Config) -> Self {
        Bench {
            l1: DataCache::new(0, cfg),
            a: Link::new(1, 16),
            b: Link::new(1, 16),
            c: Link::new(1, 16),
            d: Link::new(1, 16),
            e: Link::new(1, 16),
            now: 0,
            ack_root: true,
            pending_root_acks: Vec::new(),
        }
    }

    fn step(&mut self, n: u64) {
        for _ in 0..n {
            let now = self.now;
            {
                let mut ports = L1Ports {
                    a: &mut self.a,
                    b: &mut self.b,
                    c: &mut self.c,
                    d: &mut self.d,
                    e: &mut self.e,
                };
                self.l1.step(now, &mut ports);
            }
            while let Some(ChannelA::AcquireBlock { addr, grow, .. }) = self.a.pop(now) {
                self.d.push(
                    now,
                    ChannelD::Grant {
                        target: 0,
                        addr,
                        is_trunk: grow.wants_write(),
                        data: skipit_tilelink::LineData::zeroed(),
                        flavor: GrantFlavor::Clean,
                    },
                );
            }
            while let Some(m) = self.c.pop(now) {
                match m {
                    ChannelC::Release { addr, .. } => self.d.push(
                        now,
                        ChannelD::ReleaseAck {
                            target: 0,
                            addr,
                            root: false,
                        },
                    ),
                    ChannelC::RootRelease { addr, .. } => {
                        let ack = ChannelD::ReleaseAck {
                            target: 0,
                            addr,
                            root: true,
                        };
                        if self.ack_root {
                            self.d.push(now, ack);
                        } else {
                            self.pending_root_acks.push(ack);
                        }
                    }
                    ChannelC::ProbeAck { .. } => {}
                }
            }
            while self.e.pop(now).is_some() {}
            self.now += 1;
        }
    }

    fn release_acks(&mut self) {
        for ack in self.pending_root_acks.drain(..) {
            self.d.push(self.now, ack);
        }
        self.ack_root = true;
    }

    fn drive(&mut self, id: u64, kind: DcReqKind) -> ReqOutcome {
        self.l1.try_request(self.now, DcReq { id, kind })
    }

    fn drive_until_accepted(&mut self, id: u64, kind: DcReqKind) {
        for _ in 0..500 {
            if self.drive(id, kind) == ReqOutcome::Accepted {
                return;
            }
            self.step(1);
        }
        panic!("request {kind:?} never accepted");
    }

    fn responses(&mut self) -> Vec<DcResp> {
        let mut out = Vec::new();
        while let Some(r) = self.l1.pop_response(self.now) {
            out.push(r);
        }
        out
    }
}

/// §5.3: a load that misses (the flush invalidated the line) while the FSHR
/// holds a filled data buffer is served by forwarding from that buffer.
#[test]
fn load_forwards_from_filled_fshr_buffer() {
    let mut b = Bench::new(L1Config::default());
    b.drive_until_accepted(
        1,
        DcReqKind::Store {
            addr: 0x1000,
            value: 77,
        },
    );
    b.step(40);
    b.responses();
    // Withhold the ack so the FSHR parks in WaitAck with its buffer filled.
    b.ack_root = false;
    b.drive_until_accepted(
        2,
        DcReqKind::Writeback {
            addr: 0x1000,
            kind: WritebackKind::Flush,
        },
    );
    // Let the FSHR run meta_write + fill_buffer + send.
    b.step(10);
    assert!(b.l1.is_flushing(), "FSHR must still be waiting for its ack");
    // The line is now invalid; a load must forward from the buffer.
    b.drive_until_accepted(3, DcReqKind::Load { addr: 0x1000 });
    b.step(6);
    let rs = b.responses();
    assert!(
        rs.iter()
            .any(|r| matches!(r, DcResp::LoadDone { id: 3, value: 77 })),
        "load must forward the flushed value from the FSHR buffer: {rs:?}"
    );
    assert_eq!(b.l1.stats().load_fshr_forwards, 1);
    b.release_acks();
    b.step(20);
    assert!(!b.l1.is_flushing());
}

/// §5.3 store conditions: a store may proceed past a clean whose FSHR has
/// filled its buffer (the buffered data is immune to the new store), but
/// never past a flush.
#[test]
fn store_allowed_past_buffer_filled_clean_but_not_flush() {
    for (kind, expect_ok) in [(WritebackKind::Clean, true), (WritebackKind::Flush, false)] {
        let mut b = Bench::new(L1Config::default());
        b.drive_until_accepted(
            1,
            DcReqKind::Store {
                addr: 0x2000,
                value: 5,
            },
        );
        b.step(40);
        b.ack_root = false;
        b.drive_until_accepted(2, DcReqKind::Writeback { addr: 0x2000, kind });
        b.step(10); // FSHR reaches WaitAck with the buffer filled
        let out = b.drive(
            3,
            DcReqKind::Store {
                addr: 0x2000,
                value: 9,
            },
        );
        if expect_ok {
            assert_eq!(out, ReqOutcome::Accepted, "store past buffered clean");
            b.step(6);
            assert_eq!(b.l1.peek_word(0x2000), Some(9));
        } else {
            // After a flush's meta_write the line is invalid; the store is
            // nacked while the FSHR is active on the line.
            assert_eq!(out, ReqOutcome::Nack, "store past flush must nack");
        }
        b.release_acks();
        b.step(30);
    }
}

/// A full flush queue nacks further CBO.X (§5.2), and the LSU-style retry
/// succeeds once entries drain.
#[test]
fn full_flush_queue_nacks_then_recovers() {
    let cfg = L1Config {
        flush_queue_depth: 2,
        fshrs: 1,
        ..L1Config::default()
    };
    let mut b = Bench::new(cfg);
    b.ack_root = false;
    // Three writebacks to distinct lines: 1 FSHR + 2 queue slots; the
    // fourth must nack.
    for (id, addr) in [(1u64, 0x3000u64), (2, 0x3040), (3, 0x3080)] {
        b.drive_until_accepted(
            id,
            DcReqKind::Writeback {
                addr,
                kind: WritebackKind::Flush,
            },
        );
        b.step(2);
    }
    let out = b.drive(
        4,
        DcReqKind::Writeback {
            addr: 0x30c0,
            kind: WritebackKind::Flush,
        },
    );
    assert_eq!(out, ReqOutcome::Nack, "queue full must nack");
    assert!(b.l1.stats().nacks >= 1);
    b.release_acks();
    b.drive_until_accepted(
        5,
        DcReqKind::Writeback {
            addr: 0x30c0,
            kind: WritebackKind::Flush,
        },
    );
    b.step(60);
    // New acks were produced after release_acks consumed the flag...
    b.release_acks();
    b.step(60);
    assert!(!b.l1.is_flushing(), "queue must drain after acks resume");
}

/// Eviction invalidation (§5.4.2): a queued writeback whose line gets
/// evicted executes with is_hit cleared (RootRelease without data) instead
/// of reading a stale way.
#[test]
fn evicted_line_invalidates_queued_entry() {
    let cfg = L1Config {
        sets: 2,
        ways: 1,
        ..L1Config::default()
    };
    let mut b = Bench::new(cfg);
    // Dirty line A (set 0).
    b.drive_until_accepted(1, DcReqKind::Store { addr: 0, value: 3 });
    b.step(40);
    // Queue a clean for A but hold the FSHR pipeline busy by withholding
    // acks on an unrelated line first (set 1).
    b.ack_root = false;
    b.drive_until_accepted(
        2,
        DcReqKind::Writeback {
            addr: 0x40,
            kind: WritebackKind::Flush,
        },
    );
    b.step(4);
    b.drive_until_accepted(
        3,
        DcReqKind::Writeback {
            addr: 0,
            kind: WritebackKind::Clean,
        },
    );
    // Now evict line A with a conflicting store (same set, 1 way).
    // The store nacks while the queued entry exists... so use a LOAD to a
    // conflicting line instead: loads to other lines are unrestricted.
    b.drive_until_accepted(4, DcReqKind::Load { addr: 0x80 });
    b.step(80);
    b.release_acks();
    b.step(120);
    assert!(
        b.l1.stats().flush_entries_evict_invalidated >= 1 || b.l1.stats().evictions == 0,
        "an eviction hitting a queued entry must invalidate it"
    );
    assert!(!b.l1.is_flushing());
    // The clean still completed (RootRelease was sent regardless).
    assert!(b.l1.stats().root_releases_sent >= 2);
}
