//! The **Flush Unit** (§5.2): flush queue, FSHRs, and flush counter.
//!
//! The flush unit buffers incoming `CBO.X` requests in the *flush queue*
//! (letting the LSU commit them immediately, §5.2), executes them
//! asynchronously in *Flush Status Holding Registers* (FSHRs) that step
//! through the state machine of the paper's Fig. 7, and tracks completion in
//! the *flush counter* that gates fences.
//!
//! Queue entries snapshot the line's bookkeeping bits at enqueue time
//! (`is_hit`, `is_dirty`, kind) so that dequeuing needs no metadata-array
//! access; the snapshots are kept consistent by the probe unit
//! ([`FlushUnit::probe_invalidate`], §5.4.1) and the writeback unit
//! ([`FlushUnit::evict_invalidate`], §5.4.2), while dependent loads/stores
//! are blocked by the cache front-end (§5.3).

use crate::meta::CacheArrays;
use crate::stats::L1Stats;
use skipit_tilelink::{
    AgentId, Cap, ChannelC, ClientState, LineAddr, LineData, Link, PerturbConfig, WritebackKind,
};
use skipit_trace::{TraceEvent, TraceSink};
use std::collections::VecDeque;

/// One buffered `CBO.X` request (§5.2: "relevant fields of a flush request").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlushEntry {
    /// The line to be written back.
    pub addr: LineAddr,
    /// Did the line hit in the L1 at enqueue time (kept up to date by
    /// probe/evict invalidation)?
    pub is_hit: bool,
    /// Was the line dirty (only meaningful when `is_hit`)?
    pub is_dirty: bool,
    /// `CBO.CLEAN` or `CBO.FLUSH`.
    pub kind: WritebackKind,
}

/// The Fig. 7 FSHR state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FshrState {
    /// No request; ready to accept (`invalid` in Fig. 7).
    #[default]
    Free,
    /// Modify the line's metadata: invalidate (flush) or clear dirty (clean).
    MetaWrite,
    /// Fill the data buffer from the data array — a single cycle thanks to
    /// the widened data-array read port (§5.2).
    FillBuffer,
    /// Send `RootRelease` *with* data (four beats on the 16 B bus).
    SendReleaseData,
    /// Send `RootRelease` without data (one beat).
    SendRelease,
    /// Wait for `RootReleaseAck` (`root_release_ack` in Fig. 7).
    WaitAck,
}

impl FshrState {
    /// The Fig. 7 state name, used by [`TraceEvent::FshrTransition`].
    pub fn name(self) -> &'static str {
        match self {
            FshrState::Free => "free",
            FshrState::MetaWrite => "meta_write",
            FshrState::FillBuffer => "fill_buffer",
            FshrState::SendReleaseData => "root_release_data",
            FshrState::SendRelease => "root_release",
            FshrState::WaitAck => "root_release_ack",
        }
    }
}

/// One Flush Status Holding Register.
#[derive(Clone, Copy, Debug, Default)]
pub struct Fshr {
    /// The request being executed (meaningful unless `state == Free`).
    pub entry: FlushEntry,
    /// Current FSM state.
    pub state: FshrState,
    /// Data buffer for dirty lines (§5.2); also the forwarding source for
    /// loads that miss while the line is being flushed (§5.3).
    pub buffer: Option<LineData>,
    /// `(set, way)` latched at `meta_write` time so `fill_buffer` can read
    /// the data array even after a flush invalidated the tag.
    slot: Option<(usize, usize)>,
    /// Whether this FSHR's eventual ack may still set the skip bit (§6.2).
    /// True from allocation; cleared by [`FlushUnit::note_line_touched`]
    /// when a store/AMO dirties the line or a probe/eviction invalidates it
    /// while the FSHR is in flight — in either case the line's *current*
    /// data is no longer the snapshot this FSHR persisted, so a late ack
    /// must not mark it skippable.
    skip_ok: bool,
    /// Dispatch order stamp (monotone per flush unit). Same-line
    /// transactions are serialized by the L2 in arrival order and their
    /// acks return over FIFO links, so acks for a line always land in
    /// dispatch order: ack completion matches the *oldest* same-line
    /// `WaitAck` FSHR by this stamp.
    seq: u64,
}

impl Default for FlushEntry {
    fn default() -> Self {
        FlushEntry {
            addr: LineAddr::new(0),
            is_hit: false,
            is_dirty: false,
            kind: WritebackKind::Clean,
        }
    }
}

impl Fshr {
    /// Whether this FSHR is executing a request for `addr`.
    pub fn active_on(&self, addr: LineAddr) -> bool {
        self.state != FshrState::Free && self.entry.addr == addr
    }
}

/// The flush unit. See [module docs](self).
#[derive(Debug)]
pub struct FlushUnit {
    queue: VecDeque<FlushEntry>,
    depth: usize,
    fshrs: Vec<Fshr>,
    /// Round-robin allocation pointer (§5.2).
    next_fshr: usize,
    /// The flush counter (§5.2): pending requests in the queue or in FSHRs.
    counter: u64,
    /// Event sink for FSHR FSM transitions and ack-time skip-bit updates.
    sink: Option<TraceSink>,
    /// Adversarial dispatch jitter: `(site key, config)` installed by the
    /// cache when perturbation is configured (see
    /// [`skipit_tilelink::perturb`]).
    perturb: Option<(u64, PerturbConfig)>,
    /// Count of queue → FSHR dispatches — the state-changing event index
    /// the jitter draws are keyed on (engine-invariant, unlike call counts).
    dispatch_seq: u64,
    /// Pending hold-off: the head dispatch may not happen before this
    /// cycle. Anchored at the first cycle the dispatch became possible.
    hold_until: Option<u64>,
    /// Monotone FSHR allocation counter backing [`Fshr`]'s dispatch-order
    /// stamp (always incremented, unlike the perturbation-only
    /// `dispatch_seq`).
    alloc_seq: u64,
}

impl FlushUnit {
    /// Creates a flush unit with the given queue depth and FSHR count.
    pub fn new(depth: usize, fshrs: usize) -> Self {
        FlushUnit {
            queue: VecDeque::with_capacity(depth),
            depth,
            fshrs: vec![Fshr::default(); fshrs],
            next_fshr: 0,
            counter: 0,
            sink: None,
            perturb: None,
            dispatch_seq: 0,
            hold_until: None,
            alloc_seq: 0,
        }
    }

    /// Installs seeded dispatch jitter: each queue → FSHR dispatch is held
    /// off by `cfg.draw(site, dispatch index, cfg.dispatch_jitter)` cycles
    /// from the first cycle it became possible. A stalled dispatch is a
    /// schedule real arbitration could produce (the flush unit merely loses
    /// arbitration for a few cycles), so every explored schedule is legal.
    pub fn set_perturb(&mut self, site: u64, cfg: PerturbConfig) {
        self.perturb = (cfg.dispatch_jitter > 0).then_some((site, cfg));
    }

    /// Installs an event sink; FSHR state transitions
    /// ([`TraceEvent::FshrTransition`]) and ack-time skip-bit sets emit
    /// through it.
    pub fn set_trace(&mut self, sink: TraceSink) {
        self.sink = Some(sink);
    }

    /// The installed event sink, if any.
    pub fn trace_sink(&self) -> Option<&TraceSink> {
        self.sink.as_ref()
    }

    /// Mutable access to the installed event sink (for clearing).
    pub fn trace_sink_mut(&mut self) -> Option<&mut TraceSink> {
        self.sink.as_mut()
    }

    /// Removes and returns the event sink.
    pub fn take_trace(&mut self) -> Option<TraceSink> {
        self.sink.take()
    }

    /// The `flushing` signal (Fig. 6): true while any writeback is pending.
    /// Fences may commit only when this is false (§5.3).
    pub fn is_flushing(&self) -> bool {
        self.counter > 0
    }

    /// The `flush_rdy` signal (§5.4.1): false while any FSHR is between
    /// allocation and reaching `root_release_ack`. Probes and MSHR evictions
    /// are held while low.
    pub fn flush_rdy(&self) -> bool {
        self.fshrs
            .iter()
            .all(|f| matches!(f.state, FshrState::Free | FshrState::WaitAck))
    }

    /// Whether the queue has no free slot.
    pub fn queue_full(&self) -> bool {
        self.queue.len() >= self.depth
    }

    /// Number of requests currently buffered in the queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// FSHRs currently executing a writeback (telemetry gauge).
    pub fn fshr_occupancy(&self) -> usize {
        self.fshrs
            .iter()
            .filter(|f| f.state != FshrState::Free)
            .count()
    }

    /// Whether a request to `addr` is pending in the queue or any FSHR.
    pub fn has_pending(&self, addr: LineAddr) -> bool {
        self.queued_entry(addr).is_some() || self.fshr_for(addr).is_some()
    }

    /// The queued entry for `addr`, if any.
    pub fn queued_entry(&self, addr: LineAddr) -> Option<&FlushEntry> {
        self.queue.iter().find(|e| e.addr == addr)
    }

    /// The FSHR handling `addr`, if any.
    pub fn fshr_for(&self, addr: LineAddr) -> Option<&Fshr> {
        self.fshrs.iter().find(|f| f.active_on(addr))
    }

    /// The §5.3 store-admission test against *all* FSHRs active on `addr`:
    /// a store may proceed only if every one of them is a `CBO.CLEAN` that
    /// has already captured its data (or never had dirty data to capture).
    /// A line can occupy several FSHRs at once, so checking only the first
    /// match would let a disallowed flush hide behind an allowed clean.
    /// Records that `addr`'s cache line was written (store/AMO) or
    /// invalidated (probe, eviction) while FSHRs may be in flight for it:
    /// their snapshots no longer match the line's current data, so their
    /// acks must not set the skip bit (§6.2). Clears the per-FSHR
    /// `skip_ok` eligibility flag.
    pub fn note_line_touched(&mut self, addr: LineAddr) {
        for f in self.fshrs.iter_mut().filter(|f| f.active_on(addr)) {
            f.skip_ok = false;
        }
    }

    pub fn fshr_blocks_store(&self, addr: LineAddr) -> bool {
        self.fshrs.iter().filter(|f| f.active_on(addr)).any(|f| {
            !(f.entry.kind == WritebackKind::Clean && (!f.entry.is_dirty || f.buffer.is_some()))
        })
    }

    /// Whether a same-kind request for `addr` is pending *in the flush
    /// queue* — the coalescing test of §5.3. A `CBO.CLEAN` may coalesce with
    /// a pending `CBO.CLEAN` but not with a pending `CBO.FLUSH` (and vice
    /// versa). Requests already being executed by an FSHR are not
    /// coalescible ("pending flush request" = queued): the FSHR may already
    /// have released the line, so a later writeback must take its own trip —
    /// which is exactly the redundancy Skip It eliminates (§7.4).
    pub fn can_coalesce(&self, addr: LineAddr, kind: WritebackKind, _line_dirty_now: bool) -> bool {
        self.queue.iter().any(|e| e.addr == addr && e.kind == kind)
    }

    /// The §5.3 future-work optimization: coalesce a request with a queued
    /// entry of the *other* kind. An arriving `CBO.FLUSH` upgrades a queued
    /// `CBO.CLEAN` in place (flush subsumes clean — it writes back the same
    /// data and additionally invalidates); an arriving `CBO.CLEAN` is
    /// absorbed by a queued `CBO.FLUSH` (whose writeback already covers
    /// every store ordered before the clean, since dependent stores are
    /// blocked while the entry is queued).
    ///
    /// Whether [`FlushUnit::try_cross_kind_coalesce`] would absorb the
    /// request — the same test without the upgrade side effect, for the
    /// cache's admission predicate.
    pub fn can_cross_kind_coalesce(&self, addr: LineAddr, kind: WritebackKind) -> bool {
        kind != WritebackKind::Inval
            && self
                .queue
                .iter()
                .any(|e| e.addr == addr && e.kind != kind && e.kind != WritebackKind::Inval)
    }

    /// Returns `true` if the request was absorbed.
    pub fn try_cross_kind_coalesce(&mut self, addr: LineAddr, kind: WritebackKind) -> bool {
        if kind == WritebackKind::Inval {
            // CBO.INVAL discards data: it can never be absorbed by (or
            // absorb) a writeback-carrying request.
            return false;
        }
        let Some(e) = self
            .queue
            .iter_mut()
            .find(|e| e.addr == addr && e.kind != kind && e.kind != WritebackKind::Inval)
        else {
            return false;
        };
        if kind == WritebackKind::Flush {
            // Upgrade: the queued clean becomes a flush.
            e.kind = WritebackKind::Flush;
        }
        true
    }

    /// Buffers a request; increments the flush counter.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full — callers must check
    /// [`FlushUnit::queue_full`] and nack the LSU instead (§5.2).
    pub fn enqueue(&mut self, entry: FlushEntry) {
        assert!(!self.queue_full(), "flush queue overflow");
        self.queue.push_back(entry);
        self.counter += 1;
    }

    /// Probe invalidation (§5.4.1): a coherence probe for `addr` with
    /// capability `cap` updates the bookkeeping bits of matching queued
    /// entries so they are executed with valid metadata. Returns the number
    /// of entries adjusted.
    pub fn probe_invalidate(&mut self, addr: LineAddr, cap: Cap) -> u64 {
        let mut n = 0;
        for e in self.queue.iter_mut().filter(|e| e.addr == addr) {
            match cap {
                Cap::ToN => {
                    if e.is_hit || e.is_dirty {
                        e.is_hit = false;
                        e.is_dirty = false;
                        n += 1;
                    }
                }
                Cap::ToB => {
                    // The dirty data travels upward with the ProbeAck; the
                    // entry keeps its hit bit (a readable copy remains).
                    if e.is_dirty {
                        e.is_dirty = false;
                        n += 1;
                    }
                }
                Cap::ToT => {}
            }
        }
        n
    }

    /// Eviction invalidation (§5.4.2): the writeback unit evicted `addr`, so
    /// matching queued entries no longer hit. Returns entries adjusted.
    pub fn evict_invalidate(&mut self, addr: LineAddr) -> u64 {
        let mut n = 0;
        for e in self.queue.iter_mut().filter(|e| e.addr == addr) {
            if e.is_hit || e.is_dirty {
                e.is_hit = false;
                e.is_dirty = false;
                n += 1;
            }
        }
        n
    }

    /// Dequeues the head request into a free FSHR (round-robin, §5.2) if
    /// permitted: the queue is non-empty, an FSHR is free, and the
    /// `probe_rdy` / `wb_rdy` interlocks are high (§5.4). At most one
    /// allocation per cycle.
    pub fn try_allocate(&mut self, now: u64, core: AgentId, probe_rdy: bool, wb_rdy: bool) -> bool {
        if self.queue.is_empty() || !probe_rdy || !wb_rdy {
            return false;
        }
        // Same-line requests may occupy several FSHRs concurrently: each
        // completed its metadata write before releasing, the L2 serializes
        // them through its per-line MSHR conflict rules, and ack-completion
        // re-checks line state before touching the skip bit. This is what
        // lets a burst of redundant writebacks each take a full round trip
        // on the baseline — the cost Skip It removes (§7.4).
        let n = self.fshrs.len();
        for i in 0..n {
            let idx = (self.next_fshr + i) % n;
            if self.fshrs[idx].state == FshrState::Free {
                // Adversarial hold-off (set_perturb): the first cycle the
                // dispatch becomes possible anchors a drawn delay; until it
                // elapses the dispatch loses arbitration. `has_work` keeps
                // reporting the pending dispatch, so every engine keeps
                // stepping the cache here and observes the same hold.
                if let Some((site, cfg)) = self.perturb {
                    let until = *self.hold_until.get_or_insert_with(|| {
                        now + cfg.draw(site, self.dispatch_seq, cfg.dispatch_jitter)
                    });
                    if now < until {
                        return false;
                    }
                    self.hold_until = None;
                    self.dispatch_seq += 1;
                }
                let entry = self.queue.pop_front().expect("nonempty");
                let state = Self::initial_state(&entry);
                skipit_trace::trace!(
                    self.sink,
                    now,
                    TraceEvent::FshrTransition {
                        core,
                        fshr: idx,
                        addr: entry.addr.base(),
                        from: FshrState::Free.name(),
                        to: state.name(),
                    }
                );
                self.fshrs[idx] = Fshr {
                    entry,
                    state,
                    buffer: None,
                    slot: None,
                    skip_ok: true,
                    seq: self.alloc_seq,
                };
                self.alloc_seq += 1;
                self.next_fshr = (idx + 1) % n;
                return true;
            }
        }
        false
    }

    /// The first state after `invalid` per Fig. 7: a miss goes straight to
    /// `root_release` (the line may still be dirty elsewhere, §5.2); a hit on
    /// a dirty line or an invalidating operation must write metadata first;
    /// a `CBO.CLEAN` hit on a clean line releases without touching metadata.
    fn initial_state(entry: &FlushEntry) -> FshrState {
        if !entry.is_hit {
            FshrState::SendRelease
        } else if entry.is_dirty || entry.kind.invalidates() {
            FshrState::MetaWrite
        } else {
            FshrState::SendRelease
        }
    }

    /// Advances every active FSHR by one state transition (one cycle).
    ///
    /// `core` is this cache's agent id for outgoing messages; `arrays` is the
    /// L1 metadata/data array the FSHR reads and writes.
    #[allow(clippy::too_many_arguments)]
    pub fn step_fshrs(
        &mut self,
        now: u64,
        core: AgentId,
        arrays: &mut CacheArrays,
        c: &mut Link<ChannelC>,
        stats: &mut L1Stats,
    ) {
        for i in 0..self.fshrs.len() {
            let state = self.fshrs[i].state;
            let entry = self.fshrs[i].entry;
            match state {
                FshrState::Free | FshrState::WaitAck => {}
                FshrState::MetaWrite => {
                    let way = arrays.lookup(entry.addr).unwrap_or_else(|| {
                        panic!(
                            "FSHR meta_write: entry says hit but {:?} is absent — \
                             interlock violation",
                            entry.addr
                        )
                    });
                    let set = arrays.set_index(entry.addr);
                    self.fshrs[i].slot = Some((set, way));
                    let m = arrays.meta_mut(set, way);
                    match entry.kind {
                        WritebackKind::Flush | WritebackKind::Inval => {
                            m.state = ClientState::Invalid;
                            if m.skip {
                                m.skip = false;
                                skipit_trace::trace!(
                                    self.sink,
                                    now,
                                    TraceEvent::SkipBitClear {
                                        core,
                                        addr: entry.addr.base(),
                                        why: "flush",
                                    }
                                );
                            }
                        }
                        WritebackKind::Clean => {
                            if m.state == ClientState::Modified {
                                m.state = ClientState::Exclusive;
                            }
                        }
                    }
                    // Keep later queued same-line entries (necessarily of
                    // the *other* kind — same-kind ones coalesced, §5.3)
                    // consistent with the metadata we just changed.
                    for e in self.queue.iter_mut().filter(|e| e.addr == entry.addr) {
                        match entry.kind {
                            WritebackKind::Flush | WritebackKind::Inval => {
                                e.is_hit = false;
                                e.is_dirty = false;
                            }
                            WritebackKind::Clean => e.is_dirty = false,
                        }
                    }
                    // CBO.INVAL discards dirty data: never fill the buffer.
                    let next = if entry.is_dirty && entry.kind.writes_back() {
                        FshrState::FillBuffer
                    } else {
                        FshrState::SendRelease
                    };
                    skipit_trace::trace!(
                        self.sink,
                        now,
                        TraceEvent::FshrTransition {
                            core,
                            fshr: i,
                            addr: entry.addr.base(),
                            from: state.name(),
                            to: next.name(),
                        }
                    );
                    self.fshrs[i].state = next;
                }
                FshrState::FillBuffer => {
                    // The widened data array serves the whole line in one
                    // cycle (§5.2), addressed by the (set, way) latched at
                    // meta_write time — the SRAM bits survive a metadata
                    // invalidation.
                    let (set, way) = self.fshrs[i]
                        .slot
                        .expect("fill_buffer without a latched slot");
                    self.fshrs[i].buffer = Some(arrays.line(set, way));
                    skipit_trace::trace!(
                        self.sink,
                        now,
                        TraceEvent::FshrTransition {
                            core,
                            fshr: i,
                            addr: entry.addr.base(),
                            from: state.name(),
                            to: FshrState::SendReleaseData.name(),
                        }
                    );
                    self.fshrs[i].state = FshrState::SendReleaseData;
                }
                FshrState::SendReleaseData | FshrState::SendRelease => {
                    if c.can_push() {
                        let data = if state == FshrState::SendReleaseData {
                            Some(self.fshrs[i].buffer.expect("buffer filled"))
                        } else {
                            None
                        };
                        c.push(
                            now,
                            ChannelC::RootRelease {
                                source: core,
                                addr: entry.addr,
                                kind: entry.kind,
                                data,
                            },
                        );
                        stats.root_releases_sent += 1;
                        if data.is_some() {
                            stats.root_releases_with_data += 1;
                        }
                        skipit_trace::trace!(
                            self.sink,
                            now,
                            TraceEvent::FshrTransition {
                                core,
                                fshr: i,
                                addr: entry.addr.base(),
                                from: state.name(),
                                to: FshrState::WaitAck.name(),
                            }
                        );
                        self.fshrs[i].state = FshrState::WaitAck;
                    }
                }
            }
        }
    }

    /// Completes the FSHR waiting on `addr` after a `RootReleaseAck`
    /// (§5.2 state 6). For a completed `CBO.CLEAN` with Skip It enabled, the
    /// line is now persisted, so its skip bit is set — provided the line is
    /// still valid and clean (§6.2).
    ///
    /// Returns `true` if an FSHR was completed.
    pub fn complete_ack(
        &mut self,
        now: u64,
        core: AgentId,
        addr: LineAddr,
        arrays: &mut CacheArrays,
        skip_it: bool,
    ) -> bool {
        // When several FSHRs for the same line are in `WaitAck` (§5.2
        // allows this), the ack belongs to the *oldest* dispatch: the L2
        // serializes same-line transactions in arrival order and the links
        // are FIFOs, so acks come back in dispatch order. Matching by scan
        // position instead would credit the ack to an arbitrary slot — e.g.
        // free an invalidating CBO.FLUSH on a completed CBO.CLEAN's ack,
        // dropping the store interlock while the flush's RootRelease is
        // still queued at the L2 (an inclusion violation once a refill
        // races the deferred invalidation).
        let Some(i) = self
            .fshrs
            .iter()
            .enumerate()
            .filter(|(_, f)| f.state == FshrState::WaitAck && f.entry.addr == addr)
            .min_by_key(|(_, f)| f.seq)
            .map(|(i, _)| i)
        else {
            return false;
        };
        let kind = self.fshrs[i].entry.kind;
        let skip_ok = self.fshrs[i].skip_ok;
        skipit_trace::trace!(
            self.sink,
            now,
            TraceEvent::FshrTransition {
                core,
                fshr: i,
                addr: addr.base(),
                from: FshrState::WaitAck.name(),
                to: FshrState::Free.name(),
            }
        );
        self.fshrs[i] = Fshr::default();
        debug_assert!(self.counter > 0, "flush counter underflow");
        self.counter -= 1;
        // §6.2: the skip bit asserts "this line's current data is persisted".
        // That is only true if *this* ack is the last word on the line:
        //
        // * when another FSHR is still flushing the same line, the completed
        //   clean predates that FSHR's snapshot (e.g. a clean that missed,
        //   raced by a store and a second clean), and the line's current
        //   data is still in flight;
        // * when `skip_ok` was cleared, the line was stored to or
        //   invalidated after this FSHR captured its snapshot — e.g. a §5.3
        //   store admitted past a buffer-captured clean, whose new data then
        //   moved into the L2 via a probe downgrade, leaving the line
        //   valid+clean here but dirty (unpersisted) at the L2.
        //
        // Setting skip in either case would let a later CBO drop a
        // writeback whose data the persistence domain does not yet hold.
        let line_still_flushing = self
            .fshrs
            .iter()
            .any(|f| f.state != FshrState::Free && f.entry.addr == addr);
        if skip_it && kind == WritebackKind::Clean && skip_ok && !line_still_flushing {
            if let Some(way) = arrays.lookup(addr) {
                let set = arrays.set_index(addr);
                let m = arrays.meta_mut(set, way);
                if !m.state.is_dirty() {
                    m.skip = true;
                    skipit_trace::trace!(
                        self.sink,
                        now,
                        TraceEvent::SkipBitSet {
                            core,
                            addr: addr.base(),
                        }
                    );
                }
            }
        }
        true
    }

    /// Whether the flush unit would do work *this* cycle: an FSHR is in a
    /// self-advancing state (`MetaWrite`/`FillBuffer` always progress;
    /// `SendRelease*` pushes only while channel C has room, `c_rdy`), or a
    /// queued entry can be allocated under the given interlocks. FSHRs in
    /// `WaitAck` are woken by channel D traffic, and a `SendRelease*` facing
    /// a full channel C by the L2's drain of that channel — both evented
    /// separately by the scheduler, so they contribute no work here.
    pub fn has_work(&self, probe_rdy: bool, wb_rdy: bool, c_rdy: bool) -> bool {
        let mut free = false;
        for f in &self.fshrs {
            match f.state {
                FshrState::MetaWrite | FshrState::FillBuffer => return true,
                FshrState::SendReleaseData | FshrState::SendRelease => {
                    if c_rdy {
                        return true;
                    }
                }
                FshrState::Free => free = true,
                FshrState::WaitAck => {}
            }
        }
        !self.queue.is_empty() && probe_rdy && wb_rdy && free
    }

    /// Drops one pending unit of work without executing it (used when a
    /// request is eliminated after enqueue — not currently reachable, kept
    /// for the dependability tests).
    #[doc(hidden)]
    pub fn counter_value(&self) -> u64 {
        self.counter
    }

    /// View of all FSHRs (tests and forwarding logic).
    pub fn fshrs(&self) -> &[Fshr] {
        &self.fshrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::L1Config;

    fn unit() -> FlushUnit {
        FlushUnit::new(4, 2)
    }

    fn entry(addr: u64, hit: bool, dirty: bool, kind: WritebackKind) -> FlushEntry {
        FlushEntry {
            addr: LineAddr::new(addr),
            is_hit: hit,
            is_dirty: dirty,
            kind,
        }
    }

    #[test]
    fn counter_tracks_enqueue_and_ack() {
        let mut fu = unit();
        assert!(!fu.is_flushing());
        fu.enqueue(entry(0x40, false, false, WritebackKind::Flush));
        assert!(fu.is_flushing());
        assert_eq!(fu.counter_value(), 1);
    }

    #[test]
    fn queue_full_detection() {
        let mut fu = unit();
        for i in 0..4 {
            fu.enqueue(entry(0x40 * (i + 1), false, false, WritebackKind::Flush));
        }
        assert!(fu.queue_full());
    }

    #[test]
    #[should_panic(expected = "flush queue overflow")]
    fn enqueue_past_capacity_panics() {
        let mut fu = unit();
        for i in 0..5 {
            fu.enqueue(entry(0x40 * (i + 1), false, false, WritebackKind::Flush));
        }
    }

    #[test]
    fn initial_state_paths_match_fig7() {
        // Miss → root_release regardless of kind.
        assert_eq!(
            FlushUnit::initial_state(&entry(0, false, false, WritebackKind::Flush)),
            FshrState::SendRelease
        );
        // Hit dirty → meta_write (then fill_buffer → release_data).
        assert_eq!(
            FlushUnit::initial_state(&entry(0, true, true, WritebackKind::Clean)),
            FshrState::MetaWrite
        );
        // Hit clean flush → meta_write (invalidate) then release w/o data.
        assert_eq!(
            FlushUnit::initial_state(&entry(0, true, false, WritebackKind::Flush)),
            FshrState::MetaWrite
        );
        // Hit clean clean → straight to release (metadata unchanged).
        assert_eq!(
            FlushUnit::initial_state(&entry(0, true, false, WritebackKind::Clean)),
            FshrState::SendRelease
        );
    }

    #[test]
    fn coalescing_same_kind_only() {
        let mut fu = unit();
        fu.enqueue(entry(0x40, true, true, WritebackKind::Clean));
        assert!(fu.can_coalesce(LineAddr::new(0x40), WritebackKind::Clean, true));
        assert!(!fu.can_coalesce(LineAddr::new(0x40), WritebackKind::Flush, true));
        assert!(!fu.can_coalesce(LineAddr::new(0x80), WritebackKind::Clean, true));
    }

    #[test]
    fn probe_invalidate_to_n_clears_hit_and_dirty() {
        let mut fu = unit();
        fu.enqueue(entry(0x40, true, true, WritebackKind::Flush));
        assert_eq!(fu.probe_invalidate(LineAddr::new(0x40), Cap::ToN), 1);
        let e = fu.queued_entry(LineAddr::new(0x40)).unwrap();
        assert!(!e.is_hit && !e.is_dirty);
    }

    #[test]
    fn probe_invalidate_to_b_clears_only_dirty() {
        let mut fu = unit();
        fu.enqueue(entry(0x40, true, true, WritebackKind::Clean));
        assert_eq!(fu.probe_invalidate(LineAddr::new(0x40), Cap::ToB), 1);
        let e = fu.queued_entry(LineAddr::new(0x40)).unwrap();
        assert!(e.is_hit && !e.is_dirty);
    }

    #[test]
    fn evict_invalidate_clears_entry() {
        let mut fu = unit();
        fu.enqueue(entry(0x40, true, false, WritebackKind::Clean));
        assert_eq!(fu.evict_invalidate(LineAddr::new(0x40)), 1);
        let e = fu.queued_entry(LineAddr::new(0x40)).unwrap();
        assert!(!e.is_hit);
    }

    #[test]
    fn allocation_respects_interlocks() {
        let mut fu = unit();
        fu.enqueue(entry(0x40, false, false, WritebackKind::Flush));
        assert!(
            !fu.try_allocate(0, 0, false, true),
            "probe_rdy low must block"
        );
        assert!(!fu.try_allocate(0, 0, true, false), "wb_rdy low must block");
        assert!(fu.try_allocate(0, 0, true, true));
        assert!(fu.fshr_for(LineAddr::new(0x40)).is_some());
    }

    #[test]
    fn same_line_requests_may_occupy_multiple_fshrs() {
        let mut fu = unit();
        fu.enqueue(entry(0x40, true, true, WritebackKind::Clean));
        fu.enqueue(entry(0x40, true, false, WritebackKind::Flush));
        assert!(fu.try_allocate(0, 0, true, true));
        // Round-robin allocation does not serialize same-line requests;
        // the L2's per-line MSHR conflict rules order them.
        assert!(fu.try_allocate(0, 0, true, true));
        assert_eq!(
            fu.fshrs()
                .iter()
                .filter(|f| f.state != FshrState::Free)
                .count(),
            2
        );
    }

    #[test]
    fn flush_rdy_low_while_fshr_mid_flight() {
        let mut fu = unit();
        assert!(fu.flush_rdy());
        fu.enqueue(entry(0x40, true, true, WritebackKind::Clean));
        fu.try_allocate(0, 0, true, true);
        assert!(!fu.flush_rdy(), "MetaWrite state must hold flush_rdy low");
    }

    #[test]
    fn fshr_full_dirty_clean_path_and_ack_sets_skip() {
        let cfg = L1Config::default();
        let mut arrays = CacheArrays::new(&cfg);
        let addr = LineAddr::new(0x40);
        let mut data = LineData::zeroed();
        data.set_word(0, 0xabcd);
        arrays.install(addr, 0, ClientState::Modified, false, data);

        let mut fu = FlushUnit::new(4, 2);
        let mut c: Link<ChannelC> = Link::new(0, 8);
        let mut stats = L1Stats::default();
        fu.enqueue(entry(0x40, true, true, WritebackKind::Clean));
        fu.try_allocate(0, 0, true, true);

        // MetaWrite: Modified → Exclusive.
        fu.step_fshrs(0, 0, &mut arrays, &mut c, &mut stats);
        let set = arrays.set_index(addr);
        let way = arrays.lookup(addr).unwrap();
        assert_eq!(arrays.meta(set, way).state, ClientState::Exclusive);

        // FillBuffer.
        fu.step_fshrs(1, 0, &mut arrays, &mut c, &mut stats);
        assert!(fu.fshr_for(addr).unwrap().buffer.is_some());

        // SendReleaseData.
        fu.step_fshrs(2, 0, &mut arrays, &mut c, &mut stats);
        assert_eq!(stats.root_releases_sent, 1);
        assert_eq!(stats.root_releases_with_data, 1);
        let msg = c.pop(100).expect("RootRelease on C");
        match msg {
            ChannelC::RootRelease {
                kind,
                data: Some(d),
                ..
            } => {
                assert_eq!(kind, WritebackKind::Clean);
                assert_eq!(d.word(0), 0xabcd);
            }
            other => panic!("unexpected {other:?}"),
        }

        // Ack completes and sets the skip bit (Skip It enabled).
        assert!(fu.complete_ack(99, 0, addr, &mut arrays, true));
        assert!(arrays.meta(set, way).skip);
        assert!(!fu.is_flushing());
    }

    #[test]
    fn ack_completes_oldest_same_line_fshr() {
        let cfg = L1Config::default();
        let mut arrays = CacheArrays::new(&cfg);
        let addr = LineAddr::new(0x40);
        let other = LineAddr::new(0x80);
        arrays.install(addr, 0, ClientState::Modified, false, LineData::zeroed());

        let mut fu = FlushUnit::new(4, 2);
        let mut c: Link<ChannelC> = Link::new(0, 8);
        let mut stats = L1Stats::default();

        // Occupy slot 0 with a release for another line so the clean for
        // `addr` lands in slot 1.
        fu.enqueue(entry(0x80, false, false, WritebackKind::Clean));
        fu.try_allocate(0, 0, true, true);
        fu.enqueue(entry(0x40, true, true, WritebackKind::Clean));
        fu.try_allocate(0, 0, true, true);
        for now in 0..4 {
            fu.step_fshrs(now, 0, &mut arrays, &mut c, &mut stats);
        }
        assert!(fu.complete_ack(4, 0, other, &mut arrays, true));

        // Slot 0 is free again: the same-line flush lands *below* the clean
        // in scan order while the older clean dispatch sits in slot 1.
        fu.enqueue(entry(0x40, true, false, WritebackKind::Flush));
        fu.try_allocate(5, 0, true, true);
        for now in 5..8 {
            fu.step_fshrs(now, 0, &mut arrays, &mut c, &mut stats);
        }
        let waiting = fu.fshrs().iter().filter(|f| f.active_on(addr));
        assert!(waiting.clone().all(|f| f.state == FshrState::WaitAck));
        assert_eq!(waiting.count(), 2);

        // Acks for a line arrive in dispatch order, so the first one is the
        // clean's: it must free the clean and leave the flush, which keeps
        // blocking stores until its own ack.
        assert!(fu.complete_ack(8, 0, addr, &mut arrays, true));
        let left = fu.fshr_for(addr).expect("flush still active");
        assert_eq!(left.entry.kind, WritebackKind::Flush);
        assert!(fu.fshr_blocks_store(addr));
    }

    #[test]
    fn touched_line_ack_does_not_set_skip() {
        let cfg = L1Config::default();
        let mut arrays = CacheArrays::new(&cfg);
        let addr = LineAddr::new(0x40);
        arrays.install(addr, 0, ClientState::Modified, false, LineData::zeroed());

        let mut fu = FlushUnit::new(4, 2);
        let mut c: Link<ChannelC> = Link::new(0, 8);
        let mut stats = L1Stats::default();
        fu.enqueue(entry(0x40, true, true, WritebackKind::Clean));
        fu.try_allocate(0, 0, true, true);
        for now in 0..3 {
            fu.step_fshrs(now, 0, &mut arrays, &mut c, &mut stats);
        }
        // A §5.3-admitted store dirtied the line mid-flight: the snapshot
        // this FSHR persisted is stale, so even though the line is
        // valid+clean again at ack time (MetaWrite made it Exclusive), the
        // ack must not set the skip bit.
        fu.note_line_touched(addr);
        assert!(fu.complete_ack(3, 0, addr, &mut arrays, true));
        let (set, way) = (arrays.set_index(addr), arrays.lookup(addr).unwrap());
        assert!(!arrays.meta(set, way).skip);
        assert!(!fu.is_flushing());
    }

    #[test]
    fn fshr_flush_invalidates_metadata() {
        let cfg = L1Config::default();
        let mut arrays = CacheArrays::new(&cfg);
        let addr = LineAddr::new(0x80);
        arrays.install(addr, 1, ClientState::Modified, false, LineData::zeroed());

        let mut fu = FlushUnit::new(4, 2);
        let mut c: Link<ChannelC> = Link::new(0, 8);
        let mut stats = L1Stats::default();
        fu.enqueue(entry(0x80, true, true, WritebackKind::Flush));
        fu.try_allocate(0, 0, true, true);
        fu.step_fshrs(0, 0, &mut arrays, &mut c, &mut stats); // MetaWrite
        assert_eq!(arrays.lookup(addr), None, "flush must invalidate");
        fu.step_fshrs(1, 0, &mut arrays, &mut c, &mut stats); // FillBuffer (data still readable)
        fu.step_fshrs(2, 0, &mut arrays, &mut c, &mut stats); // SendReleaseData
        assert!(matches!(
            c.pop(100),
            Some(ChannelC::RootRelease {
                kind: WritebackKind::Flush,
                data: Some(_),
                ..
            })
        ));
        assert!(fu.complete_ack(99, 0, addr, &mut arrays, true));
    }

    #[test]
    fn miss_sends_release_without_data() {
        let cfg = L1Config::default();
        let mut arrays = CacheArrays::new(&cfg);
        let mut fu = FlushUnit::new(4, 2);
        let mut c: Link<ChannelC> = Link::new(0, 8);
        let mut stats = L1Stats::default();
        fu.enqueue(entry(0xc0, false, false, WritebackKind::Flush));
        fu.try_allocate(0, 0, true, true);
        fu.step_fshrs(0, 0, &mut arrays, &mut c, &mut stats);
        assert!(matches!(
            c.pop(100),
            Some(ChannelC::RootRelease { data: None, .. })
        ));
    }

    #[test]
    fn clean_ack_does_not_set_skip_when_redirtied() {
        // A store allowed through (§5.3 conditions) re-dirties the line
        // before the ack arrives: skip must stay unset.
        let cfg = L1Config::default();
        let mut arrays = CacheArrays::new(&cfg);
        let addr = LineAddr::new(0x40);
        arrays.install(addr, 0, ClientState::Modified, false, LineData::zeroed());
        let mut fu = FlushUnit::new(4, 2);
        let mut c: Link<ChannelC> = Link::new(0, 8);
        let mut stats = L1Stats::default();
        fu.enqueue(entry(0x40, true, true, WritebackKind::Clean));
        fu.try_allocate(0, 0, true, true);
        for t in 0..3 {
            fu.step_fshrs(t, 0, &mut arrays, &mut c, &mut stats);
        }
        // Re-dirty while waiting for the ack.
        let set = arrays.set_index(addr);
        let way = arrays.lookup(addr).unwrap();
        arrays.meta_mut(set, way).state = ClientState::Modified;
        assert!(fu.complete_ack(99, 0, addr, &mut arrays, true));
        assert!(!arrays.meta(set, way).skip);
    }
}

#[cfg(test)]
mod inval_tests {
    use super::*;
    use crate::config::L1Config;
    use crate::stats::L1Stats;
    use skipit_tilelink::{ChannelC, ClientState, LineAddr, LineData, Link};

    fn entry(addr: u64, hit: bool, dirty: bool) -> FlushEntry {
        FlushEntry {
            addr: LineAddr::new(addr),
            is_hit: hit,
            is_dirty: dirty,
            kind: WritebackKind::Inval,
        }
    }

    #[test]
    fn inval_hit_dirty_invalidates_without_filling_buffer() {
        let cfg = L1Config::default();
        let mut arrays = CacheArrays::new(&cfg);
        let addr = LineAddr::new(0x40);
        let mut data = LineData::zeroed();
        data.set_word(0, 0xdead);
        arrays.install(addr, 0, ClientState::Modified, false, data);

        let mut fu = FlushUnit::new(4, 2);
        let mut c: Link<ChannelC> = Link::new(0, 8);
        let mut stats = L1Stats::default();
        fu.enqueue(entry(0x40, true, true));
        assert!(fu.try_allocate(0, 0, true, true));
        // MetaWrite invalidates; the dirty data is discarded (no FillBuffer).
        fu.step_fshrs(0, 0, &mut arrays, &mut c, &mut stats);
        assert_eq!(arrays.lookup(addr), None, "inval must invalidate");
        fu.step_fshrs(1, 0, &mut arrays, &mut c, &mut stats);
        match c.pop(100) {
            Some(ChannelC::RootRelease {
                kind: WritebackKind::Inval,
                data: None,
                ..
            }) => {}
            other => panic!("expected dataless RootRelease(Inval), got {other:?}"),
        }
        assert!(fu.complete_ack(99, 0, addr, &mut arrays, true));
        assert!(!fu.is_flushing());
    }

    #[test]
    fn inval_miss_still_sends_release() {
        let cfg = L1Config::default();
        let mut arrays = CacheArrays::new(&cfg);
        let mut fu = FlushUnit::new(4, 2);
        let mut c: Link<ChannelC> = Link::new(0, 8);
        let mut stats = L1Stats::default();
        fu.enqueue(entry(0x80, false, false));
        assert!(fu.try_allocate(0, 0, true, true));
        fu.step_fshrs(0, 0, &mut arrays, &mut c, &mut stats);
        assert!(matches!(
            c.pop(100),
            Some(ChannelC::RootRelease {
                kind: WritebackKind::Inval,
                data: None,
                ..
            })
        ));
    }

    #[test]
    fn inval_never_cross_kind_coalesces() {
        let mut fu = FlushUnit::new(4, 2);
        fu.enqueue(FlushEntry {
            addr: LineAddr::new(0x40),
            is_hit: true,
            is_dirty: true,
            kind: WritebackKind::Clean,
        });
        assert!(!fu.try_cross_kind_coalesce(LineAddr::new(0x40), WritebackKind::Inval));
        fu.enqueue(entry(0x80, true, false));
        assert!(!fu.try_cross_kind_coalesce(LineAddr::new(0x80), WritebackKind::Flush));
        assert!(!fu.try_cross_kind_coalesce(LineAddr::new(0x80), WritebackKind::Clean));
    }
}

// --- snapshot codec (DESIGN.md §11) ---

use skipit_snap::{Codec, SnapError, SnapReader, SnapWriter};

impl Codec for FlushEntry {
    fn encode(&self, w: &mut SnapWriter) {
        self.addr.encode(w);
        self.is_hit.encode(w);
        self.is_dirty.encode(w);
        self.kind.encode(w);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(FlushEntry {
            addr: LineAddr::decode(r)?,
            is_hit: bool::decode(r)?,
            is_dirty: bool::decode(r)?,
            kind: WritebackKind::decode(r)?,
        })
    }
}

impl Codec for FshrState {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u8(match self {
            FshrState::Free => 0,
            FshrState::MetaWrite => 1,
            FshrState::FillBuffer => 2,
            FshrState::SendReleaseData => 3,
            FshrState::SendRelease => 4,
            FshrState::WaitAck => 5,
        });
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.get_u8()? {
            0 => FshrState::Free,
            1 => FshrState::MetaWrite,
            2 => FshrState::FillBuffer,
            3 => FshrState::SendReleaseData,
            4 => FshrState::SendRelease,
            5 => FshrState::WaitAck,
            _ => return Err(SnapError::Corrupt("fshr state")),
        })
    }
}

impl Codec for Fshr {
    fn encode(&self, w: &mut SnapWriter) {
        self.entry.encode(w);
        self.state.encode(w);
        self.buffer.encode(w);
        self.slot.map(|(s, wy)| (s as u64, wy as u64)).encode(w);
        self.skip_ok.encode(w);
        self.seq.encode(w);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Fshr {
            entry: FlushEntry::decode(r)?,
            state: FshrState::decode(r)?,
            buffer: Option::decode(r)?,
            slot: Option::<(u64, u64)>::decode(r)?.map(|(s, wy)| (s as usize, wy as usize)),
            skip_ok: bool::decode(r)?,
            seq: u64::decode(r)?,
        })
    }
}

impl FlushUnit {
    /// Encodes the flush unit's simulated state: the flush queue, every
    /// FSHR (including the private skip-eligibility and dispatch-order
    /// stamps), the round-robin pointer, the §5.2 flush counter, and the
    /// perturbation bookkeeping (`dispatch_seq` keys jitter draws,
    /// `hold_until` is a drawn-but-unexpired delay — both must survive a
    /// round trip for perturbed runs to continue bit-identically).
    pub fn encode_state(&self, w: &mut SnapWriter) {
        w.tag(0x46);
        self.queue.encode(w);
        self.fshrs.encode(w);
        self.next_fshr.encode(w);
        self.counter.encode(w);
        self.dispatch_seq.encode(w);
        self.hold_until.encode(w);
        self.alloc_seq.encode(w);
    }

    /// Overwrites the flush unit's simulated state from `r` (the inverse
    /// of [`FlushUnit::encode_state`]); queue depth and FSHR count must
    /// match the configured geometry.
    pub fn decode_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.expect_tag(0x46, "flush unit section")?;
        let queue = std::collections::VecDeque::decode(r)?;
        if queue.len() > self.depth {
            return Err(SnapError::Corrupt("flush queue exceeds depth"));
        }
        let fshrs: Vec<Fshr> = Vec::decode(r)?;
        if fshrs.len() != self.fshrs.len() {
            return Err(SnapError::ConfigMismatch);
        }
        let next_fshr = usize::decode(r)?;
        if next_fshr >= fshrs.len().max(1) {
            return Err(SnapError::Corrupt("fshr pointer out of range"));
        }
        self.queue = queue;
        self.fshrs = fshrs;
        self.next_fshr = next_fshr;
        self.counter = u64::decode(r)?;
        self.dispatch_seq = u64::decode(r)?;
        self.hold_until = Option::decode(r)?;
        self.alloc_seq = u64::decode(r)?;
        Ok(())
    }
}
