//! Per-cache event counters.

/// Counters maintained by one L1 data cache. All counters are cumulative
/// since construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct L1Stats {
    /// Loads accepted.
    pub loads: u64,
    /// Load hits served from the arrays.
    pub load_hits: u64,
    /// Loads forwarded from an FSHR data buffer (§5.3).
    pub load_fshr_forwards: u64,
    /// Stores accepted.
    pub stores: u64,
    /// Store hits performed in place.
    pub store_hits: u64,
    /// Atomic operations accepted.
    pub amos: u64,
    /// Negative acknowledgements returned to the LSU.
    pub nacks: u64,
    /// CBO.X requests enqueued into the flush queue.
    pub writebacks_enqueued: u64,
    /// CBO.X requests dropped by Skip It (hit ∧ clean ∧ skip bit, §6.1).
    pub writebacks_skipped: u64,
    /// CBO.X requests coalesced with a pending same-kind request (§5.3).
    pub writebacks_coalesced: u64,
    /// `RootRelease` messages sent to the L2.
    pub root_releases_sent: u64,
    /// `RootRelease` messages that carried dirty data.
    pub root_releases_with_data: u64,
    /// Coherence probes handled.
    pub probes_handled: u64,
    /// Probes that pushed dirty data upward.
    pub probes_with_data: u64,
    /// Lines evicted through the writeback unit.
    pub evictions: u64,
    /// Evictions that carried dirty data.
    pub dirty_evictions: u64,
    /// MSHR allocations (primary misses).
    pub mshr_allocs: u64,
    /// Requests buffered as MSHR secondaries (replay queue).
    pub mshr_secondaries: u64,
    /// Flush-queue entries invalidated by probes (§5.4.1).
    pub flush_entries_probe_invalidated: u64,
    /// Flush-queue entries invalidated by evictions (§5.4.2).
    pub flush_entries_evict_invalidated: u64,
}

impl L1Stats {
    /// Total CBO.X requests that were eliminated before reaching the L2
    /// (Skip It drops plus coalesced requests).
    pub fn writebacks_eliminated(&self) -> u64 {
        self.writebacks_skipped + self.writebacks_coalesced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eliminated_sums_skips_and_coalesces() {
        let s = L1Stats {
            writebacks_skipped: 3,
            writebacks_coalesced: 4,
            ..L1Stats::default()
        };
        assert_eq!(s.writebacks_eliminated(), 7);
    }
}

// --- snapshot codec (DESIGN.md §11) ---

use skipit_snap::{Codec, SnapError, SnapReader, SnapWriter};

impl Codec for L1Stats {
    fn encode(&self, w: &mut SnapWriter) {
        for v in [
            self.loads,
            self.load_hits,
            self.load_fshr_forwards,
            self.stores,
            self.store_hits,
            self.amos,
            self.nacks,
            self.writebacks_enqueued,
            self.writebacks_skipped,
            self.writebacks_coalesced,
            self.root_releases_sent,
            self.root_releases_with_data,
            self.probes_handled,
            self.probes_with_data,
            self.evictions,
            self.dirty_evictions,
            self.mshr_allocs,
            self.mshr_secondaries,
            self.flush_entries_probe_invalidated,
            self.flush_entries_evict_invalidated,
        ] {
            w.put_u64(v);
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let mut s = L1Stats::default();
        for f in [
            &mut s.loads,
            &mut s.load_hits,
            &mut s.load_fshr_forwards,
            &mut s.stores,
            &mut s.store_hits,
            &mut s.amos,
            &mut s.nacks,
            &mut s.writebacks_enqueued,
            &mut s.writebacks_skipped,
            &mut s.writebacks_coalesced,
            &mut s.root_releases_sent,
            &mut s.root_releases_with_data,
            &mut s.probes_handled,
            &mut s.probes_with_data,
            &mut s.evictions,
            &mut s.dirty_evictions,
            &mut s.mshr_allocs,
            &mut s.mshr_secondaries,
            &mut s.flush_entries_probe_invalidated,
            &mut s.flush_entries_evict_invalidated,
        ] {
            *f = r.get_u64()?;
        }
        Ok(s)
    }
}
