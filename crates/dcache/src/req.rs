//! Core-side (LSU → D-cache) request and response types.

use skipit_tilelink::WritebackKind;

/// Identifier the LSU attaches to every request so responses can be matched
/// to LDQ/STQ entries.
pub type ReqId = u64;

/// Atomic memory operation flavours used by the workloads in this repository.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AmoOp {
    /// Compare-and-swap: store `operand` iff the current value equals
    /// `expected`; always returns the old value.
    Cas {
        /// Value the word must currently hold for the swap to happen.
        expected: u64,
    },
    /// Fetch-and-add: add `operand`, return the old value.
    Add,
    /// Swap: store `operand`, return the old value.
    Swap,
}

/// A request fired from the LSU into the data cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DcReq {
    /// Matching tag for the response.
    pub id: ReqId,
    /// The operation.
    pub kind: DcReqKind,
}

/// The operation carried by a [`DcReq`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DcReqKind {
    /// A 64-bit load. `addr` must be 8-byte aligned.
    Load {
        /// Byte address of the word.
        addr: u64,
    },
    /// A 64-bit store. `addr` must be 8-byte aligned.
    Store {
        /// Byte address of the word.
        addr: u64,
        /// Value to store.
        value: u64,
    },
    /// An atomic memory operation (performed in the cache with write
    /// permission, like RISC-V AMOs).
    Amo {
        /// Byte address of the word.
        addr: u64,
        /// Operation flavour.
        op: AmoOp,
        /// Operand (addend / swap value).
        operand: u64,
    },
    /// A `CBO.CLEAN` / `CBO.FLUSH` user-controlled writeback (§2.6). Encoded
    /// as an STQ request by the LSU (§5.1) and handled by the flush unit.
    Writeback {
        /// Any byte address within the target line.
        addr: u64,
        /// Clean (non-invalidating) or flush (invalidating).
        kind: WritebackKind,
    },
}

impl DcReqKind {
    /// The byte address this request targets.
    pub fn addr(&self) -> u64 {
        match *self {
            DcReqKind::Load { addr }
            | DcReqKind::Store { addr, .. }
            | DcReqKind::Amo { addr, .. }
            | DcReqKind::Writeback { addr, .. } => addr,
        }
    }

    /// Whether this request requires write (Trunk) permission.
    pub fn needs_write(&self) -> bool {
        matches!(self, DcReqKind::Store { .. } | DcReqKind::Amo { .. })
    }
}

/// Immediate outcome of presenting a request to the cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReqOutcome {
    /// The request was accepted; a [`DcResp`] will be produced (possibly in
    /// the same cycle's response queue for hits, possibly much later for
    /// misses). Stores and writebacks accepted into MSHRs / the flush queue
    /// respond immediately even though their effect completes later —
    /// matching the BOOM commit semantics (§3.3, §5.2).
    Accepted,
    /// Negative acknowledgement: the LSU must retry later (§3.3). Issued when
    /// MSHRs / replay queues / the flush queue are full, or when the flush
    /// unit's consistency rules (§5.3) forbid the access.
    Nack,
}

/// A response delivered by the cache to the LSU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DcResp {
    /// A load completed with the given value.
    LoadDone {
        /// Matches [`DcReq::id`].
        id: ReqId,
        /// Loaded value.
        value: u64,
    },
    /// A store has been accepted by the memory system (BOOM treats it as
    /// complete once it is in the cache or an MSHR, §3.3).
    StoreDone {
        /// Matches [`DcReq::id`].
        id: ReqId,
    },
    /// An atomic operation completed, returning the previous value.
    AmoDone {
        /// Matches [`DcReq::id`].
        id: ReqId,
        /// Value of the word before the operation.
        old: u64,
    },
    /// A `CBO.X` was buffered by the flush unit (or dropped by Skip It /
    /// coalescing) — the instruction is ready to commit (§5.2).
    WritebackAccepted {
        /// Matches [`DcReq::id`].
        id: ReqId,
    },
}

impl DcResp {
    /// The request this response answers.
    pub fn id(&self) -> ReqId {
        match *self {
            DcResp::LoadDone { id, .. }
            | DcResp::StoreDone { id }
            | DcResp::AmoDone { id, .. }
            | DcResp::WritebackAccepted { id } => id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_and_needs_write() {
        assert_eq!(DcReqKind::Load { addr: 8 }.addr(), 8);
        assert!(!DcReqKind::Load { addr: 8 }.needs_write());
        assert!(DcReqKind::Store { addr: 8, value: 1 }.needs_write());
        assert!(DcReqKind::Amo {
            addr: 8,
            op: AmoOp::Add,
            operand: 1
        }
        .needs_write());
        assert!(!DcReqKind::Writeback {
            addr: 8,
            kind: WritebackKind::Clean
        }
        .needs_write());
    }

    #[test]
    fn resp_id() {
        assert_eq!(DcResp::LoadDone { id: 7, value: 0 }.id(), 7);
        assert_eq!(DcResp::WritebackAccepted { id: 9 }.id(), 9);
    }
}

// --- snapshot codec (DESIGN.md §11) ---

use skipit_snap::{Codec, SnapError, SnapReader, SnapWriter};

impl Codec for AmoOp {
    fn encode(&self, w: &mut SnapWriter) {
        match *self {
            AmoOp::Cas { expected } => {
                w.put_u8(0);
                expected.encode(w);
            }
            AmoOp::Add => w.put_u8(1),
            AmoOp::Swap => w.put_u8(2),
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(AmoOp::Cas {
                expected: u64::decode(r)?,
            }),
            1 => Ok(AmoOp::Add),
            2 => Ok(AmoOp::Swap),
            _ => Err(SnapError::Corrupt("amo op")),
        }
    }
}

impl Codec for DcReqKind {
    fn encode(&self, w: &mut SnapWriter) {
        match *self {
            DcReqKind::Load { addr } => {
                w.put_u8(0);
                addr.encode(w);
            }
            DcReqKind::Store { addr, value } => {
                w.put_u8(1);
                addr.encode(w);
                value.encode(w);
            }
            DcReqKind::Amo { addr, op, operand } => {
                w.put_u8(2);
                addr.encode(w);
                op.encode(w);
                operand.encode(w);
            }
            DcReqKind::Writeback { addr, kind } => {
                w.put_u8(3);
                addr.encode(w);
                kind.encode(w);
            }
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(DcReqKind::Load {
                addr: u64::decode(r)?,
            }),
            1 => Ok(DcReqKind::Store {
                addr: u64::decode(r)?,
                value: u64::decode(r)?,
            }),
            2 => Ok(DcReqKind::Amo {
                addr: u64::decode(r)?,
                op: AmoOp::decode(r)?,
                operand: u64::decode(r)?,
            }),
            3 => Ok(DcReqKind::Writeback {
                addr: u64::decode(r)?,
                kind: skipit_tilelink::WritebackKind::decode(r)?,
            }),
            _ => Err(SnapError::Corrupt("dcache request kind")),
        }
    }
}

impl Codec for DcReq {
    fn encode(&self, w: &mut SnapWriter) {
        self.id.encode(w);
        self.kind.encode(w);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(DcReq {
            id: ReqId::decode(r)?,
            kind: DcReqKind::decode(r)?,
        })
    }
}

impl Codec for DcResp {
    fn encode(&self, w: &mut SnapWriter) {
        match *self {
            DcResp::LoadDone { id, value } => {
                w.put_u8(0);
                id.encode(w);
                value.encode(w);
            }
            DcResp::StoreDone { id } => {
                w.put_u8(1);
                id.encode(w);
            }
            DcResp::AmoDone { id, old } => {
                w.put_u8(2);
                id.encode(w);
                old.encode(w);
            }
            DcResp::WritebackAccepted { id } => {
                w.put_u8(3);
                id.encode(w);
            }
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(DcResp::LoadDone {
                id: ReqId::decode(r)?,
                value: u64::decode(r)?,
            }),
            1 => Ok(DcResp::StoreDone {
                id: ReqId::decode(r)?,
            }),
            2 => Ok(DcResp::AmoDone {
                id: ReqId::decode(r)?,
                old: u64::decode(r)?,
            }),
            3 => Ok(DcResp::WritebackAccepted {
                id: ReqId::decode(r)?,
            }),
            _ => Err(SnapError::Corrupt("dcache response kind")),
        }
    }
}
