//! L1 data-cache configuration.

/// Geometry and timing of one L1 data cache.
///
/// The default matches the SonicBOOM configuration the paper evaluates
/// (§3.3, §7.1): a 32 KiB, 8-way, 64 B-line writeback cache with eight FSHRs
/// in the flush unit (§5.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct L1Config {
    /// Number of sets (default 64 → 64 sets × 8 ways × 64 B = 32 KiB).
    pub sets: usize,
    /// Associativity (default 8).
    pub ways: usize,
    /// Number of miss status holding registers.
    pub mshrs: usize,
    /// Replay-queue depth per MSHR (§3.3).
    pub rpq_depth: usize,
    /// Flush-queue depth (§5.2).
    pub flush_queue_depth: usize,
    /// Number of flush status holding registers (the paper uses 8, §5.2).
    pub fshrs: usize,
    /// Cycles from accepting a hitting request to its response.
    pub hit_latency: u64,
    /// Enables the Skip It optimization (§6). When disabled the cache is the
    /// paper's baseline ("naïve") flush-unit design.
    pub skip_it: bool,
    /// Enables coalescing of *different* CBO.X kinds to the same line — the
    /// future-work optimization §5.3 names: a queued `CBO.CLEAN` is upgraded
    /// in place by an arriving `CBO.FLUSH` (flush subsumes clean), and an
    /// arriving `CBO.CLEAN` is absorbed by a queued `CBO.FLUSH`.
    pub cross_kind_coalescing: bool,
}

impl Default for L1Config {
    fn default() -> Self {
        L1Config {
            sets: 64,
            ways: 8,
            mshrs: 8,
            rpq_depth: 8,
            flush_queue_depth: 16,
            fshrs: 8,
            hit_latency: 3,
            skip_it: false,
            cross_kind_coalescing: false,
        }
    }
}

impl L1Config {
    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * skipit_tilelink::LINE_BYTES
    }

    /// Validates invariants the cache model relies on.
    ///
    /// # Panics
    ///
    /// Panics if any field is zero or `sets` is not a power of two.
    pub fn validate(&self) {
        assert!(self.sets.is_power_of_two(), "sets must be a power of two");
        assert!(self.ways > 0, "ways must be nonzero");
        assert!(self.mshrs > 0, "mshrs must be nonzero");
        assert!(self.rpq_depth > 0, "rpq_depth must be nonzero");
        assert!(
            self.flush_queue_depth > 0,
            "flush_queue_depth must be nonzero"
        );
        assert!(self.fshrs > 0, "fshrs must be nonzero");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_32kib_sonicboom_geometry() {
        let c = L1Config::default();
        c.validate();
        assert_eq!(c.capacity_bytes(), 32 * 1024);
        assert_eq!(c.fshrs, 8);
        assert!(!c.skip_it);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn validate_rejects_non_power_of_two_sets() {
        L1Config {
            sets: 3,
            ..L1Config::default()
        }
        .validate();
    }
}
