//! BOOM-style non-blocking L1 data cache with the paper's **Flush Unit**.
//!
//! This crate reproduces, at cycle granularity, the SonicBOOM L1 D-cache of
//! §3.3 of *Skip It: Take Control of Your Cache!* together with every
//! microarchitectural extension the paper adds in §5 and §6:
//!
//! * metadata / data arrays (32 KiB, 8-way by default) with MESI states and
//!   the **skip bit** per line;
//! * MSHRs with replay queues, secondary-request permission rules and nacks;
//! * a writeback unit (WBU) for evictions;
//! * a probe unit with the paper's two-phase probe handling;
//! * the **Flush Unit**: flush queue, FSHRs running the Fig. 7 state machine,
//!   flush counter, request coalescing, FSHR→load data forwarding, and the
//!   `probe_rdy` / `flush_rdy` / `wb_rdy` interlocks of §5.4;
//! * **Skip It** (§6): dropping writebacks whose line hits, is clean, and has
//!   the skip bit set; skip-bit maintenance from `GrantData` /
//!   `GrantDataDirty`.
//!
//! The cache talks TileLink on five channels supplied each cycle through
//! [`L1Ports`], and serves core-side requests through
//! [`DataCache::try_request`].

pub mod cache;
pub mod config;
pub mod flush;
pub mod meta;
pub mod req;
pub mod stats;

pub use cache::{DataCache, L1Ports};
pub use config::L1Config;
pub use flush::{FlushEntry, FlushUnit, Fshr, FshrState};
pub use req::{AmoOp, DcReq, DcResp, ReqId, ReqOutcome};
pub use stats::L1Stats;
